//! Failure injection: deliberately broken strategies must be *caught* by
//! the monitors, not silently reported as successes. These tests establish
//! that the verification layer has teeth — without them, "all runs were
//! monotone" would be unfalsifiable.

use hypersweep::check::{StepOracle, ViolationKind, ViolationReport};
use hypersweep::core::visibility::VisBoard;
use hypersweep::prelude::*;
use hypersweep::sim::{Action, AgentProgram, Ctx, Engine, EngineConfig, Event, Role};
use hypersweep::topology::combinatorics as comb;
use hypersweep_testutil::{move_event, spawn_event};

/// Fold a recorded trace through the checker's per-step oracles
/// (monotonicity after every event, contiguity and frontier coverage at
/// stride 1) and return the first violation, if any.
fn first_oracle_violation(cube: &Hypercube, events: &[Event]) -> Option<ViolationReport> {
    let mut oracle = StepOracle::new(cube, Node::ROOT, 1);
    for (step, event) in events.iter().enumerate() {
        if let Err(v) = oracle.observe(event, step as u64) {
            return Some(v);
        }
    }
    None
}

/// A visibility agent with the guard condition removed: it dispatches as
/// soon as the team is complete, without checking that the smaller
/// neighbours are clean or guarded.
struct RecklessVisibilityAgent;

impl AgentProgram for RecklessVisibilityAgent {
    type Board = VisBoard;

    fn step(&mut self, ctx: &mut Ctx<'_, VisBoard>) -> Action {
        let x = ctx.node();
        let d = ctx.cube().dim();
        let k = d - x.msb_position();
        if k == 0 {
            return Action::Terminate;
        }
        if !ctx.board().dispatch_started {
            let need = comb::visibility_need(k);
            if u128::from(ctx.active_here()) < need {
                return Action::Wait;
            }
            // BUG: no smaller_neighbors_safe() check.
            ctx.board_mut().dispatch_started = true;
        }
        let slot = ctx.board().next_slot;
        ctx.board_mut().next_slot = slot + 1;
        let child_type = hypersweep::core::visibility::slot_child_type(slot);
        Action::Move(d - child_type)
    }
}

#[test]
fn reckless_dispatch_is_flagged_as_recontamination() {
    // Under a depth-first (LIFO) adversary one branch races ahead and
    // vacates nodes whose smaller neighbours are still contaminated.
    let mut caught = false;
    for d in 3..=6 {
        let cube = Hypercube::new(d);
        let mut engine = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::Lifo,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        for _ in 0..cube.node_count() / 2 {
            engine.spawn(RecklessVisibilityAgent, Node::ROOT, Role::Worker);
        }
        let report = engine.run().expect("the buggy strategy still terminates");
        let verdict = verify_trace(&cube, Node::ROOT, &report.events, MonitorConfig::default());
        if !verdict.monotone {
            caught = true;
            assert!(!verdict.is_complete());
            // The checker's per-step oracles must agree with the batch
            // monitor, and pin the violation to a specific event.
            let violation = first_oracle_violation(&cube, &report.events)
                .expect("d={d}: the step oracle missed what the monitor saw");
            assert!(
                matches!(violation.kind, ViolationKind::Recontamination { .. }),
                "d={d}: {violation}"
            );
            assert!(violation.event >= 1 && violation.event <= report.events.len() as u64);
        }
    }
    assert!(
        caught,
        "the monitors never flagged the reckless strategy on any dimension"
    );
}

/// A "CLEAN" that sweeps levels in *decreasing* numeric order — violating
/// the Lemma 1 prerequisite for releasing nodes safely.
#[test]
fn reverse_sweep_order_is_flagged() {
    // Hand-build the offending fragment on H_3: guard level 1 fully, then
    // dispatch from the *largest* level-1 node first and vacate it — its
    // non-tree up-neighbour is still contaminated.
    let cube = Hypercube::new(3);
    let mut events = Vec::new();
    for agent in 0..4u32 {
        events.push(spawn_event(agent));
    }
    // Guard level 1: agents 1,2,3 to nodes 1,2,4.
    events.push(move_event(1, 0, 1));
    events.push(move_event(2, 0, 2));
    events.push(move_event(3, 0, 4));
    // Reverse order: dispatch node 2 (type T(1), child 6) and vacate it,
    // while its non-tree up-neighbour 3 (child of node 1!) is still
    // contaminated → node 2 must be recontaminated.
    events.push(move_event(2, 2, 6));
    let verdict = verify_trace(&cube, Node::ROOT, &events, MonitorConfig::default());
    assert!(!verdict.monotone, "reverse sweep must recontaminate");
    assert!(matches!(
        verdict.violations[0],
        hypersweep::intruder::Violation::Recontamination { node: Node(2), .. }
    ));
    // The step oracle pins the same node on the final event.
    let violation = first_oracle_violation(&cube, &events).expect("oracle fires");
    assert_eq!(violation.event, events.len() as u64);
    assert!(matches!(
        violation.kind,
        ViolationKind::Recontamination { node: 2 }
    ));
}

/// Too few agents: the visibility strategy with n/2 − 1 agents deadlocks
/// (the last dispatch never assembles) — the engine reports it rather than
/// hanging or faking success.
#[test]
fn underprovisioned_team_deadlocks_cleanly() {
    use hypersweep::core::visibility::VisibilityAgent;
    for d in 2..=6 {
        let cube = Hypercube::new(d);
        let mut engine = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::Fifo,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        let team = (cube.node_count() / 2 - 1) as u32;
        for _ in 0..team {
            engine.spawn(VisibilityAgent, Node::ROOT, Role::Worker);
        }
        match engine.run() {
            Err(hypersweep::sim::RunError::Deadlock { waiting }) => {
                assert!(waiting >= 1, "d={d}");
            }
            other => panic!("d={d}: expected deadlock, got {other:?}"),
        }
    }
}

/// An abandoned search (agents terminate mid-way) fails the coverage and
/// capture checks without tripping monotonicity.
#[test]
fn premature_termination_fails_coverage_not_monotonicity() {
    // One agent anchors the homebase forever; the other advances one hop
    // and gives up. Nothing is ever vacated, so monotonicity holds — but
    // 14 of the 16 nodes stay contaminated and the evader roams free.
    struct Quitter {
        anchor: bool,
    }
    impl AgentProgram for Quitter {
        type Board = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
            if !self.anchor && ctx.node() == Node::ROOT {
                self.anchor = true; // terminate on arrival next activation
                return Action::Move(1);
            }
            Action::Terminate
        }
    }
    let cube = Hypercube::new(4);
    let mut engine = Engine::new(cube, EngineConfig::default());
    engine.spawn(Quitter { anchor: true }, Node::ROOT, Role::Worker);
    engine.spawn(Quitter { anchor: false }, Node::ROOT, Role::Worker);
    let report = engine.run().unwrap();
    let verdict = verify_trace(
        &cube,
        Node::ROOT,
        &report.events,
        MonitorConfig::with_intruder(Node(15)),
    );
    assert!(verdict.monotone, "nothing was vacated unsafely");
    assert!(!verdict.all_clean);
    assert!(matches!(verdict.capture, Some(CaptureStatus::Free(_))));
    assert!(!verdict.is_complete());

    // Per-step: no oracle fires mid-trace (the abandonment violates no
    // step invariant), but the terminal capture oracle must.
    let mut oracle = StepOracle::new(&cube, Node::ROOT, 1);
    for (step, event) in report.events.iter().enumerate() {
        oracle
            .observe(event, step as u64)
            .expect("an abandoned search breaks no per-step invariant");
    }
    let terminal = oracle
        .finish(report.events.len() as u64)
        .expect_err("the capture oracle must flag the abandoned search");
    assert!(matches!(
        terminal.kind,
        ViolationKind::CaptureEscaped { contaminated: 14 }
    ));
}

/// The engine rejects moves through non-existent ports instead of
/// corrupting state.
#[test]
fn invalid_ports_are_hard_errors() {
    struct OutOfRange;
    impl AgentProgram for OutOfRange {
        type Board = ();
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Action {
            Action::Move(7) // H_3 has ports 1..=3
        }
    }
    let mut engine = Engine::new(Hypercube::new(3), EngineConfig::default());
    engine.spawn(OutOfRange, Node::ROOT, Role::Worker);
    assert!(matches!(
        engine.run(),
        Err(hypersweep::sim::RunError::InvalidAction { .. })
    ));
}
