//! The full experiment harness runs end to end and exports.

use hypersweep::analysis::experiments::ALL_IDS;
use hypersweep::analysis::{run_all, run_experiment, runner, ExperimentConfig};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        fast_dims: (1..=8).collect(),
        engine_dims: vec![2, 4],
        sync_engine_dims: vec![2, 4],
        adversary_seeds: 1,
        figure_dim: 5,
        small_figure_dim: 3,
        ..ExperimentConfig::quick()
    }
}

#[test]
fn every_experiment_runs_individually() {
    let cfg = tiny_cfg();
    for id in ALL_IDS {
        let r = run_experiment(id, &cfg).expect("known id");
        assert_eq!(&r.id, id);
        assert!(
            !r.tables.is_empty() || !r.artifacts.is_empty(),
            "{id} produced nothing"
        );
        // Rendering never panics and mentions the id.
        assert!(r.render().contains(&id.to_uppercase()));
    }
}

#[test]
fn run_all_returns_results_in_order_and_exports() {
    let cfg = tiny_cfg();
    let results = run_all(&cfg);
    assert_eq!(results.len(), ALL_IDS.len());
    for (r, id) in results.iter().zip(ALL_IDS) {
        assert_eq!(&r.id, id);
    }
    let dir = std::env::temp_dir().join("hypersweep-smoke-export");
    let paths = runner::export_json(&results, &dir).unwrap();
    assert_eq!(paths.len(), results.len());
    // Round-trip one file.
    let text = std::fs::read_to_string(&paths[0]).unwrap();
    let back: hypersweep::analysis::ExperimentResult = serde_json::from_str(&text).unwrap();
    assert_eq!(back.id, *ALL_IDS.first().unwrap());
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}
