//! Determinism guarantees and serialization round-trips.

use hypersweep::core::clean::CleanAgent;
use hypersweep::prelude::*;
use hypersweep::sim::threaded::{run_threaded, ThreadedConfig};
use hypersweep::sim::{Event, Role};

#[test]
fn engine_runs_are_deterministic_per_policy() {
    // Same strategy + same policy (incl. seed) ⇒ byte-identical event
    // streams.
    for policy in [
        Policy::Fifo,
        Policy::Lifo,
        Policy::RoundRobin,
        Policy::Random(123),
        Policy::Synchronous,
    ] {
        let run = || {
            let cube = Hypercube::new(5);
            VisibilityStrategy::new(cube).run(policy).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics, "{policy:?}");
        assert_eq!(a.verdict.events, b.verdict.events);
        assert_eq!(a.verdict.capture, b.verdict.capture, "{policy:?}");
    }
}

#[test]
fn different_seeds_usually_schedule_differently() {
    // Sanity: the random adversary actually varies with the seed (capture
    // event indices differ for at least one pair).
    let capture_at = |seed| {
        let outcome = VisibilityStrategy::new(Hypercube::new(6))
            .run(Policy::Random(seed))
            .unwrap();
        match outcome.verdict.capture.unwrap() {
            CaptureStatus::Captured { at_event, .. } => at_event,
            _ => panic!("must capture"),
        }
    };
    let values: Vec<u64> = (0..6).map(capture_at).collect();
    assert!(
        values.windows(2).any(|w| w[0] != w[1]),
        "all seeds produced identical schedules: {values:?}"
    );
}

#[test]
fn events_round_trip_through_json() {
    let (_, events) = CloningStrategy::new(Hypercube::new(5)).synthesize(true);
    let events = events.unwrap();
    let json = serde_json::to_string(&events).unwrap();
    let back: Vec<Event> = serde_json::from_str(&json).unwrap();
    assert_eq!(events, back);
    // A trace that survives serialization still audits identically.
    let cube = Hypercube::new(5);
    let v1 = verify_trace(&cube, Node::ROOT, &events, MonitorConfig::default());
    let v2 = verify_trace(&cube, Node::ROOT, &back, MonitorConfig::default());
    assert_eq!(v1.monotone, v2.monotone);
    assert_eq!(v1.all_clean, v2.all_clean);
    assert_eq!(v1.events, v2.events);
}

#[test]
fn metrics_round_trip_through_json() {
    let m = VisibilityStrategy::new(Hypercube::new(7))
        .fast(false)
        .metrics;
    let json = serde_json::to_string(&m).unwrap();
    let back: hypersweep::sim::Metrics = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

#[test]
fn threaded_clean_with_coordinator_is_correct() {
    // The synchronizer-coordinated strategy on real threads: the
    // whiteboard protocol (orders, claims, done flag) must survive true
    // concurrency.
    for d in 2..=5 {
        let cube = Hypercube::new(d);
        let team = CleanStrategy::new(cube).team_size();
        let mut programs = vec![(CleanAgent::synchronizer(), Role::Coordinator)];
        for _ in 1..team {
            programs.push((CleanAgent::worker(), Role::Worker));
        }
        let report = run_threaded(cube, programs, ThreadedConfig::default())
            .unwrap_or_else(|e| panic!("d={d}: {e}"));
        let verdict = verify_trace(
            &cube,
            Node::ROOT,
            &report.events,
            MonitorConfig::with_intruder(Node(cube.node_count() as u32 - 1)),
        );
        assert!(verdict.is_complete(), "d={d}: {:?}", verdict.violations);
        assert_eq!(
            u128::from(report.metrics.worker_moves),
            hypersweep::topology::combinatorics::clean_agent_moves(d),
            "d={d}: Theorem 3 holds on real threads too"
        );
    }
}

#[test]
fn fast_traces_are_reproducible() {
    let a = CleanStrategy::new(Hypercube::new(6)).synthesize(true);
    let b = CleanStrategy::new(Hypercube::new(6)).synthesize(true);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
