//! The checker's replay contract: shrunk counterexamples round-trip
//! through serde and re-execute to the identical violation, both for
//! freshly-found failures (property-tested) and for the committed corpus
//! under `tests/corpus/` (regression-tested on every `cargo test`).

use std::path::PathBuf;

use hypersweep::check::{explore_schedule, shrunk_replay, CheckConfig, CheckStrategy, ReplayFile};
use proptest::prelude::*;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

/// Every committed counterexample still parses, re-executes, and
/// reproduces its recorded violation step-exactly — and its serialized
/// form is byte-stable (parse → serialize is the identity).
#[test]
fn committed_corpus_replays_reproduce_their_violations() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "the corpus must hold at least 3 replays, found {}",
        files.len()
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let replay =
            ReplayFile::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let run = replay
            .verify()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(run.violation.as_ref(), Some(&replay.violation));
        assert_eq!(
            replay.to_json() + "\n",
            text,
            "{}: corpus file is not in canonical form",
            path.display()
        );
    }
}

/// The corpus spans several adversary families, not five copies of one.
#[test]
fn corpus_covers_multiple_adversary_families() {
    let mut families: Vec<String> = corpus_files()
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).unwrap();
            ReplayFile::from_json(&text).unwrap().adversary
        })
        .collect();
    families.sort();
    families.dedup();
    assert!(
        families.len() >= 3,
        "corpus covers only {families:?}; regenerate with more variety"
    );
}

/// Negative control: the eager-guard mutant (guard released one step
/// early) is caught within a bounded schedule budget at every small
/// dimension — while the correct strategy stays quiet under the identical
/// budget, so the catch is the mutation's fault, not oracle noise.
#[test]
fn mutant_is_caught_and_correct_strategy_is_not_under_the_same_budget() {
    const BUDGET: u64 = 100;
    for dim in 3..=5 {
        let mutant = CheckConfig::new(CheckStrategy::MutantEagerGuard, dim);
        let caught = (0..BUDGET).find(|&s| explore_schedule(&mutant, 3, s).violation.is_some());
        assert!(
            caught.is_some(),
            "d={dim}: mutant not caught within {BUDGET} schedules"
        );

        let correct = CheckConfig::new(CheckStrategy::Visibility, dim);
        for schedule in 0..BUDGET {
            let run = explore_schedule(&correct, 3, schedule);
            assert_eq!(
                run.violation, None,
                "d={dim} schedule {schedule}: false positive on the correct strategy"
            );
        }
    }
}

/// The split/merge corpus subset: schedules whose violation lands on or
/// next to the homebase, where the safe region is densest and the
/// incremental connectivity kernel does the most splitting and merging.
/// Each must be a genuine incident (a recontamination within Hamming
/// distance ≤ 2 of the homebase) found by a long schedule (enough moves to
/// have grown and vacated guards around node 0 repeatedly).
#[test]
fn splitmerge_corpus_stresses_connectivity_around_the_homebase() {
    let files: Vec<PathBuf> = corpus_files()
        .into_iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains("splitmerge"))
        })
        .collect();
    assert!(
        files.len() >= 3,
        "the corpus must hold at least 3 split/merge replays, found {}",
        files.len()
    );
    for path in &files {
        let text = std::fs::read_to_string(path).expect("readable corpus file");
        let replay = ReplayFile::from_json(&text).unwrap();
        let node = match &replay.violation.kind {
            hypersweep::check::ViolationKind::Recontamination { node } => *node,
            other => panic!(
                "{}: split/merge corpus must pin recontaminations, got {other:?}",
                path.display()
            ),
        };
        assert!(
            node.count_ones() <= 2,
            "{}: violation node {node} is not near the homebase",
            path.display()
        );
        assert!(
            !replay.decisions.is_empty(),
            "{}: split/merge replays keep the full adversarial schedule \
             (a canonicalized trace would not stress connectivity churn)",
            path.display()
        );
        let run = replay.verify().expect("split/merge replay re-executes");
        assert_eq!(run.violation.as_ref(), Some(&replay.violation));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A freshly-found counterexample, shrunk and serialized, parses back
    /// equal and re-executes to the identical violation (same step, same
    /// event, same kind).
    #[test]
    fn shrunk_replays_roundtrip_and_reexecute(seed in 0u64..200, dim in 3u32..=5) {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, dim);
        let Some(schedule) = (0..50u64)
            .find(|&s| explore_schedule(&cfg, seed, s).violation.is_some())
        else {
            return Err("mutant never caught in 50 schedules".to_string());
        };
        let run = explore_schedule(&cfg, seed, schedule);
        let replay = shrunk_replay(&cfg, seed, schedule, run);

        let parsed = ReplayFile::from_json(&replay.to_json())
            .expect("shrunk replay serializes losslessly");
        prop_assert_eq!(&parsed, &replay);

        let reexecuted = parsed.verify().expect("replay reproduces the violation");
        prop_assert_eq!(reexecuted.violation, Some(replay.violation));
    }
}

/// Regenerates `tests/corpus/` (run manually:
/// `cargo test --test check_replays -- --ignored regenerate_corpus`).
/// Picks the first violating schedule of each adversary family so the
/// corpus exercises all five.
#[test]
#[ignore]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    // (dim, seed, starting schedule); stepping by 5 keeps the family.
    for (dim, seed, start) in [(4, 1, 0), (4, 1, 1), (4, 1, 2), (5, 7, 3), (3, 2, 4)] {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, dim);
        let mut schedule = start;
        let run = loop {
            let run = explore_schedule(&cfg, seed, schedule);
            if run.violation.is_some() {
                break run;
            }
            schedule += 5;
            assert!(schedule < start + 500, "family never caught the mutant");
        };
        let replay = shrunk_replay(&cfg, seed, schedule, run);
        let name = format!("mutant-d{}-{}.json", dim, replay.adversary);
        std::fs::write(dir.join(&name), replay.to_json() + "\n").expect("write corpus file");
        println!(
            "wrote {name} (schedule {schedule}, {} decisions)",
            replay.decisions.len()
        );
    }
}

/// Regenerates the split/merge corpus subset (run manually:
/// `cargo test --test check_replays -- --ignored regenerate_splitmerge_corpus`).
/// Scans mutant schedules for recontaminations within Hamming distance 2
/// of the homebase — the violations that arise where the safe region is
/// densest and the connectivity forest churns hardest — and keeps the
/// three longest-scheduled hits across distinct (dim, seed) problems.
#[test]
#[ignore]
fn regenerate_splitmerge_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let mut written = 0;
    // One pick per (dim, seed, adversary family): among that family's
    // schedules (family rotation is `schedule % 5`), keep the *longest*
    // near-homebase hit — the schedule that built and tore down the most
    // guard structure around node 0 before the oracle fired. Distinct
    // families keep the file names distinct.
    for (dim, seed, family) in [(5u32, 21u64, 0u64), (6, 22, 3), (6, 23, 4)] {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, dim);
        let found = (0..40u64)
            .map(|i| family + 5 * i)
            .filter_map(|schedule| {
                let run = explore_schedule(&cfg, seed, schedule);
                let near_home = matches!(
                    run.violation.as_ref().map(|v| &v.kind),
                    Some(hypersweep::check::ViolationKind::Recontamination { node })
                        if node.count_ones() <= 2
                );
                near_home.then_some((schedule, run))
            })
            .max_by_key(|(schedule, run)| (run.steps, u64::MAX - schedule));
        let Some((schedule, run)) = found else {
            panic!("d={dim} seed={seed}: no near-homebase recontamination in family {family}");
        };
        // Budget 0: these replays exist to exercise the *schedule*, not to
        // minimize it — full canonicalization would collapse the mutant to
        // the all-zeros trace (as the plain corpus entries show) and throw
        // away exactly the split/merge churn this subset is for.
        let replay = hypersweep::check::shrunk_replay_with_budget(&cfg, seed, schedule, run, 0);
        assert!(
            !replay.decisions.is_empty(),
            "an unshrunk adversarial schedule must keep non-canonical decisions"
        );
        let name = format!("mutant-d{dim}-splitmerge-{}.json", replay.adversary);
        std::fs::write(dir.join(&name), replay.to_json() + "\n").expect("write corpus file");
        println!(
            "wrote {name} (schedule {schedule}, {} decisions, violation {})",
            replay.decisions.len(),
            replay.violation
        );
        written += 1;
    }
    assert_eq!(written, 3);
}
