//! Cross-executor agreement: the discrete-event engine, the procedural
//! trace generators, and the real-thread executor must tell the same
//! story.

use hypersweep::core::cloning::CloningAgent;
use hypersweep::core::visibility::VisibilityAgent;
use hypersweep::prelude::*;
use hypersweep::sim::threaded::{run_threaded, ThreadedConfig};
use hypersweep::sim::Role;
use hypersweep_testutil::audit_far_corner as audit;

#[test]
fn threaded_visibility_matches_des() {
    for d in 2..=7 {
        let cube = Hypercube::new(d);
        let strategy = VisibilityStrategy::new(cube);
        let des = strategy.run(Policy::Fifo).unwrap();

        let programs: Vec<(VisibilityAgent, Role)> = (0..strategy.team_size())
            .map(|_| (VisibilityAgent, Role::Worker))
            .collect();
        let threaded = run_threaded(
            cube,
            programs,
            ThreadedConfig {
                visibility: true,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();

        assert_eq!(
            threaded.metrics.total_moves(),
            des.metrics.total_moves(),
            "d={d}: thread schedule changed the move count"
        );
        assert_eq!(threaded.metrics.team_size, des.metrics.team_size);
        let verdict = audit(cube, &threaded.events);
        assert!(verdict.is_complete(), "d={d}: {:?}", verdict.violations);
    }
}

#[test]
fn threaded_cloning_matches_des() {
    for d in 2..=7 {
        let cube = Hypercube::new(d);
        let threaded = run_threaded(
            cube,
            vec![(CloningAgent::new(), Role::Worker)],
            ThreadedConfig {
                visibility: true,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            threaded.metrics.total_moves(),
            (cube.node_count() - 1) as u64,
            "d={d}: cloning must cross each tree edge once"
        );
        assert_eq!(threaded.metrics.team_size, (cube.node_count() / 2) as u64);
        let verdict = audit(cube, &threaded.events);
        assert!(verdict.is_complete(), "d={d}: {:?}", verdict.violations);
    }
}

#[test]
fn synchronous_variant_agrees_across_executors() {
    // The synchronous agent is only defined under the global clock, which
    // real threads don't provide; its canonical trace is the visibility
    // wavefront (§5 of the paper), so the threaded leg executes the
    // equivalent visibility team and all three executors must agree.
    for d in 2..=6 {
        let cube = Hypercube::new(d);
        let strategy = SynchronousStrategy::new(cube);

        let engine = strategy.run(Policy::Synchronous).unwrap();
        assert!(
            engine.is_complete(),
            "d={d}: {:?}",
            engine.verdict.violations
        );

        let fast = strategy.fast(true);
        assert!(fast.is_complete(), "d={d}: {:?}", fast.verdict.violations);
        assert_eq!(engine.metrics.total_moves(), fast.metrics.total_moves());
        assert_eq!(engine.metrics.team_size, fast.metrics.team_size);
        assert_eq!(engine.metrics.ideal_time, fast.metrics.ideal_time);

        let programs: Vec<(VisibilityAgent, Role)> = (0..strategy.team_size())
            .map(|_| (VisibilityAgent, Role::Worker))
            .collect();
        let threaded = run_threaded(
            cube,
            programs,
            ThreadedConfig {
                visibility: true,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            threaded.metrics.total_moves(),
            engine.metrics.total_moves(),
            "d={d}: thread schedule changed the move count"
        );
        assert_eq!(threaded.metrics.team_size, engine.metrics.team_size);
        let verdict = audit(cube, &threaded.events);
        assert!(verdict.is_complete(), "d={d}: {:?}", verdict.violations);
    }
}

#[test]
fn cloning_agrees_across_executors() {
    for d in 2..=7 {
        let cube = Hypercube::new(d);
        let strategy = CloningStrategy::new(cube);

        let engine = strategy.run(Policy::Fifo).unwrap();
        assert!(
            engine.is_complete(),
            "d={d}: {:?}",
            engine.verdict.violations
        );

        let fast = strategy.fast(true);
        assert!(fast.is_complete(), "d={d}: {:?}", fast.verdict.violations);
        assert_eq!(engine.metrics.total_moves(), fast.metrics.total_moves());
        assert_eq!(engine.metrics.team_size, fast.metrics.team_size);

        let threaded = run_threaded(
            cube,
            vec![(CloningAgent::new(), Role::Worker)],
            ThreadedConfig {
                visibility: true,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            threaded.metrics.total_moves(),
            engine.metrics.total_moves(),
            "d={d}: thread schedule changed the move count"
        );
        assert_eq!(threaded.metrics.team_size, engine.metrics.team_size);
        let verdict = audit(cube, &threaded.events);
        assert!(verdict.is_complete(), "d={d}: {:?}", verdict.violations);
    }
}

#[test]
fn threaded_runs_are_repeatedly_correct() {
    // Different OS interleavings every time; the audit must hold for all.
    let cube = Hypercube::new(6);
    for _ in 0..5 {
        let programs: Vec<(VisibilityAgent, Role)> =
            (0..32).map(|_| (VisibilityAgent, Role::Worker)).collect();
        let report = run_threaded(
            cube,
            programs,
            ThreadedConfig {
                visibility: true,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();
        let verdict = audit(cube, &report.events);
        assert!(verdict.is_complete(), "{:?}", verdict.violations);
    }
}

#[test]
fn synthesized_traces_audit_clean() {
    for d in 1..=8 {
        let cube = Hypercube::new(d);
        let (_, ev) = CleanStrategy::new(cube).synthesize(true);
        let verdict = audit(cube, &ev.unwrap());
        assert!(
            verdict.is_complete(),
            "clean d={d}: {:?}",
            verdict.violations
        );
        let (_, ev) = VisibilityStrategy::new(cube).synthesize(true);
        let verdict = audit(cube, &ev.unwrap());
        assert!(verdict.is_complete(), "visibility d={d}");
        let (_, ev) = CloningStrategy::new(cube).synthesize(true);
        let verdict = audit(cube, &ev.unwrap());
        assert!(verdict.is_complete(), "cloning d={d}");
    }
}

#[test]
fn final_occupancy_is_identical_across_executors() {
    // Visibility leaves exactly one guard on every broadcast-tree leaf in
    // every executor.
    let cube = Hypercube::new(6);
    let tree = BroadcastTree::new(cube);
    let programs: Vec<(VisibilityAgent, Role)> =
        (0..32).map(|_| (VisibilityAgent, Role::Worker)).collect();
    let threaded = run_threaded(
        cube,
        programs,
        ThreadedConfig {
            visibility: true,
            ..ThreadedConfig::default()
        },
    )
    .unwrap();
    for x in cube.nodes() {
        assert_eq!(
            threaded.occupancy[x.index()],
            u32::from(tree.is_leaf(x)),
            "node {x}"
        );
    }
}
