//! End-to-end captures: every strategy, every schedule, dimensions 1–8,
//! every run audited for monotonicity, contiguity, coverage and capture,
//! and every counter checked against the paper's closed forms.

use hypersweep::core::predictions::{clean_prediction, cloning_prediction, visibility_prediction};
use hypersweep::prelude::*;

#[test]
fn clean_captures_under_all_adversaries() {
    for d in 1..=7 {
        let s = CleanStrategy::new(Hypercube::new(d));
        for policy in Policy::adversaries(4) {
            let outcome = s
                .run(policy)
                .unwrap_or_else(|e| panic!("d={d} {policy:?}: {e}"));
            assert!(
                outcome.is_complete(),
                "d={d} {policy:?}: {:?}",
                outcome.verdict.violations
            );
            let p = clean_prediction(d);
            assert_eq!(
                u128::from(outcome.metrics.worker_moves),
                p.worker_moves,
                "Theorem 3 worker moves are schedule-independent (d={d}, {policy:?})"
            );
            assert_eq!(u128::from(outcome.metrics.team_size), p.team);
            assert!(u128::from(outcome.metrics.coordinator_moves) <= p.sync_moves_upper);
        }
    }
}

#[test]
fn visibility_captures_under_all_adversaries() {
    for d in 1..=8 {
        let s = VisibilityStrategy::new(Hypercube::new(d));
        for policy in Policy::adversaries(4) {
            let outcome = s.run(policy).unwrap();
            assert!(outcome.is_complete(), "d={d} {policy:?}");
            let p = visibility_prediction(d);
            assert_eq!(u128::from(outcome.metrics.team_size), p.agents);
            assert_eq!(u128::from(outcome.metrics.total_moves()), p.moves);
        }
    }
}

#[test]
fn cloning_captures_under_all_adversaries() {
    for d in 1..=8 {
        let s = CloningStrategy::new(Hypercube::new(d));
        for policy in Policy::adversaries(4) {
            let outcome = s.run(policy).unwrap();
            assert!(outcome.is_complete(), "d={d} {policy:?}");
            let p = cloning_prediction(d);
            assert_eq!(u128::from(outcome.metrics.team_size), p.agents);
            assert_eq!(u128::from(outcome.metrics.total_moves()), p.moves);
        }
    }
}

#[test]
fn synchronous_variant_under_lockstep() {
    for d in 1..=8 {
        let s = SynchronousStrategy::new(Hypercube::new(d));
        let outcome = s.run(Policy::Synchronous).unwrap();
        assert!(outcome.is_complete(), "d={d}");
        assert_eq!(outcome.metrics.ideal_time, Some(u64::from(d)));
    }
}

#[test]
fn ideal_times_match_theorems_under_lockstep() {
    for d in 1..=8 {
        let cube = Hypercube::new(d);
        let vis = VisibilityStrategy::new(cube)
            .run(Policy::Synchronous)
            .unwrap();
        assert_eq!(
            vis.metrics.ideal_time,
            Some(u64::from(d)),
            "Theorem 7 d={d}"
        );
        let cl = CloningStrategy::new(cube).run(Policy::Synchronous).unwrap();
        assert_eq!(
            cl.metrics.ideal_time,
            Some(u64::from(d)),
            "§5 cloning d={d}"
        );
    }
    // Theorem 4: CLEAN's time is the synchronizer's sequential walk.
    for d in [3u32, 5, 6] {
        let outcome = CleanStrategy::new(Hypercube::new(d))
            .run(Policy::Synchronous)
            .unwrap();
        let t = outcome.metrics.ideal_time.unwrap();
        let sync = outcome.metrics.coordinator_moves;
        assert!(t >= sync, "d={d}");
        assert!(
            t <= 8 * sync + 8 * u64::from(d),
            "d={d}: time {t} vs sync walk {sync}"
        );
    }
}

#[test]
fn intruder_is_always_captured_at_the_end() {
    // The greedy evader survives until its component is extinguished; for
    // monotone contiguous strategies that means the very last events.
    for d in 2..=6 {
        let outcome = VisibilityStrategy::new(Hypercube::new(d))
            .run(Policy::Fifo)
            .unwrap();
        match outcome.verdict.capture.unwrap() {
            CaptureStatus::Captured { at_event, .. } => {
                assert!(
                    at_event * 10 >= outcome.verdict.events * 5,
                    "d={d}: capture at {at_event}/{} is implausibly early",
                    outcome.verdict.events
                );
            }
            s => panic!("d={d}: {s:?}"),
        }
    }
}

#[test]
fn fast_paths_and_engines_agree_everywhere() {
    for d in 1..=7 {
        let cube = Hypercube::new(d);
        for (fast, engine) in [
            (
                CleanStrategy::new(cube).fast(false).metrics,
                CleanStrategy::new(cube).run(Policy::Fifo).unwrap().metrics,
            ),
            (
                VisibilityStrategy::new(cube).fast(false).metrics,
                VisibilityStrategy::new(cube)
                    .run(Policy::RoundRobin)
                    .unwrap()
                    .metrics,
            ),
            (
                CloningStrategy::new(cube).fast(false).metrics,
                CloningStrategy::new(cube)
                    .run(Policy::Lifo)
                    .unwrap()
                    .metrics,
            ),
        ] {
            assert_eq!(fast.total_moves(), engine.total_moves(), "d={d}");
            assert_eq!(fast.team_size, engine.team_size, "d={d}");
        }
    }
}

#[test]
fn whiteboards_and_local_memory_stay_logarithmic() {
    // §2 claims O(log n) bits suffice for all algorithms: check the peak
    // metered usage grows at most linearly in d.
    for d in [4u32, 6, 8] {
        let vis = VisibilityStrategy::new(Hypercube::new(d))
            .run(Policy::Fifo)
            .unwrap();
        assert!(
            vis.metrics.peak_board_bits <= 2 * d + 8,
            "d={d}: visibility whiteboard {} bits",
            vis.metrics.peak_board_bits
        );
        let clean = CleanStrategy::new(Hypercube::new(d))
            .run(Policy::Fifo)
            .unwrap();
        assert!(
            clean.metrics.peak_board_bits <= 16 * d + 64,
            "d={d}: CLEAN whiteboard {} bits",
            clean.metrics.peak_board_bits
        );
        assert!(clean.metrics.peak_local_bits <= 64);
    }
}
