//! Campaigns at 100k-schedule scale: the streaming executor's contract.
//!
//! PR 9's campaigns materialized one boxed closure per 32-schedule slice,
//! which at 100k schedules is thousands of queued allocations and no way
//! to stop early. The streaming executor claims slices from an atomic
//! counter and shares a lowest-violation cutoff, so a 100k-schedule
//! campaign is cheap **whenever a counterexample exists** — every slice
//! past the winner is skipped — and exhaustive when quiet. These tests
//! pin the determinism half of that bargain at full scale: the reported
//! counterexample index and its serialized replay must be byte-identical
//! across worker counts and repeated same-seed runs.

use hypersweep::analysis::{run_campaign, CheckCampaign};
use hypersweep::check::{CheckConfig, CheckStrategy};
use hypersweep::scenario::{run_scenario_campaign, GridStrategy, ScenarioCampaign, ScenarioId};
use hypersweep::telemetry::MetricsRegistry;
use hypersweep::topology::GridInstance;

/// The scale the streaming engine is specified at.
const CAMPAIGN: u64 = 100_000;

/// Fixed seed: verdicts must be reproducible.
const SEED: u64 = 2005;

fn campaign_at_scale(strategy: CheckStrategy, dim: u32, planted: Option<u64>) -> CheckCampaign {
    CheckCampaign {
        cfg: CheckConfig::new(strategy, dim),
        schedules: CAMPAIGN,
        seed: SEED,
        planted,
    }
}

/// A 100k-schedule campaign at d=8 with a violation planted mid-stream
/// reports the planted index — and a byte-identical shrunk replay — for
/// `--jobs` 1, 2, and 8 *and* across two same-seed runs of the same job
/// count. The cutoff makes this affordable: only schedules up to the
/// planted index ever run.
#[test]
fn campaign_100k_at_d8_is_byte_identical_across_jobs_and_reruns() {
    const PLANTED: u64 = 137;
    let c = campaign_at_scale(CheckStrategy::Cloning, 8, Some(PLANTED));
    let reg = MetricsRegistry::disabled();
    let mut jsons = Vec::new();
    for jobs in [1usize, 2, 8] {
        let out = run_campaign(&c, jobs, &reg);
        let replay = out
            .counterexample
            .unwrap_or_else(|| panic!("planted violation missed at jobs={jobs}"));
        assert_eq!(
            replay.schedule, PLANTED,
            "jobs={jobs} must converge on the planted index"
        );
        jsons.push(replay.to_json());
    }
    // Second same-seed run at the most contended width.
    let rerun = run_campaign(&c, 8, &reg)
        .counterexample
        .expect("rerun finds the planted violation");
    jsons.push(rerun.to_json());
    assert!(
        jsons.windows(2).all(|w| w[0] == w[1]),
        "counterexample replay must serialize byte-identically across jobs and reruns"
    );
}

/// Shrinking at the new campaign size is deterministic too: the replay the
/// 100k campaign writes is already shrunk, and re-running the whole
/// campaign (which re-shrinks from scratch) reproduces it byte for byte.
#[test]
fn shrunk_replay_is_byte_identical_at_campaign_scale() {
    let c = campaign_at_scale(CheckStrategy::MutantEagerGuard, 6, None);
    let reg = MetricsRegistry::disabled();
    let first = run_campaign(&c, 4, &reg)
        .counterexample
        .expect("mutant caught at scale");
    let second = run_campaign(&c, 4, &reg)
        .counterexample
        .expect("mutant caught again");
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "shrink must be deterministic at campaign scale"
    );
    let reexecuted = first.verify().expect("shrunk replay reproduces");
    assert_eq!(reexecuted.violation, Some(first.violation.clone()));
}

/// Negative control at scale: the eager-guard mutant is still caught at
/// schedule 0 under streaming, and the cutoff then discharges the
/// remaining 99,968 schedules without running them — the slice telemetry
/// proves the skip actually happened.
#[test]
fn eager_guard_mutant_is_caught_at_schedule_zero_in_a_100k_campaign() {
    let c = campaign_at_scale(CheckStrategy::MutantEagerGuard, 6, None);
    let reg = MetricsRegistry::new();
    let out = run_campaign(&c, 1, &reg);
    let replay = out.counterexample.expect("mutant must be caught");
    assert_eq!(replay.schedule, 0, "mutant must die on the first schedule");
    assert_eq!(
        out.schedules_run, 1,
        "serial: nothing past the violation runs"
    );
    let snap = reg.snapshot();
    let claimed = snap.counter("check.slices").unwrap_or(0);
    let skipped = snap.counter("check.slices_skipped").unwrap_or(0);
    assert_eq!(
        claimed + skipped,
        CAMPAIGN / 32,
        "every slice accounted for"
    );
    assert!(
        skipped >= CAMPAIGN / 32 - 1,
        "the cutoff must skip (not run) the tail: skipped {skipped}"
    );
}

/// The grid mutant under the scenario driver's streaming path: caught at
/// schedule 0 of a 100k-schedule campaign, tail skipped.
#[test]
fn grid_leaky_guard_mutant_is_caught_at_schedule_zero_in_a_100k_campaign() {
    let campaign = ScenarioCampaign {
        scenario: ScenarioId::Grid,
        strategy: GridStrategy::LeakyGuard,
        side: 6,
        instance: GridInstance::Holes(42),
        schedules: CAMPAIGN,
        seed: 0,
        max_steps: 0,
    };
    let reg = MetricsRegistry::new();
    let out = run_scenario_campaign(&campaign, 1, &reg);
    let c = out.counterexample.expect("grid mutant must be caught");
    assert_eq!(c.schedule, 0, "mutant must die on the first schedule");
    assert_eq!(out.schedules_run, 1);
    let snap = reg.snapshot();
    let claimed = snap.counter("scenario.slices").unwrap_or(0);
    let skipped = snap.counter("scenario.slices_skipped").unwrap_or(0);
    assert_eq!(claimed + skipped, CAMPAIGN / 32);
    assert!(skipped >= CAMPAIGN / 32 - 1);
}

/// A seeded mid-campaign mutant at a *deep* index is found at exactly that
/// index regardless of job count — racing workers can overshoot the
/// planted schedule but can never lose it to the cutoff.
#[test]
fn planted_deep_index_is_exact_for_every_job_count_at_scale() {
    const PLANTED: u64 = 421;
    let c = campaign_at_scale(CheckStrategy::Visibility, 6, Some(PLANTED));
    let reg = MetricsRegistry::disabled();
    for jobs in [1usize, 3, 8] {
        let out = run_campaign(&c, jobs, &reg);
        assert_eq!(
            out.counterexample
                .expect("planted violation found")
                .schedule,
            PLANTED,
            "jobs={jobs}"
        );
    }
}
