//! Pooled execution must not leak into the exported artifacts: the JSON
//! for every experiment id is byte-identical whether the harness runs
//! sequentially (`--jobs 1`) or on a contended pool (`--jobs 8`), and the
//! shared run cache must actually dedupe the runs experiments have in
//! common.

use std::sync::Arc;

use hypersweep::analysis::experiments::ALL_IDS;
use hypersweep::analysis::{run_ids_pooled, ExperimentConfig, RunCache};
use hypersweep::server::{Client, Dispatcher, Request};
use hypersweep_testutil::{quick_limits, spawn_bound_server, standard_workload};

#[test]
fn exported_json_is_byte_identical_across_jobs() {
    let cfg = ExperimentConfig::quick();
    let sequential = run_ids_pooled(ALL_IDS, &cfg, 1);
    let pooled = run_ids_pooled(ALL_IDS, &cfg, 8);

    assert_eq!(sequential.results.len(), ALL_IDS.len());
    assert_eq!(pooled.results.len(), ALL_IDS.len());
    for (seq, par) in sequential.results.iter().zip(&pooled.results) {
        assert_eq!(seq.id, par.id, "merge order changed under the pool");
        let seq_json = serde_json::to_string_pretty(seq).unwrap();
        let par_json = serde_json::to_string_pretty(par).unwrap();
        assert_eq!(
            seq_json, par_json,
            "experiment {}: exported JSON differs between jobs=1 and jobs=8",
            seq.id
        );
    }

    // The whole point of the shared cache: runs declared by several
    // experiments (CLEAN's fast trace in t2/t3/e11/e13, the visibility
    // runs in t5/t7/t8, …) execute once and hit thereafter.
    for report in [&sequential, &pooled] {
        assert!(
            report.summary.cache_hits > 0,
            "jobs={}: no run was shared across experiments",
            report.summary.jobs
        );
        assert_eq!(
            report.summary.unique_runs as u64, report.summary.cache_misses,
            "every miss must correspond to exactly one executed run"
        );
    }
    assert_eq!(
        sequential.summary.cache_misses, pooled.summary.cache_misses,
        "the pool must not change which unique runs execute"
    );
}

/// The same guarantee for the online daemon: a `plan`/`predict`/`audit`
/// request answered under 8-way client concurrency is byte-identical to
/// the single-client answer, and both match the offline dispatcher over a
/// fresh cache (serving-with-contention must not leak into responses).
#[test]
fn served_responses_are_byte_identical_across_client_counts() {
    let workload: Vec<Request> = standard_workload();
    let (addr, shutdown, run) = spawn_bound_server(quick_limits());

    let fetch_all = |addr: &str| -> Vec<String> {
        let mut client = Client::connect(addr).expect("connect");
        workload
            .iter()
            .map(|r| client.send_raw(&r.to_line()).expect("response"))
            .collect()
    };

    // Single client first (also warms the cache), then 8 concurrent
    // clients issuing the identical stream.
    let single = fetch_all(&addr);
    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| fetch_all(&addr))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (c, streams) in concurrent.iter().enumerate() {
        assert_eq!(
            streams, &single,
            "client {c} of 8 saw different bytes than the single client"
        );
    }

    // And the wire bytes equal the offline answer over a fresh cache.
    let offline = Dispatcher::new(Arc::new(RunCache::new()), 20);
    for (request, served) in workload.iter().zip(&single) {
        assert_eq!(
            &offline.handle(*request).to_line(),
            served,
            "served response for {} diverged from the offline dispatcher",
            request.to_line()
        );
    }

    shutdown();
    let stats = run.join().expect("clean shutdown");
    assert_eq!(
        stats.served.errors, 0,
        "the deterministic workload must not produce errors"
    );
    assert_eq!(stats.served.busy + stats.served.timeouts, 0);
}

/// Serving-tier configuration must be invisible on the wire: any cache
/// shard count and any pipeline depth produce the exact bytes the offline
/// dispatcher computes over a fresh cache.
#[test]
fn responses_are_byte_identical_across_shard_counts_and_pipeline_depths() {
    let workload: Vec<Request> = standard_workload();
    let offline = Dispatcher::new(Arc::new(RunCache::new()), 20);
    let expected: Vec<String> = workload
        .iter()
        .map(|r| offline.handle(*r).to_line())
        .collect();

    for shards in [1usize, 4] {
        let limits = hypersweep::server::ServerLimits {
            cache_shards: shards,
            ..quick_limits()
        };
        let (addr, shutdown, run) = spawn_bound_server(limits);
        for depth in [1usize, 8] {
            let mut client = Client::connect(&addr).expect("connect");
            let mut served = Vec::with_capacity(workload.len());
            for batch in workload.chunks(depth) {
                let lines: Vec<String> = batch.iter().map(Request::to_line).collect();
                served.extend(client.send_raw_batch(&lines).expect("batch"));
            }
            assert_eq!(
                served, expected,
                "shards={shards} depth={depth} changed the wire bytes"
            );
        }
        shutdown();
        let stats = run.join().expect("clean shutdown");
        assert_eq!(stats.cache.shards, shards as u64);
        assert_eq!(stats.served.errors, 0);
    }
}
