//! Pooled execution must not leak into the exported artifacts: the JSON
//! for every experiment id is byte-identical whether the harness runs
//! sequentially (`--jobs 1`) or on a contended pool (`--jobs 8`), and the
//! shared run cache must actually dedupe the runs experiments have in
//! common.

use hypersweep::analysis::experiments::ALL_IDS;
use hypersweep::analysis::{run_ids_pooled, ExperimentConfig};

#[test]
fn exported_json_is_byte_identical_across_jobs() {
    let cfg = ExperimentConfig::quick();
    let sequential = run_ids_pooled(ALL_IDS, &cfg, 1);
    let pooled = run_ids_pooled(ALL_IDS, &cfg, 8);

    assert_eq!(sequential.results.len(), ALL_IDS.len());
    assert_eq!(pooled.results.len(), ALL_IDS.len());
    for (seq, par) in sequential.results.iter().zip(&pooled.results) {
        assert_eq!(seq.id, par.id, "merge order changed under the pool");
        let seq_json = serde_json::to_string_pretty(seq).unwrap();
        let par_json = serde_json::to_string_pretty(par).unwrap();
        assert_eq!(
            seq_json, par_json,
            "experiment {}: exported JSON differs between jobs=1 and jobs=8",
            seq.id
        );
    }

    // The whole point of the shared cache: runs declared by several
    // experiments (CLEAN's fast trace in t2/t3/e11/e13, the visibility
    // runs in t5/t7/t8, …) execute once and hit thereafter.
    for report in [&sequential, &pooled] {
        assert!(
            report.summary.cache_hits > 0,
            "jobs={}: no run was shared across experiments",
            report.summary.jobs
        );
        assert_eq!(
            report.summary.unique_runs as u64, report.summary.cache_misses,
            "every miss must correspond to exactly one executed run"
        );
    }
    assert_eq!(
        sequential.summary.cache_misses, pooled.summary.cache_misses,
        "the pool must not change which unique runs execute"
    );
}
