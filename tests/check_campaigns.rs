//! Checker campaigns at scale: d=12 with the stride-1 default.
//!
//! PR 5's checker had to stride-sample the contiguity/frontier oracles
//! above d=10 to stay affordable; the incremental clean-region
//! connectivity kernel makes them `O(1)` per event, so the default stride
//! is now 1 at every dimension. These tests pin that down where it
//! matters: `H_12` (4096 nodes), every adversary family, every event
//! checked.

use hypersweep::check::{
    explore_schedule, explore_schedule_in, shrunk_replay_with_budget, Adversary, AdversaryKind,
    CheckArena, CheckConfig, CheckStrategy,
};

/// Campaign seed for the scale-up tests (arbitrary but fixed: the verdict
/// must be deterministic).
const SEED: u64 = 3;

/// All five adversary families stay quiet on a correct strategy at d=12
/// under per-event (stride-1 default) oracle checking. Schedules `0..5`
/// rotate through the full family list (`Adversary::for_schedule`), so
/// one schedule per family suffices for coverage; the cloning strategy
/// keeps the debug-mode runtime tractable at 2^12 nodes.
#[test]
fn stride1_campaign_at_d12_is_quiet_across_all_adversary_families() {
    let cfg = CheckConfig::new(CheckStrategy::Cloning, 12);
    assert_eq!(cfg.stride, 0, "0 must derive the stride-1 default");
    let mut arena = CheckArena::new();
    let mut families: Vec<AdversaryKind> = Vec::new();
    for schedule in 0..AdversaryKind::ALL.len() as u64 {
        families.push(Adversary::for_schedule(SEED, schedule).kind());
        let run = explore_schedule_in(&cfg, SEED, schedule, &mut arena);
        assert_eq!(
            run.violation,
            None,
            "cloning d=12 schedule {schedule} ({:?} adversary): {:?}",
            families.last().unwrap(),
            run.violation
        );
        assert!(
            run.events as usize >= 1 << 12,
            "a full d=12 sweep applies at least n events, saw {}",
            run.events
        );
    }
    families.sort_by_key(|k| k.name());
    families.dedup();
    assert_eq!(
        families.len(),
        AdversaryKind::ALL.len(),
        "schedules 0..5 must cover every adversary family, got {families:?}"
    );
}

/// The synchronous variant at d=12 under per-event checking (its schedule
/// is canonical, so one run is the whole campaign).
#[test]
fn stride1_synchronous_campaign_at_d12_is_quiet() {
    let cfg = CheckConfig::new(CheckStrategy::Synchronous, 12);
    let run = explore_schedule(&cfg, SEED, 0);
    assert_eq!(run.violation, None, "synchronous d=12: {:?}", run.violation);
    assert!(run.events as usize >= 1 << 12);
}

/// The eager-guard mutant is still caught at *schedule 0* at d=12 — the
/// very first interleaving the campaign tries — and shrinking the
/// counterexample is deterministic: two shrinks of the same run serialize
/// to byte-identical replay files, and the replay re-executes to the
/// recorded violation. (The shrink budget is small here: each candidate
/// re-execution walks thousands of steps at d=12, and byte-determinism is
/// independent of how minimal the result is.)
#[test]
fn mutant_caught_at_schedule_zero_at_d12_with_byte_identical_shrunk_replay() {
    let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, 12);
    let run = explore_schedule(&cfg, SEED, 0);
    assert!(
        run.violation.is_some(),
        "mutant must be caught at schedule 0 at d=12"
    );

    const BUDGET: u64 = 6;
    let first = shrunk_replay_with_budget(&cfg, SEED, 0, run.clone(), BUDGET);
    let second = shrunk_replay_with_budget(&cfg, SEED, 0, run, BUDGET);
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "shrinking the same run twice must produce byte-identical replays"
    );

    let reexecuted = first
        .verify()
        .expect("shrunk d=12 replay reproduces its violation");
    assert_eq!(reexecuted.violation, Some(first.violation.clone()));
}
