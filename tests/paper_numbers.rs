//! Golden reproduction table: the headline numbers of the paper, pinned.
//!
//! Any change to the algorithms that alters a count the paper fixes will
//! fail here with the exact dimension and quantity.

use hypersweep::prelude::*;
use hypersweep::topology::combinatorics as comb;

/// (d, CLEAN team, CLEAN worker moves, visibility agents, visibility
/// moves, cloning moves)
const GOLDEN: &[(u32, u128, u128, u128, u128, u128)] = &[
    (1, 2, 2, 1, 1, 1),
    (2, 3, 6, 2, 3, 3),
    (3, 5, 16, 4, 8, 7),
    (4, 8, 40, 8, 20, 15),
    (5, 15, 96, 16, 48, 31),
    (6, 26, 224, 32, 112, 63),
    (7, 51, 512, 64, 256, 127),
    (8, 92, 1152, 128, 576, 255),
    (9, 183, 2560, 256, 1280, 511),
    (10, 337, 5632, 512, 2816, 1023),
    (11, 673, 12288, 1024, 6144, 2047),
    (12, 1255, 26624, 2048, 13312, 4095),
];

#[test]
fn golden_closed_forms() {
    for &(d, team, clean_moves, vis_agents, vis_moves, clone_moves) in GOLDEN {
        assert_eq!(comb::clean_team_size(d), team, "CLEAN team at d={d}");
        assert_eq!(
            comb::clean_agent_moves(d),
            clean_moves,
            "CLEAN worker moves at d={d}"
        );
        assert_eq!(
            comb::visibility_agents(d),
            vis_agents,
            "visibility agents at d={d}"
        );
        assert_eq!(
            comb::visibility_moves(d),
            vis_moves,
            "visibility moves at d={d}"
        );
        assert_eq!(
            comb::cloning_moves(d),
            clone_moves,
            "cloning moves at d={d}"
        );
    }
}

#[test]
fn golden_measured_runs_match() {
    // Re-measure the small dimensions end to end on the engine.
    for &(d, team, clean_moves, vis_agents, vis_moves, clone_moves) in &GOLDEN[..7] {
        let cube = Hypercube::new(d);
        let c = CleanStrategy::new(cube).run(Policy::Fifo).unwrap();
        assert_eq!(u128::from(c.metrics.team_size), team, "d={d}");
        assert_eq!(u128::from(c.metrics.worker_moves), clean_moves, "d={d}");
        let v = VisibilityStrategy::new(cube).run(Policy::Fifo).unwrap();
        assert_eq!(u128::from(v.metrics.team_size), vis_agents, "d={d}");
        assert_eq!(u128::from(v.metrics.total_moves()), vis_moves, "d={d}");
        let k = CloningStrategy::new(cube).run(Policy::Fifo).unwrap();
        assert_eq!(u128::from(k.metrics.total_moves()), clone_moves, "d={d}");
    }
    // And the larger ones through the fast paths.
    for &(d, team, clean_moves, vis_agents, vis_moves, clone_moves) in &GOLDEN[7..] {
        let cube = Hypercube::new(d);
        let c = CleanStrategy::new(cube).fast(false).metrics;
        assert_eq!(u128::from(c.team_size), team, "d={d}");
        assert_eq!(u128::from(c.worker_moves), clean_moves, "d={d}");
        let v = VisibilityStrategy::new(cube).fast(false).metrics;
        assert_eq!(u128::from(v.team_size), vis_agents, "d={d}");
        assert_eq!(u128::from(v.total_moves()), vis_moves, "d={d}");
        let k = CloningStrategy::new(cube).fast(false).metrics;
        assert_eq!(u128::from(k.total_moves()), clone_moves, "d={d}");
    }
}

#[test]
fn abstract_complexity_orders() {
    // Shape claims from the abstract, verified empirically over d = 6..=16:
    // CLEAN: O(n log n) moves; visibility: n/2 agents, log n time,
    // O(n log n) moves.
    for d in 6..=16u32 {
        let n = comb::pow2(d);
        // Moves within constant factor of n·log n (both strategies).
        let clean_moves = comb::clean_agent_moves(d);
        assert!(clean_moves <= n * u128::from(d));
        assert!(2 * clean_moves >= n * u128::from(d));
        let vis_moves = comb::visibility_moves(d);
        assert!(4 * vis_moves >= n * u128::from(d));
        assert!(vis_moves <= n * u128::from(d));
        // Visibility agents exactly n/2.
        assert_eq!(comb::visibility_agents(d), n / 2);
        // Teams: CLEAN strictly smaller from d = 5 on.
        if d >= 5 {
            assert!(comb::clean_team_size(d) < n / 2);
        }
    }
}

#[test]
fn reproduction_note_on_theorem_2_asymptotics() {
    // The paper states the CLEAN team is O(n/log n); the exact formula's
    // dominant term is the central binomial C(d, d/2) = Θ(n/sqrt(d)).
    // Demonstrate that team·log n / n grows (so O(n/log n) fails) while
    // team·sqrt(log n)/n stays bounded.
    let mut prev_log_ratio = 0.0f64;
    for d in (8..=24u32).step_by(2) {
        let team = comb::clean_team_size(d) as f64;
        let n = comb::pow2(d) as f64;
        let log_ratio = team * d as f64 / n;
        let sqrt_ratio = team * (d as f64).sqrt() / n;
        assert!(
            log_ratio > prev_log_ratio,
            "team/(n/log n) should grow at d={d}"
        );
        assert!(
            (0.5..=2.0).contains(&sqrt_ratio),
            "team/(n/sqrt(log n)) should stay Θ(1), got {sqrt_ratio} at d={d}"
        );
        prev_log_ratio = log_ratio;
    }
}
