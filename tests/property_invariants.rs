//! Property-based tests over dimensions, seeds, schedules and trees.

use proptest::prelude::*;

use hypersweep::baselines::tree_search::{tree_search_number, tree_search_plan};
use hypersweep::baselines::{boundary_optimum, greedy_plan};
use hypersweep::prelude::*;
use hypersweep::topology::graph::AdjGraph;
use hypersweep::topology::{combinatorics as comb, properties};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Properties 1–8 + Lemma 1 hold for every dimension.
    #[test]
    fn structural_properties_hold(d in 1u32..=10) {
        properties::check_all(Hypercube::new(d)).unwrap();
    }

    /// The visibility strategy survives arbitrary random adversaries.
    #[test]
    fn visibility_correct_under_random_adversaries(d in 1u32..=7, seed in 0u64..1000) {
        let outcome = VisibilityStrategy::new(Hypercube::new(d))
            .run(Policy::Random(seed))
            .unwrap();
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(
            u128::from(outcome.metrics.total_moves()),
            comb::visibility_moves(d)
        );
    }

    /// Algorithm CLEAN survives arbitrary random adversaries.
    #[test]
    fn clean_correct_under_random_adversaries(d in 1u32..=6, seed in 0u64..1000) {
        let outcome = CleanStrategy::new(Hypercube::new(d))
            .run(Policy::Random(seed))
            .unwrap();
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(
            u128::from(outcome.metrics.worker_moves),
            comb::clean_agent_moves(d)
        );
    }

    /// The cloning variant survives arbitrary random adversaries with
    /// exactly n − 1 moves.
    #[test]
    fn cloning_correct_under_random_adversaries(d in 1u32..=7, seed in 0u64..1000) {
        let outcome = CloningStrategy::new(Hypercube::new(d))
            .run(Policy::Random(seed))
            .unwrap();
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(
            u128::from(outcome.metrics.total_moves()),
            comb::pow2(d) - 1
        );
    }

    /// Via-meet navigation is a shortest path that never climbs above the
    /// endpoints' common level.
    #[test]
    fn via_meet_paths_are_shortest_and_low(d in 2u32..=10, a in 0u32..1024, b in 0u32..1024) {
        let cube = Hypercube::new(d);
        let n = cube.node_count() as u32;
        let x = Node(a % n);
        let y = Node(b % n);
        let path = cube.via_meet_path(x, y);
        prop_assert_eq!(path.len() as u32, cube.distance(x, y));
        let cap = x.level().max(y.level());
        let mut prev = x;
        for &h in &path {
            prop_assert_eq!(prev.hamming(h), 1);
            prop_assert!(h.level() <= cap);
            prev = h;
        }
    }

    /// Binomial identities the proofs rely on.
    #[test]
    fn lemma3_and_theorem3_identities(d in 2u32..=24) {
        for l in 1..d {
            prop_assert_eq!(
                comb::lemma3_extra_agents(d, l),
                comb::lemma3_extra_agents_sum(d, l)
            );
        }
        prop_assert_eq!(comb::clean_agent_moves(d), comb::clean_agent_moves_sum(d));
        prop_assert_eq!(comb::visibility_moves(d), comb::visibility_moves_sum(d));
    }
}

/// A random tree on `n` nodes from a Prüfer-like parent assignment.
fn arb_tree(max_nodes: usize) -> impl Strategy<Value = AdjGraph> {
    (2usize..=max_nodes)
        .prop_flat_map(|n| (Just(n), proptest::collection::vec(0u32..u32::MAX, n - 1)))
        .prop_map(|(n, picks)| {
            let mut g = AdjGraph::with_nodes(n);
            for (i, pick) in picks.into_iter().enumerate() {
                let v = (i + 1) as u32;
                let parent = pick % v; // attach to any earlier node
                g.add_edge(Node(v), Node(parent));
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tree strategy generated from the recurrence always audits clean
    /// on its own tree, with exactly the computed team.
    #[test]
    fn tree_plans_are_correct_searches(tree in arb_tree(24)) {
        let root = Node(0);
        let plan = tree_search_plan(&tree, root);
        let verdict = verify_trace(&tree, root, &plan.events, MonitorConfig::default());
        prop_assert!(verdict.is_complete(), "violations: {:?}", verdict.violations);
        prop_assert_eq!(plan.team, tree_search_number(&tree, root));
    }

    /// The recurrence value is sandwiched by the exhaustive guards-only
    /// optimum: optimum ≤ team ≤ optimum + 1.
    #[test]
    fn tree_team_is_within_one_of_boundary_optimum(tree in arb_tree(12)) {
        let root = Node(0);
        let dp = tree_search_number(&tree, root);
        let opt = boundary_optimum(&tree, root).peak_boundary;
        prop_assert!(dp >= opt, "dp {} below the lower bound {}", dp, opt);
        prop_assert!(dp <= opt + 1, "dp {} not within one of optimum {}", dp, opt);
    }
}

/// A random connected graph: a random tree plus extra random edges.
fn arb_connected_graph(max_nodes: usize) -> impl Strategy<Value = AdjGraph> {
    (3usize..=max_nodes)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0u32..u32::MAX, n - 1),
                proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 0..n),
            )
        })
        .prop_map(|(n, picks, extra)| {
            let mut g = AdjGraph::with_nodes(n);
            for (i, pick) in picks.into_iter().enumerate() {
                let v = (i + 1) as u32;
                g.add_edge(Node(v), Node(pick % v));
            }
            for (a, b) in extra {
                let a = a % n as u32;
                let b = b % n as u32;
                if a != b {
                    g.add_edge(Node(a), Node(b));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generic greedy planner produces a correct, complete, audited
    /// search on arbitrary connected graphs.
    #[test]
    fn greedy_planner_is_correct_on_random_graphs(g in arb_connected_graph(28)) {
        let plan = greedy_plan(&g, Node(0));
        let verdict = verify_trace(&g, Node(0), &plan.events, MonitorConfig::default());
        prop_assert!(verdict.is_complete(), "violations: {:?}", verdict.violations);
        // The plan's own peak-boundary claim is consistent with the exact
        // optimum (never below it) when the graph is small enough.
        if hypersweep::topology::Topology::node_count(&g) <= 16 {
            let opt = boundary_optimum(&g, Node(0)).peak_boundary;
            prop_assert!(plan.peak_boundary >= opt);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random (illegal) traces never panic the monitors, and teleporting
    /// spawns away from the connected region are flagged.
    #[test]
    fn monitors_are_total_on_arbitrary_traces(
        d in 2u32..=5,
        walk in proptest::collection::vec((0u32..64, 1u32..6), 1..40)
    ) {
        use hypersweep::sim::{Event, EventKind, Role};
        let cube = Hypercube::new(d);
        let n = cube.node_count() as u32;
        let mut events = vec![Event {
            time: 0,
            kind: EventKind::Spawn { agent: 0, node: Node::ROOT, role: Role::Worker },
        }];
        let mut pos = Node::ROOT;
        for (salt, port) in walk {
            let p = 1 + (port + salt) % d;
            let to = pos.flip(p.min(d));
            if to.0 < n {
                events.push(Event {
                    time: 0,
                    kind: EventKind::Move { agent: 0, from: pos, to, role: Role::Worker },
                });
                pos = to;
            }
        }
        // Must not panic; verdict fields are consistent.
        let verdict = verify_trace(&cube, Node::ROOT, &events, MonitorConfig::default());
        if verdict.all_clean {
            // A single agent cannot monotonically clean a hypercube of
            // d ≥ 2 — if everything ended clean, monotonicity must have
            // been violated along the way.
            prop_assert!(d < 2 || !verdict.monotone);
        }
    }
}
