//! Quickstart: capture an intruder in a 64-node hypercube.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hypersweep::prelude::*;

fn main() {
    // The network: a 6-dimensional hypercube (64 hosts), all initially
    // contaminated except the homebase 000000 where the team assembles.
    let cube = Hypercube::new(6);

    // Strategy 1: the paper's coordinated Algorithm CLEAN — the smallest
    // team (26 agents incl. the synchronizer), sequential sweep.
    let clean = CleanStrategy::new(cube)
        .run(Policy::Fifo)
        .expect("CLEAN completes");
    assert!(clean.is_complete());
    println!(
        "Algorithm CLEAN           : {:>3} agents, {:>5} moves",
        clean.metrics.team_size,
        clean.metrics.total_moves()
    );

    // Strategy 2: CLEAN WITH VISIBILITY — fully local, n/2 agents, log n
    // time.
    let vis = VisibilityStrategy::new(cube)
        .run(Policy::Synchronous)
        .expect("visibility completes");
    assert!(vis.is_complete());
    println!(
        "CLEAN WITH VISIBILITY     : {:>3} agents, {:>5} moves, time {}",
        vis.metrics.team_size,
        vis.metrics.total_moves(),
        vis.metrics.ideal_time.unwrap()
    );

    // Strategy 3: the cloning variant — a single seed agent, n − 1 moves.
    let cloning = CloningStrategy::new(cube)
        .run(Policy::Fifo)
        .expect("cloning completes");
    assert!(cloning.is_complete());
    println!(
        "Cloning variant           : {:>3} agents, {:>5} moves (n - 1 = {})",
        cloning.metrics.team_size,
        cloning.metrics.total_moves(),
        cube.node_count() - 1
    );

    // Every run was audited: no recontamination, the decontaminated region
    // stayed connected, and the worst-case evader was captured.
    for (name, outcome) in [
        ("clean", &clean),
        ("visibility", &vis),
        ("cloning", &cloning),
    ] {
        let capture = outcome.verdict.capture.expect("intruder tracked");
        println!("{name:>11}: intruder {capture:?}");
        assert!(capture.is_captured());
    }
}
