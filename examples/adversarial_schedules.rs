//! Asynchrony stress: the same strategies under every scheduling adversary,
//! including real OS threads.
//!
//! The paper's model lets every action take "a finite but otherwise
//! unpredictable amount of time"; correctness must therefore survive any
//! schedule. This example runs the visibility strategy and the cloning
//! variant under FIFO/LIFO/round-robin/random adversaries on the
//! discrete-event engine, then once more on the multi-threaded executor
//! where the OS scheduler is the adversary — and checks that every run is
//! monotone, contiguous, complete, and move-for-move identical in its
//! totals.
//!
//! ```sh
//! cargo run --release --example adversarial_schedules
//! ```

use hypersweep::core::visibility::VisibilityAgent;
use hypersweep::prelude::*;
use hypersweep::sim::threaded::{run_threaded, ThreadedConfig};
use hypersweep::sim::Role;

fn main() {
    let d = 7;
    let cube = Hypercube::new(d);
    let strategy = VisibilityStrategy::new(cube);
    let expected_moves = strategy.fast(false).metrics.total_moves();
    println!(
        "H_{d}: visibility strategy, {} agents, expecting exactly {} moves under EVERY schedule",
        strategy.team_size(),
        expected_moves
    );

    // 1. Discrete-event adversaries.
    for policy in Policy::adversaries(8) {
        let outcome = strategy.run(policy).expect("completes");
        assert!(outcome.is_complete(), "{policy:?} broke the search");
        assert_eq!(outcome.metrics.total_moves(), expected_moves);
        println!(
            "  DES {:<12} OK — intruder {:?}",
            policy.name(),
            outcome.verdict.capture.unwrap()
        );
    }

    // 2. Real threads: one per agent, parking_lot whiteboards, the OS as
    //    the adversary. Repeat a few times — each run is a different
    //    interleaving.
    for round in 0..3 {
        let programs: Vec<(VisibilityAgent, Role)> = (0..strategy.team_size())
            .map(|_| (VisibilityAgent, Role::Worker))
            .collect();
        let report = run_threaded(
            cube,
            programs,
            ThreadedConfig {
                visibility: true,
                ..ThreadedConfig::default()
            },
        )
        .expect("threaded run completes");
        let verdict = verify_trace(
            &cube,
            Node::ROOT,
            &report.events,
            MonitorConfig::with_intruder(Node(cube.node_count() as u32 - 1)),
        );
        assert!(
            verdict.is_complete(),
            "threads broke the search: {:?}",
            verdict.violations
        );
        assert_eq!(report.metrics.total_moves(), expected_moves);
        println!(
            "  threads run #{round}     OK — {} agents on {} OS threads, {} moves",
            report.metrics.team_size,
            report.metrics.team_size,
            report.metrics.total_moves()
        );
    }

    // 3. The cloning variant under a depth-first (LIFO) adversary — the
    //    nastiest case for a strategy that builds its own team online.
    let cloning = CloningStrategy::new(cube);
    let outcome = cloning.run(Policy::Lifo).expect("completes");
    assert!(outcome.is_complete());
    println!(
        "  cloning under LIFO OK — {} clones made, {} moves (n-1 = {})",
        outcome.metrics.team_size - 1,
        outcome.metrics.total_moves(),
        cube.node_count() - 1
    );
    println!("\nall schedules produced correct, identical-cost searches");
}
