//! The paper's motivating scenario (§1.1): a virus moves arbitrarily fast
//! through a hypercube interconnect; a team of software agents deployed
//! from one host must corner it without ever reopening cleaned territory.
//!
//! This example drives the monitors directly so the virus's flight is
//! visible: we replay Algorithm CLEAN's trace event by event against a
//! greedy evader and print where it runs.
//!
//! ```sh
//! cargo run --example virus_containment
//! ```

use hypersweep::prelude::*;

fn main() {
    let d = 5;
    let cube = Hypercube::new(d);
    println!(
        "network: H_{d} — {} hosts, {} links; homebase 00000; virus starts at 11111",
        cube.node_count(),
        cube.edge_count()
    );

    // Generate CLEAN's full trace.
    let strategy = CleanStrategy::new(cube);
    let (metrics, events) = strategy.synthesize(true);
    let events = events.expect("trace recorded");
    println!(
        "team: {} agents (1 synchronizer + {} workers)\n",
        metrics.team_size,
        metrics.team_size - 1
    );

    // Replay through a monitor with a greedy evader and narrate its moves.
    let far = Node(cube.node_count() as u32 - 1);
    let mut monitor = Monitor::new(&cube, Node::ROOT, MonitorConfig::with_intruder(far));
    let mut last_pos = far;
    let mut hops = 0u32;
    for event in &events {
        monitor.observe(event);
        let status = monitor.intruder().expect("tracked").status();
        match status {
            CaptureStatus::Free(pos) if pos != last_pos => {
                hops += 1;
                let contaminated = monitor.field().contaminated_count();
                println!(
                    "virus flees {} -> {}   ({} hosts still contaminated)",
                    last_pos.bitstring(d),
                    pos.bitstring(d),
                    contaminated
                );
                last_pos = pos;
            }
            CaptureStatus::Captured { node, at_event } => {
                println!(
                    "\nvirus CAPTURED at {} after event {} ({} evasive hops)",
                    node.bitstring(d),
                    at_event,
                    hops
                );
                break;
            }
            _ => {}
        }
    }
    let verdict = monitor.verdict();
    assert!(
        verdict.is_complete(),
        "violations: {:?}",
        verdict.violations
    );
    println!(
        "audit: monotone={} contiguous={} all_clean={} ({} events)",
        verdict.monotone, verdict.contiguous, verdict.all_clean, verdict.events
    );

    // For scale: how the team would grow with the fabric.
    println!("\nteam sizes for larger fabrics (Algorithm CLEAN vs n/2 visibility):");
    for d in [6u32, 8, 10, 12, 14] {
        let clean = hypersweep::topology::combinatorics::clean_team_size(d);
        let vis = hypersweep::topology::combinatorics::visibility_agents(d);
        println!(
            "  H_{d:<2} ({:>6} hosts): CLEAN {:>6} agents | visibility {:>6} agents",
            1u64 << d,
            clean,
            vis
        );
    }
}
