//! The generic bottleneck-greedy planner on assorted topologies — and what
//! it says about the paper's open optimality question.
//!
//! ```sh
//! cargo run --release --example generic_planner
//! ```

use hypersweep::baselines::{boundary_optimum, greedy_plan, isoperimetric_team_lower_bound};
use hypersweep::prelude::*;
use hypersweep::topology::graph::{CubeConnectedCycles, DeBruijn, Ring, Torus};
use hypersweep::topology::{combinatorics as comb, Topology};

fn audit_and_report<T: Topology + ?Sized>(name: &str, topo: &T, home: Node) {
    let plan = greedy_plan(topo, home);
    let far = Node(topo.node_count() as u32 - 1);
    let cfg = if far == home {
        MonitorConfig::default()
    } else {
        MonitorConfig::with_intruder(far)
    };
    let verdict = verify_trace(topo, home, &plan.events, cfg);
    assert!(verdict.is_complete(), "{name}: {:?}", verdict.violations);
    println!(
        "{name:<22} n={:>5}  team={:>4}  peak boundary={:>4}  moves={:>6}  [audited OK]",
        topo.node_count(),
        plan.team,
        plan.peak_boundary,
        plan.moves
    );
}

fn main() {
    println!("generic contiguous search on classic interconnection networks:\n");
    audit_and_report("ring(64)", &Ring::new(64), Node(0));
    audit_and_report("torus(8x8)", &Torus::new(8, 8), Node(0));
    audit_and_report("de Bruijn DB(2,8)", &DeBruijn::new(8), Node(0));
    audit_and_report("CCC(5)", &CubeConnectedCycles::new(5), Node(0));
    for d in [6u32, 8] {
        audit_and_report(&format!("hypercube H_{d}"), &Hypercube::new(d), Node::ROOT);
    }

    println!("\nthe open problem (paper §5): how tight is Algorithm CLEAN's team?");
    println!(
        "{:>3} {:>14} {:>12} {:>12} {:>12}",
        "d", "isoperim. LB", "greedy (UB)", "CLEAN", "exact opt"
    );
    for d in 2..=10u32 {
        let lb = isoperimetric_team_lower_bound(d);
        let greedy = greedy_plan(&Hypercube::new(d), Node::ROOT).team;
        let clean = comb::clean_team_size(d);
        let exact = if d <= 4 {
            boundary_optimum(&Hypercube::new(d), Node::ROOT)
                .peak_boundary
                .to_string()
        } else {
            "-".into()
        };
        println!("{d:>3} {lb:>14} {greedy:>12} {clean:>12} {exact:>12}");
    }
    println!(
        "\ntakeaway: generic greed beats CLEAN for d = 5..7 (so CLEAN is not optimal there),\n\
         CLEAN wins from d = 8 on; both sides are Θ(n/√log n) — the paper's stated O(n/log n)\n\
         is below what any strategy can achieve."
    );
}
