//! A tour of the structures behind the strategies: the broadcast tree
//! (heap queue) of the hypercube and its msb classes — the paper's
//! Figures 1 and 3, printed live.
//!
//! ```sh
//! cargo run --example broadcast_tree_tour
//! ```

use hypersweep::prelude::*;
use hypersweep::topology::{combinatorics, render, HeapQueue};

fn main() {
    let cube = Hypercube::new(4);
    let tree = BroadcastTree::new(cube);

    // Figure 1: the tree itself.
    println!("{}", render::render_broadcast_tree(cube));

    // Definition 1: the same structure built recursively, and checked.
    let hq = HeapQueue::build(4);
    assert!(hq.matches_broadcast_subtree(&tree, Node::ROOT));
    println!(
        "heap queue T(4): {} nodes, height {} — isomorphic to the broadcast tree ✓\n",
        hq.size(),
        hq.height()
    );

    // Property 1's census (the table under Figure 1).
    println!("{}", render::render_type_census(cube));

    // Figure 3: the msb classes.
    println!("{}", render::render_msb_classes(cube));

    // The quantities the proofs lean on, from the closed forms:
    let d = 4;
    println!("closed forms for H_{d}:");
    println!(
        "  leaves per level l (Property 2): {:?}",
        (0..=d)
            .map(|l| combinatorics::leaves_at_level(d, l))
            .collect::<Vec<_>>()
    );
    println!(
        "  Lemma 3 extras per phase l:      {:?}",
        (1..d)
            .map(|l| combinatorics::lemma3_extra_agents(d, l))
            .collect::<Vec<_>>()
    );
    println!(
        "  Lemma 4 team for CLEAN:          {}",
        combinatorics::clean_team_size(d)
    );
    println!(
        "  visibility team (Theorem 5):     {}",
        combinatorics::visibility_agents(d)
    );

    // And the navigation trick from Theorem 3's proof: consecutive
    // level-l nodes are connected below their level via the meet.
    let level = cube.level_nodes(2);
    println!("\nsynchronizer navigation within level 2 (via-meet paths):");
    for pair in level.windows(2) {
        let path = cube.via_meet_path(pair[0], pair[1]);
        let labels: Vec<String> = std::iter::once(pair[0])
            .chain(path.iter().copied())
            .map(|n| n.bitstring(4))
            .collect();
        println!("  {}", labels.join(" -> "));
    }
}
