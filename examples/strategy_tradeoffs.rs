//! The agents / moves / time trade-off across all strategies and baselines
//! (the comparison §1.3 motivates), as a sweep over hypercube dimensions.
//!
//! ```sh
//! cargo run --release --example strategy_tradeoffs
//! ```

use hypersweep::baselines::{FloodStrategy, FrontierStrategy};
use hypersweep::prelude::*;

fn main() {
    println!(
        "{:>3} {:>8} | {:>24} | {:>28} | {:>16}",
        "d", "n", "agents (clean/vis/front)", "moves (clean/vis/clone/front)", "time (vis, clean~)"
    );
    println!("{}", "-".repeat(92));
    for d in 4..=14u32 {
        let cube = Hypercube::new(d);
        let clean = CleanStrategy::new(cube).fast(false).metrics;
        let vis = VisibilityStrategy::new(cube).fast(false).metrics;
        let cloning = CloningStrategy::new(cube).fast(false).metrics;
        let frontier = FrontierStrategy::new(cube).outcome(false).metrics;
        println!(
            "{:>3} {:>8} | {:>7}/{:>7}/{:>8} | {:>8}/{:>7}/{:>6}/{:>8} | {:>4} / ~{:>9}",
            d,
            cube.node_count(),
            clean.team_size,
            vis.team_size,
            frontier.team_size,
            clean.total_moves(),
            vis.total_moves(),
            cloning.total_moves(),
            frontier.total_moves(),
            vis.ideal_time.unwrap(),
            clean.coordinator_moves, // Theorem 4: time ≈ the synchronizer's walk
        );
    }

    println!("\nwho wins what:");
    println!("  fewest agents : Algorithm CLEAN  (≈ n/sqrt(log n), Lemma 4 exactly)");
    println!("  fewest moves  : cloning variant  (n − 1, one crossing per tree edge)");
    println!("  fastest       : visibility/cloning (log n waves) — CLEAN is Θ(n log n) sequential");
    println!("  most agents   : flood baseline   (n, a permanent guard everywhere)");

    // One audited run each at d = 8 to show none of this trades away
    // correctness.
    let cube = Hypercube::new(8);
    for (name, outcome) in [
        ("clean", CleanStrategy::new(cube).run(Policy::Random(42))),
        (
            "visibility",
            VisibilityStrategy::new(cube).run(Policy::Random(42)),
        ),
        (
            "cloning",
            CloningStrategy::new(cube).run(Policy::Random(42)),
        ),
        ("flood", FloodStrategy::new(cube).run(Policy::Random(42))),
    ] {
        let outcome = outcome.expect("strategy completes");
        assert!(outcome.is_complete(), "{name} failed audit");
        println!(
            "audited {name:>10} on H_8 under a random adversary: OK ({} moves)",
            outcome.metrics.total_moves()
        );
    }
}
