//! Scenario campaigns: the checker's sliced, pooled schedule
//! exploration applied to scenario workloads, with `scenario.*`
//! telemetry and a render table for the CLI.

use std::time::{Duration, Instant};

use hypersweep_analysis::{execute_schedule_stream, Table};
use hypersweep_check::{Adversary, ViolationReport};
use hypersweep_telemetry::MetricsRegistry;
use hypersweep_topology::Topology;

use crate::dynamic::run_dynamic;
use crate::sweep::{run_static, ScheduleStats};
use crate::{GridStrategy, ScenarioId};

/// Schedules per streamed slice; small enough to load-balance, large
/// enough to amortise per-claim overhead. Merging keeps the
/// lowest-schedule counterexample, so results are identical under any
/// `--jobs`.
const SLICE: u64 = 32;

/// What to explore.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioCampaign {
    /// Which scenario (must not be [`ScenarioId::Hypercube`] — the
    /// classic campaign driver owns that).
    pub scenario: ScenarioId,
    /// Strategy under test.
    pub strategy: GridStrategy,
    /// Grid side length (the instance is `side x side`).
    pub side: u32,
    /// Instance generator.
    pub instance: hypersweep_topology::GridInstance,
    /// Schedules to explore.
    pub schedules: u64,
    /// Base seed; schedule `i` uses the checker's `for_schedule(seed, i)`.
    pub seed: u64,
    /// Per-schedule decision-step budget; 0 picks a generous default.
    pub max_steps: u64,
}

impl ScenarioCampaign {
    /// The effective per-schedule step budget.
    pub fn effective_max_steps(&self, nodes: u64) -> u64 {
        if self.max_steps > 0 {
            self.max_steps
        } else {
            1_000 * nodes + 10_000
        }
    }
}

/// The first failing schedule, with enough context to re-run it.
#[derive(Clone, Debug)]
pub struct ScenarioCounterexample {
    /// Failing schedule index.
    pub schedule: u64,
    /// Adversary family that produced it.
    pub adversary: String,
    /// The oracle's report.
    pub violation: ViolationReport,
    /// The decision trace up to the violation.
    pub decisions: Vec<u32>,
}

/// Aggregated campaign result.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario label.
    pub scenario: String,
    /// Strategy label.
    pub strategy: String,
    /// Instance label.
    pub instance: String,
    /// Grid side.
    pub side: u32,
    /// Live nodes in the instance.
    pub nodes: u64,
    /// Schedules explored (short of the request only on failure).
    pub schedules_run: u64,
    /// Total decision steps.
    pub steps: u64,
    /// Total events through the oracle.
    pub events: u64,
    /// Total edge traversals.
    pub moves: u64,
    /// Smallest team any schedule needed.
    pub team_min: u64,
    /// Largest team any schedule needed.
    pub team_max: u64,
    /// Total rounds (dynamic; == schedules for static).
    pub rounds: u64,
    /// Accepted topology mutations (dynamic).
    pub mutations: u64,
    /// Rejected mutation proposals (dynamic).
    pub rejected: u64,
    /// Violations found (0 or 1 — exploration stops at the first).
    pub violations: u64,
    /// The lowest-schedule counterexample, if any.
    pub counterexample: Option<ScenarioCounterexample>,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl ScenarioOutcome {
    /// Schedules per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.schedules_run as f64 / secs
        } else {
            0.0
        }
    }
}

struct SliceOutcome {
    schedules_run: u64,
    steps: u64,
    events: u64,
    moves: u64,
    team_min: u64,
    team_max: u64,
    rounds: u64,
    mutations: u64,
    rejected: u64,
    first: Option<(u64, ScheduleStats)>,
}

fn run_one(campaign: &ScenarioCampaign, schedule: u64, max_steps: u64) -> ScheduleStats {
    match campaign.scenario {
        ScenarioId::Grid => {
            let grid = campaign.instance.build(campaign.side);
            let mut adversary = Adversary::for_schedule(campaign.seed, schedule);
            run_static(
                &grid,
                grid.homebase(),
                campaign.strategy == GridStrategy::LeakyGuard,
                &mut adversary,
                max_steps,
            )
        }
        ScenarioId::Dynamic => run_dynamic(
            campaign.side,
            campaign.instance,
            campaign.seed,
            schedule,
            max_steps,
        ),
        ScenarioId::Hypercube => unreachable!("hypercube campaigns use the classic driver"),
    }
}

/// Explore `campaign.schedules` adversarial schedules across `jobs`
/// workers. Schedules stream through fixed-width slices claimed from a
/// shared counter — nothing is materialized up front, so a 100k-schedule
/// campaign enqueues zero heap-allocated jobs. Deterministic for a given
/// campaign under any worker count: per-worker tallies are merged and the
/// lowest failing schedule wins (quiet campaigns are explored
/// exhaustively, so their aggregate counts are jobs-invariant too).
pub fn run_scenario_campaign(
    campaign: &ScenarioCampaign,
    jobs: usize,
    registry: &MetricsRegistry,
) -> ScenarioOutcome {
    let start = Instant::now();
    let nodes = campaign.instance.build(campaign.side).node_count() as u64;
    let max_steps = campaign.effective_max_steps(nodes);

    let schedules_ctr = registry.counter("scenario.schedules");
    let steps_ctr = registry.counter("scenario.steps");
    let events_ctr = registry.counter("scenario.events");
    let violations_ctr = registry.counter("scenario.violations");
    let mutations_ctr = registry.counter("scenario.dynamic.mutations");
    let rejected_ctr = registry.counter("scenario.dynamic.rejected");
    let schedule_us = registry.histogram("scenario.schedule_us");

    let tallies = execute_schedule_stream(
        campaign.schedules,
        SLICE,
        jobs.max(1),
        registry,
        "scenario",
        |_worker| SliceOutcome {
            schedules_run: 0,
            steps: 0,
            events: 0,
            moves: 0,
            team_min: u64::MAX,
            team_max: 0,
            rounds: 0,
            mutations: 0,
            rejected: 0,
            first: None,
        },
        |out, schedule| {
            let t0 = Instant::now();
            let stats = run_one(campaign, schedule, max_steps);
            schedule_us.record(t0.elapsed().as_micros() as u64);
            out.schedules_run += 1;
            out.steps += stats.steps;
            out.events += stats.events;
            out.moves += stats.moves;
            out.team_min = out.team_min.min(stats.team);
            out.team_max = out.team_max.max(stats.team);
            out.rounds += stats.rounds;
            out.mutations += stats.mutations;
            out.rejected += stats.rejected;
            schedules_ctr.add(1);
            steps_ctr.add(stats.steps);
            events_ctr.add(stats.events);
            mutations_ctr.add(stats.mutations);
            rejected_ctr.add(stats.rejected);
            if stats.violation.is_some() {
                violations_ctr.add(1);
                let better = out.first.as_ref().is_none_or(|(s, _)| schedule < *s);
                if better {
                    out.first = Some((schedule, stats));
                }
                true
            } else {
                false
            }
        },
    );

    let mut outcome = ScenarioOutcome {
        scenario: campaign.scenario.label().to_string(),
        strategy: campaign.strategy.name().to_string(),
        instance: campaign.instance.label(),
        side: campaign.side,
        nodes,
        schedules_run: 0,
        steps: 0,
        events: 0,
        moves: 0,
        team_min: u64::MAX,
        team_max: 0,
        rounds: 0,
        mutations: 0,
        rejected: 0,
        violations: 0,
        counterexample: None,
        elapsed: Duration::ZERO,
    };
    let mut winner: Option<(u64, ScheduleStats)> = None;
    for slice in tallies {
        outcome.schedules_run += slice.schedules_run;
        outcome.steps += slice.steps;
        outcome.events += slice.events;
        outcome.moves += slice.moves;
        outcome.team_min = outcome.team_min.min(slice.team_min);
        outcome.team_max = outcome.team_max.max(slice.team_max);
        outcome.rounds += slice.rounds;
        outcome.mutations += slice.mutations;
        outcome.rejected += slice.rejected;
        if let Some((schedule, stats)) = slice.first {
            let better = winner.as_ref().is_none_or(|(s, _)| schedule < *s);
            if better {
                winner = Some((schedule, stats));
            }
        }
    }
    if outcome.team_min == u64::MAX {
        outcome.team_min = 0;
    }
    if let Some((schedule, stats)) = winner {
        outcome.violations = 1;
        let adversary = Adversary::for_schedule(campaign.seed, schedule)
            .kind()
            .name()
            .to_string();
        outcome.counterexample = Some(ScenarioCounterexample {
            schedule,
            adversary,
            violation: stats.violation.expect("winner carries a violation"),
            decisions: stats.decisions,
        });
    }
    outcome.elapsed = start.elapsed();
    registry
        .histogram("span.scenario.campaign_us")
        .record(outcome.elapsed.as_micros() as u64);
    outcome
}

/// Render campaign outcomes as the CLI's standard table.
pub fn scenario_table(outcomes: &[ScenarioOutcome]) -> Table {
    let mut table = Table::new(
        "scenario campaigns",
        &[
            "scenario",
            "strategy",
            "instance",
            "side",
            "nodes",
            "schedules",
            "steps",
            "moves",
            "team",
            "churn",
            "sched/s",
            "verdict",
        ],
    );
    for o in outcomes {
        let team = if o.team_min == o.team_max {
            o.team_min.to_string()
        } else {
            format!("{}-{}", o.team_min, o.team_max)
        };
        let churn = if o.mutations + o.rejected > 0 {
            format!("{}/{}", o.mutations, o.mutations + o.rejected)
        } else {
            "-".to_string()
        };
        let verdict = match &o.counterexample {
            None => "ok".to_string(),
            Some(c) => format!(
                "FAIL @ schedule {} [{}] ({})",
                c.schedule, c.adversary, c.violation
            ),
        };
        table.push_row(vec![
            o.scenario.clone(),
            o.strategy.clone(),
            o.instance.clone(),
            o.side.to_string(),
            o.nodes.to_string(),
            o.schedules_run.to_string(),
            o.steps.to_string(),
            o.moves.to_string(),
            team,
            churn,
            format!("{:.0}", o.throughput()),
            verdict,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_topology::GridInstance;

    fn grid_campaign(strategy: GridStrategy, schedules: u64) -> ScenarioCampaign {
        ScenarioCampaign {
            scenario: ScenarioId::Grid,
            strategy,
            side: 6,
            instance: GridInstance::Holes(42),
            schedules,
            seed: 0,
            max_steps: 0,
        }
    }

    #[test]
    fn grid_campaign_is_quiet_and_jobs_invariant() {
        let campaign = grid_campaign(GridStrategy::Sweep, 96);
        let serial = run_scenario_campaign(&campaign, 1, &MetricsRegistry::disabled());
        let pooled = run_scenario_campaign(&campaign, 4, &MetricsRegistry::disabled());
        assert_eq!(serial.violations, 0, "{:?}", serial.counterexample);
        assert_eq!(serial.schedules_run, 96);
        assert_eq!(serial.steps, pooled.steps);
        assert_eq!(serial.moves, pooled.moves);
        assert_eq!(serial.team_min, pooled.team_min);
        assert_eq!(serial.team_max, pooled.team_max);
    }

    #[test]
    fn leaky_guard_mutant_fails_at_schedule_zero() {
        let campaign = grid_campaign(GridStrategy::LeakyGuard, 64);
        let outcome = run_scenario_campaign(&campaign, 3, &MetricsRegistry::disabled());
        assert_eq!(outcome.violations, 1);
        let c = outcome.counterexample.expect("mutant must be caught");
        assert_eq!(c.schedule, 0, "mutant must die on the very first schedule");
    }

    #[test]
    fn dynamic_campaign_is_quiet_and_jobs_invariant() {
        let campaign = ScenarioCampaign {
            scenario: ScenarioId::Dynamic,
            strategy: GridStrategy::Sweep,
            side: 5,
            instance: GridInstance::Full,
            schedules: 64,
            seed: 0,
            max_steps: 0,
        };
        let serial = run_scenario_campaign(&campaign, 1, &MetricsRegistry::disabled());
        let pooled = run_scenario_campaign(&campaign, 5, &MetricsRegistry::disabled());
        assert_eq!(serial.violations, 0, "{:?}", serial.counterexample);
        assert!(serial.mutations > 0, "churn never landed");
        assert_eq!(serial.steps, pooled.steps);
        assert_eq!(serial.mutations, pooled.mutations);
        assert_eq!(serial.rejected, pooled.rejected);
    }

    #[test]
    fn telemetry_series_are_recorded() {
        let registry = MetricsRegistry::new();
        let campaign = grid_campaign(GridStrategy::Sweep, 8);
        run_scenario_campaign(&campaign, 2, &registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("scenario.schedules"), Some(8));
        assert!(snap.counter("scenario.steps").unwrap_or(0) > 0);
        assert_eq!(snap.counter("scenario.violations"), Some(0));
    }
}
