//! The connected frontier-sweep strategy, generic over the topology.
//!
//! The strategy maintains one invariant at every instant: **every clean
//! node bordering contamination holds a dedicated guard**. Clean
//! interior nodes (all neighbours safe) need no guard — monotone
//! cleaning can only grow the interior, so an interior node stays
//! interior and vacating it is always safe. Movers therefore walk
//! freely through the clean region: any safe node they vacate is either
//! interior or still occupied by its dedicated guard (a Move occupies
//! the destination before vacating the source).
//!
//! Work is organised as *cleaning tasks*: pick a contaminated node
//! adjacent to the clean region, walk a free agent through the clean
//! region to a safe neighbour, then slide across the final edge — the
//! arrival decontaminates the target, and the arriving mover pins there
//! as its guard if the target still borders contamination. Guards whose
//! nodes turn interior are released in place (no move) and reused as
//! movers. Agents are spawned at the homebase only when no task is in
//! flight and no free agent exists, so the team size tracks the peak
//! boundary plus the movers — the scenario's searcher-count accountant.
//!
//! Up to [`MAX_MOVERS`] tasks run concurrently with disjoint targets,
//! and the checker's adversary picks which mover steps next — the
//! strategy must be correct under every interleaving, which is exactly
//! what the campaign explores.

use std::collections::VecDeque;

use hypersweep_check::{Adversary, StepOracle, ViolationKind, ViolationReport};
use hypersweep_intruder::ContaminationField;
use hypersweep_sim::{AgentId, Event, EventKind, Role};
use hypersweep_topology::{Node, Topology};

/// Concurrent cleaning tasks. More than one so the adversary's
/// interleaving choice is meaningful.
pub(crate) const MAX_MOVERS: usize = 2;

/// Everything one explored schedule produced, shared by the grid and
/// dynamic scenarios (the dynamic extras stay zero on static runs).
#[derive(Clone, Debug, Default)]
pub struct ScheduleStats {
    /// Adversary decision steps taken.
    pub steps: u64,
    /// Events fed through the oracle.
    pub events: u64,
    /// Edge traversals.
    pub moves: u64,
    /// Agents spawned (== final team size).
    pub team: u64,
    /// Terminate events at capture.
    pub terminates: u64,
    /// Largest event timestamp.
    pub max_time: u64,
    /// `cleaned_by_team[k]` = nodes cleaned while the team had `k + 1`
    /// agents; the serving plan's phases derive from this.
    pub cleaned_by_team: Vec<u64>,
    /// Rounds driven (dynamic mode; 1 for static runs).
    pub rounds: u64,
    /// Accepted topology mutations (dynamic mode).
    pub mutations: u64,
    /// Rejected mutation proposals (dynamic mode).
    pub rejected: u64,
    /// The adversary decision trace (for reporting a counterexample).
    pub decisions: Vec<u32>,
    /// The first invariant violation, if any.
    pub violation: Option<ViolationReport>,
}

/// One in-flight cleaning task: `agent` walks `path` (through the clean
/// region, final hop onto the contaminated `target`).
struct Task {
    agent: AgentId,
    path: VecDeque<Node>,
    target: Node,
}

/// Whether the driver made progress or ran to completion.
pub(crate) enum Progress {
    /// One decision step executed.
    Advanced,
    /// Capture reached; terminates emitted, oracle finished.
    Done,
}

/// The sweep's mutable agent book-keeping. Holds no topology reference,
/// so the dynamic scenario can re-plan it against a mutated graph
/// between rounds.
pub(crate) struct Sweep {
    homebase: Node,
    /// Agent -> current node.
    positions: Vec<Node>,
    /// Dedicated boundary guards as `(node, agent)`.
    pinned: Vec<(Node, AgentId)>,
    /// Agent -> currently pinned as a guard.
    is_pinned: Vec<bool>,
    /// Unassigned agents, kept sorted ascending.
    free: Vec<AgentId>,
    tasks: Vec<Task>,
    /// Node -> currently targeted by a task.
    targeted: Vec<bool>,
    /// The negative-control mutant: frees a boundary guard while its
    /// node still borders contamination.
    leaky: bool,
    leaked: bool,
    time: u64,
    pub(crate) stats: ScheduleStats,
    nbrs: Vec<Node>,
}

impl Sweep {
    pub(crate) fn new(node_count: usize, homebase: Node, leaky: bool) -> Self {
        Sweep {
            homebase,
            positions: Vec::new(),
            pinned: Vec::new(),
            is_pinned: Vec::new(),
            free: Vec::new(),
            tasks: Vec::new(),
            targeted: vec![false; node_count],
            leaky,
            leaked: false,
            time: 0,
            stats: ScheduleStats::default(),
            nbrs: Vec::new(),
        }
    }

    fn emit<T: Topology + ?Sized>(
        &mut self,
        oracle: &mut StepOracle<'_, T>,
        kind: EventKind,
        step: u64,
    ) -> Result<(), ViolationReport> {
        let event = Event {
            time: self.time,
            kind,
        };
        self.stats.max_time = self.time;
        self.time += 1;
        self.stats.events += 1;
        self.stats.moves += kind.move_cost();
        if matches!(kind, EventKind::Terminate { .. }) {
            self.stats.terminates += 1;
        }
        oracle.observe(&event, step)
    }

    /// Does `x` border contamination?
    fn is_boundary<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        field: &ContaminationField<'_, T>,
        x: Node,
    ) -> bool {
        topo.neighbors_into(x, &mut self.nbrs);
        self.nbrs.iter().any(|&y| field.is_contaminated(y))
    }

    /// Spawn a new agent at the homebase (event emitted by the caller).
    fn new_agent(&mut self) -> AgentId {
        let agent = self.positions.len() as AgentId;
        self.positions.push(self.homebase);
        self.is_pinned.push(false);
        self.stats.team += 1;
        agent
    }

    /// Credit one cleaned node to the current team size.
    fn credit_clean(&mut self) {
        let team = self.positions.len();
        if self.stats.cleaned_by_team.len() < team {
            self.stats.cleaned_by_team.resize(team, 0);
        }
        self.stats.cleaned_by_team[team - 1] += 1;
    }

    /// After `agent` arrives on a freshly-safe node (spawn or task
    /// completion): pin it as the node's guard if the node borders
    /// contamination and has no guard yet, otherwise free it.
    fn assign_duty<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        oracle: &StepOracle<'_, T>,
        agent: AgentId,
    ) {
        let node = self.positions[agent as usize];
        let boundary = self.is_boundary(topo, oracle.field(), node);
        let guarded = self.pinned.iter().any(|&(n, _)| n == node);
        if boundary && !guarded {
            self.pinned.push((node, agent));
            self.is_pinned[agent as usize] = true;
        } else {
            self.free.push(agent);
            self.free.sort_unstable();
        }
    }

    /// Release every guard whose node turned interior. No event: the
    /// freed agent stays put and its next task path starts there.
    fn release_guards<T: Topology + ?Sized>(&mut self, topo: &T, oracle: &StepOracle<'_, T>) {
        let mut i = 0;
        while i < self.pinned.len() {
            let (node, agent) = self.pinned[i];
            if self.is_boundary(topo, oracle.field(), node) {
                i += 1;
            } else {
                self.pinned.remove(i);
                self.is_pinned[agent as usize] = false;
                self.free.push(agent);
            }
        }
        self.free.sort_unstable();
    }

    /// The mutant's leak: the lowest-node boundary guard standing alone
    /// on its node, moved onto a safe neighbour — vacating a boundary
    /// node, which the oracle catches as an instant recontamination.
    fn find_leak<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        oracle: &StepOracle<'_, T>,
    ) -> Option<(AgentId, Node, Node)> {
        let field = oracle.field();
        let mut best: Option<(AgentId, Node, Node)> = None;
        for i in 0..self.pinned.len() {
            let (node, agent) = self.pinned[i];
            if field.occupancy()[node.index()] != 1 {
                continue;
            }
            topo.neighbors_into(node, &mut self.nbrs);
            let safe_nbr = self
                .nbrs
                .iter()
                .copied()
                .find(|&y| !field.is_contaminated(y));
            if let Some(to) = safe_nbr {
                if best.is_none_or(|(_, n, _)| node < n) {
                    best = Some((agent, node, to));
                }
            }
        }
        best
    }

    /// Smallest untargeted contaminated node adjacent to the clean
    /// region, with its smallest safe neighbour as the approach parent.
    fn pick_target<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        field: &ContaminationField<'_, T>,
    ) -> Option<(Node, Node)> {
        for x in 0..topo.node_count() as u32 {
            let x = Node(x);
            if !field.is_contaminated(x) || self.targeted[x.index()] {
                continue;
            }
            topo.neighbors_into(x, &mut self.nbrs);
            if let Some(&parent) = self.nbrs.iter().find(|&&y| !field.is_contaminated(y)) {
                return Some((x, parent));
            }
        }
        None
    }

    /// Shortest path from `start` to `parent` through safe nodes, then
    /// the final hop onto `target`. The clean region is connected
    /// (contiguity invariant), so this only fails on corrupted state.
    fn plan_path<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        field: &ContaminationField<'_, T>,
        start: Node,
        parent: Node,
        target: Node,
    ) -> Option<VecDeque<Node>> {
        let mut path = VecDeque::new();
        if start != parent {
            let n = topo.node_count();
            let mut prev: Vec<Option<Node>> = vec![None; n];
            let mut queue = VecDeque::new();
            let mut nbrs = Vec::new();
            prev[start.index()] = Some(start);
            queue.push_back(start);
            'bfs: while let Some(x) = queue.pop_front() {
                topo.neighbors_into(x, &mut nbrs);
                for &y in &nbrs {
                    if field.is_contaminated(y) || prev[y.index()].is_some() {
                        continue;
                    }
                    prev[y.index()] = Some(x);
                    if y == parent {
                        break 'bfs;
                    }
                    queue.push_back(y);
                }
            }
            prev[parent.index()]?;
            let mut cur = parent;
            while cur != start {
                path.push_front(cur);
                cur = prev[cur.index()].expect("bfs predecessor chain");
            }
        }
        path.push_back(target);
        Some(path)
    }

    /// Keep up to [`MAX_MOVERS`] tasks in flight. Spawns (at most one
    /// per call) only when nothing is in flight and nobody is free.
    fn refill<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        oracle: &mut StepOracle<'_, T>,
        step: u64,
    ) -> Result<(), ViolationReport> {
        // First contact: nothing is safe yet, so the first spawn cleans
        // the homebase.
        if oracle.field().contaminated_count() == topo.node_count() {
            let agent = self.new_agent();
            self.emit(
                oracle,
                EventKind::Spawn {
                    agent,
                    node: self.homebase,
                    role: Role::Worker,
                },
                step,
            )?;
            self.credit_clean();
            self.assign_duty(topo, oracle, agent);
        }
        while self.tasks.len() < MAX_MOVERS {
            let Some((target, parent)) = self.pick_target(topo, oracle.field()) else {
                break;
            };
            let mover = if !self.free.is_empty() {
                self.free.remove(0)
            } else if self.tasks.is_empty() {
                let agent = self.new_agent();
                self.emit(
                    oracle,
                    EventKind::Spawn {
                        agent,
                        node: self.homebase,
                        role: Role::Worker,
                    },
                    step,
                )?;
                agent
            } else {
                break;
            };
            let start = self.positions[mover as usize];
            let Some(path) = self.plan_path(topo, oracle.field(), start, parent, target) else {
                return Err(ViolationReport {
                    step,
                    event: oracle.events_applied(),
                    kind: ViolationKind::EngineError {
                        message: format!("no safe path from {start:?} to {parent:?}"),
                    },
                });
            };
            self.targeted[target.index()] = true;
            self.tasks.push(Task {
                agent: mover,
                path,
                target,
            });
        }
        Ok(())
    }

    /// One decision step: release interior guards, (mutant) leak, check
    /// for capture, refill tasks, let the adversary pick a mover, and
    /// execute its next move under the oracle.
    pub(crate) fn step<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        oracle: &mut StepOracle<'_, T>,
        adversary: &mut Adversary,
        step: u64,
    ) -> Result<Progress, ViolationReport> {
        self.release_guards(topo, oracle);
        if self.leaky && !self.leaked {
            if let Some((agent, from, to)) = self.find_leak(topo, oracle) {
                self.leaked = true;
                self.pinned.retain(|&(_, a)| a != agent);
                self.is_pinned[agent as usize] = false;
                self.positions[agent as usize] = to;
                self.emit(
                    oracle,
                    EventKind::Move {
                        agent,
                        from,
                        to,
                        role: Role::Worker,
                    },
                    step,
                )?;
                self.free.push(agent);
                self.free.sort_unstable();
                return Ok(Progress::Advanced);
            }
        }
        self.refill(topo, oracle, step)?;
        if self.tasks.is_empty() {
            // No target left: either capture (terminate everyone and run
            // the final oracles) or a genuine deadlock.
            if oracle.field().all_clean() {
                for agent in 0..self.positions.len() as AgentId {
                    let node = self.positions[agent as usize];
                    self.emit(oracle, EventKind::Terminate { agent, node }, step)?;
                }
                oracle.finish(step)?;
                return Ok(Progress::Done);
            }
            return Err(ViolationReport {
                step,
                event: oracle.events_applied(),
                kind: ViolationKind::Deadlock {
                    waiting: self.positions.len() as u64,
                },
            });
        }
        let runnable: Vec<AgentId> = self.tasks.iter().map(|t| t.agent).collect();
        let raw = adversary.choose(&runnable, step);
        let idx = (raw as usize) % runnable.len();
        self.stats.decisions.push(idx as u32);
        let agent = self.tasks[idx].agent;
        let from = self.positions[agent as usize];
        let to = self.tasks[idx]
            .path
            .pop_front()
            .expect("task paths are non-empty");
        self.positions[agent as usize] = to;
        let completed = self.tasks[idx].path.is_empty();
        let target = self.tasks[idx].target;
        if completed {
            self.tasks.swap_remove(idx);
            self.targeted[target.index()] = false;
        }
        self.emit(
            oracle,
            EventKind::Move {
                agent,
                from,
                to,
                role: Role::Worker,
            },
            step,
        )?;
        if completed {
            self.credit_clean();
            self.assign_duty(topo, oracle, agent);
        }
        Ok(Progress::Advanced)
    }

    /// Rebuild all duties from the field's state after a topology
    /// mutation: abort in-flight tasks, pin one agent on every boundary
    /// node (the mutation validator guarantees one is standing there),
    /// free the rest. The aborted movers' wasted walks are the measured
    /// cost of monotonicity under churn.
    pub(crate) fn replan<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        field: &ContaminationField<'_, T>,
    ) {
        self.tasks.clear();
        self.targeted.iter_mut().for_each(|t| *t = false);
        self.pinned.clear();
        self.is_pinned.iter_mut().for_each(|p| *p = false);
        self.free.clear();
        for x in 0..topo.node_count() as u32 {
            let node = Node(x);
            if field.is_contaminated(node) || !self.is_boundary(topo, field, node) {
                continue;
            }
            let guard = (0..self.positions.len())
                .find(|&a| self.positions[a] == node && !self.is_pinned[a]);
            // An unguarded boundary node would already be a violation;
            // leave that to the oracle rather than masking it here.
            if let Some(a) = guard {
                self.pinned.push((node, a as AgentId));
                self.is_pinned[a] = true;
            }
        }
        for a in 0..self.positions.len() {
            if !self.is_pinned[a] {
                self.free.push(a as AgentId);
            }
        }
    }
}

/// Drive one full static-topology schedule to capture (or violation).
pub(crate) fn run_static<T: Topology + ?Sized>(
    topo: &T,
    homebase: Node,
    leaky: bool,
    adversary: &mut Adversary,
    max_steps: u64,
) -> ScheduleStats {
    let mut oracle = StepOracle::new(topo, homebase, 1);
    let mut sweep = Sweep::new(topo.node_count(), homebase, leaky);
    let mut step = 0u64;
    let violation = loop {
        if step >= max_steps {
            break Some(ViolationReport {
                step,
                event: oracle.events_applied(),
                kind: ViolationKind::StepLimit,
            });
        }
        match sweep.step(topo, &mut oracle, adversary, step) {
            Ok(Progress::Done) => break None,
            Ok(Progress::Advanced) => step += 1,
            Err(v) => break Some(v),
        }
    };
    let mut stats = sweep.stats;
    stats.steps = step;
    stats.rounds = 1;
    stats.violation = violation;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_topology::PartialGrid;

    fn run(grid: &PartialGrid, leaky: bool, schedule: u64) -> ScheduleStats {
        let mut adversary = Adversary::for_schedule(0, schedule);
        run_static(grid, grid.homebase(), leaky, &mut adversary, 100_000)
    }

    #[test]
    fn full_grid_sweep_captures_cleanly() {
        let grid = PartialGrid::full(6, 6);
        for schedule in 0..25 {
            let stats = run(&grid, false, schedule);
            assert!(
                stats.violation.is_none(),
                "schedule {schedule}: {:?}",
                stats.violation
            );
            assert_eq!(stats.terminates, stats.team);
            assert!(stats.team >= 2, "a 6x6 sweep needs at least two agents");
        }
    }

    #[test]
    fn random_hole_sweep_captures_cleanly() {
        for seed in [1u64, 7, 42] {
            let grid = PartialGrid::random_holes(6, 6, 9, seed);
            for schedule in 0..10 {
                let stats = run(&grid, false, schedule);
                assert!(
                    stats.violation.is_none(),
                    "holes seed {seed} schedule {schedule}: {:?}",
                    stats.violation
                );
            }
        }
    }

    #[test]
    fn corridor_sweep_uses_a_constant_team() {
        let grid = PartialGrid::corridor(7, 5);
        let stats = run(&grid, false, 0);
        assert!(stats.violation.is_none(), "{:?}", stats.violation);
        // A path graph needs only the frontier guard plus one mover
        // (plus the initial homebase guard until it turns interior).
        assert!(
            stats.team <= 3,
            "corridor team blew up to {} agents",
            stats.team
        );
    }

    #[test]
    fn leaky_guard_mutant_is_caught_on_every_schedule() {
        let grid = PartialGrid::random_holes(6, 6, 9, 42);
        for schedule in 0..10 {
            let stats = run(&grid, true, schedule);
            let v = stats.violation.expect("mutant must be caught");
            assert!(
                matches!(v.kind, ViolationKind::Recontamination { .. }),
                "schedule {schedule}: wrong kind {v}"
            );
        }
    }

    #[test]
    fn single_cell_grid_is_trivially_captured() {
        let grid = PartialGrid::full(1, 1);
        let stats = run(&grid, false, 0);
        assert!(stats.violation.is_none());
        assert_eq!(stats.team, 1);
    }
}
