//! The workspace's standard SplitMix64, for the edge-churn stream.
//! (The checker's copy is private to its adversary module; the stream
//! here must be independent of adversary decisions anyway, so the
//! scenario crate carries its own.)

pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`n` must be non-zero).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}
