//! Pluggable decontamination workloads behind one registry.
//!
//! The paper's pipeline — strategy drives events, the checker's
//! [`StepOracle`](hypersweep_check::StepOracle) folds the invariants
//! over them — is topology-agnostic; only the hypercube plumbing was
//! not. A [`Scenario`] packages a topology family, a strategy, an
//! oracle profile, and a closed-form team-size predictor where one is
//! known, and the CLI, the server, and the checker all resolve
//! scenarios through [`registry`] instead of hard-coding the
//! hypercube.
//!
//! Two scenarios ship:
//!
//! * [`ScenarioId::Grid`] — connected monotone search on partial grids
//!   (full, random-hole, and corridor instances), after Dereniowski &
//!   Urbańska's connected searching of partial grids. The frontier
//!   sweep keeps a dedicated guard on every boundary node and a small
//!   mover pool cleaning targets, so team size tracks the peak
//!   boundary — the searcher-count accountant.
//! * [`ScenarioId::Dynamic`] — the same sweep on a graph an adversary
//!   mutates between rounds (seeded edge insertions/deletions), with
//!   the oracle re-verifying contiguity and guard coverage across
//!   every mutation. The re-planning it forces is the measured cost of
//!   monotonicity on a dynamic graph.
//!
//! [`ScenarioId::Hypercube`] is deliberately *not* in the registry:
//! resolving it yields `None` and callers fall through to the classic
//! hypercube code paths (including the serving answer table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod dynamic;
mod rng;
mod sweep;

pub use campaign::{
    run_scenario_campaign, scenario_table, ScenarioCampaign, ScenarioCounterexample,
    ScenarioOutcome,
};
pub use dynamic::{MUTATIONS_PER_ROUND, ROUND_LEN};
pub use sweep::ScheduleStats;

use hypersweep_check::{Adversary, ViolationKind};
use hypersweep_topology::{GridInstance, Topology};

/// Largest accepted grid side (`side x side` live cells at most; keeps
/// node ids comfortably in `u32` and campaigns fast).
pub const MAX_SIDE: u32 = 16;

/// The scenario namespace. `Hypercube` names the classic pipeline and
/// is never in [`registry`]; the other ids resolve to [`Scenario`]
/// implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioId {
    /// The paper's hypercube pipeline (classic code paths).
    Hypercube,
    /// Connected search on partial grids.
    Grid,
    /// Adversarial dynamic-graph decontamination.
    Dynamic,
}

impl ScenarioId {
    /// Every id, in wire order.
    pub const ALL: [ScenarioId; 3] = [ScenarioId::Hypercube, ScenarioId::Grid, ScenarioId::Dynamic];

    /// The stable wire/CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioId::Hypercube => "hypercube",
            ScenarioId::Grid => "grid",
            ScenarioId::Dynamic => "dynamic",
        }
    }

    /// Parse a wire/CLI spelling.
    pub fn parse(s: &str) -> Option<ScenarioId> {
        match s {
            "hypercube" => Some(ScenarioId::Hypercube),
            "grid" => Some(ScenarioId::Grid),
            "dynamic" => Some(ScenarioId::Dynamic),
            _ => None,
        }
    }
}

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Strategies a scenario campaign can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GridStrategy {
    /// The guarded frontier sweep (the real strategy).
    Sweep,
    /// Negative control: frees a boundary guard while its node still
    /// borders contamination. The oracle must catch it immediately.
    LeakyGuard,
}

impl GridStrategy {
    /// Every strategy, checker-first.
    pub const ALL: [GridStrategy; 2] = [GridStrategy::Sweep, GridStrategy::LeakyGuard];

    /// The stable CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            GridStrategy::Sweep => "sweep",
            GridStrategy::LeakyGuard => "mutant-grid-leaky-guard",
        }
    }

    /// Parse a CLI spelling ("all" is handled by the caller).
    pub fn parse(s: &str) -> Option<GridStrategy> {
        match s {
            "sweep" => Some(GridStrategy::Sweep),
            "mutant-grid-leaky-guard" => Some(GridStrategy::LeakyGuard),
            _ => None,
        }
    }
}

impl std::fmt::Display for GridStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic reference run (seed 0, schedule 0) plus the
/// bookkeeping the server needs to build plan and audit replies
/// without the response structs learning any scenario-specific fields.
#[derive(Clone, Debug)]
pub struct ScenarioReference {
    /// Live nodes in the instance.
    pub nodes: u64,
    /// Agents the run used.
    pub team: u64,
    /// Edge traversals.
    pub moves: u64,
    /// Events through the oracle.
    pub events: u64,
    /// Largest event timestamp.
    pub max_time: u64,
    /// Terminates emitted at capture.
    pub terminates: u64,
    /// Monotonicity held (no recontamination).
    pub monotone: bool,
    /// The clean region stayed connected with the homebase.
    pub contiguous: bool,
    /// Every node decontaminated.
    pub all_clean: bool,
    /// Capture: terminated with nothing contaminated.
    pub captured: bool,
    /// Oracle violations (0 for a shipping strategy).
    pub violations: u64,
    /// `cleaned_by_team[k]` = nodes cleaned at team size `k + 1`.
    pub cleaned_by_team: Vec<u64>,
    /// Rounds driven (1 for static scenarios).
    pub rounds: u64,
    /// Accepted mutations (dynamic only).
    pub mutations: u64,
    /// Rejected mutation proposals (dynamic only).
    pub rejected: u64,
}

impl ScenarioReference {
    fn from_stats(nodes: u64, stats: ScheduleStats) -> Self {
        let mut r = ScenarioReference {
            nodes,
            team: stats.team,
            moves: stats.moves,
            events: stats.events,
            max_time: stats.max_time,
            terminates: stats.terminates,
            monotone: true,
            contiguous: true,
            all_clean: true,
            captured: true,
            violations: 0,
            cleaned_by_team: stats.cleaned_by_team,
            rounds: stats.rounds,
            mutations: stats.mutations,
            rejected: stats.rejected,
        };
        if let Some(v) = &stats.violation {
            r.violations = 1;
            match v.kind {
                ViolationKind::Recontamination { .. } => r.monotone = false,
                ViolationKind::ContiguityBroken => r.contiguous = false,
                ViolationKind::CaptureEscaped { .. } => {
                    r.captured = false;
                    r.all_clean = false;
                }
                _ => {
                    r.captured = false;
                    r.all_clean = false;
                }
            }
        }
        r
    }
}

/// One pluggable workload: topology family + strategy + oracle profile
/// + closed-form predictor where known.
pub trait Scenario: Sync {
    /// The registry key.
    fn id(&self) -> ScenarioId;

    /// One-line description for `hypersweep report scenarios`.
    fn summary(&self) -> &'static str;

    /// Label of the shipping strategy this scenario runs.
    fn strategy_label(&self) -> &'static str;

    /// Instance used when a request does not name one.
    fn default_instance(&self) -> GridInstance;

    /// Closed-form team-size prediction, where the literature gives
    /// one. Full `side x side` grids: a connected monotone sweep with a
    /// guarded column frontier needs `side + 1` searchers (column
    /// guards plus one mover) — the grid analogue of the paper's
    /// hypercube theorem bounds. Holes/corridor instances and dynamic
    /// graphs have no closed form; the campaign measures instead.
    fn closed_form_team(&self, side: u32, instance: GridInstance) -> Option<u64>;

    /// Validate a side length before building anything.
    fn validate(&self, side: u32) -> Result<(), String> {
        if side == 0 {
            return Err("side must be at least 1".to_string());
        }
        if side > MAX_SIDE {
            return Err(format!("side {side} exceeds the maximum of {MAX_SIDE}"));
        }
        Ok(())
    }

    /// The deterministic reference run (seed 0, schedule 0) the server
    /// answers plan/audit from.
    fn reference(&self, side: u32, instance: GridInstance) -> ScenarioReference;

    /// A ready-to-run campaign over this scenario.
    fn campaign(
        &self,
        strategy: GridStrategy,
        side: u32,
        instance: GridInstance,
        schedules: u64,
        seed: u64,
        max_steps: u64,
    ) -> ScenarioCampaign {
        ScenarioCampaign {
            scenario: self.id(),
            strategy,
            side,
            instance,
            schedules,
            seed,
            max_steps,
        }
    }
}

/// Connected search on partial grids.
struct GridScenario;

impl Scenario for GridScenario {
    fn id(&self) -> ScenarioId {
        ScenarioId::Grid
    }

    fn summary(&self) -> &'static str {
        "connected monotone search on partial grids (full / random-hole / corridor instances)"
    }

    fn strategy_label(&self) -> &'static str {
        "grid-sweep"
    }

    fn default_instance(&self) -> GridInstance {
        GridInstance::Holes(42)
    }

    fn closed_form_team(&self, side: u32, instance: GridInstance) -> Option<u64> {
        match instance {
            GridInstance::Full => Some(side as u64 + 1),
            GridInstance::Corridor => Some(2),
            GridInstance::Holes(_) => None,
        }
    }

    fn reference(&self, side: u32, instance: GridInstance) -> ScenarioReference {
        let grid = instance.build(side);
        let nodes = grid.node_count() as u64;
        let mut adversary = Adversary::for_schedule(0, 0);
        let stats = sweep::run_static(
            &grid,
            grid.homebase(),
            false,
            &mut adversary,
            1_000 * nodes + 10_000,
        );
        ScenarioReference::from_stats(nodes, stats)
    }
}

/// Adversarial dynamic-graph decontamination.
struct DynamicScenario;

impl Scenario for DynamicScenario {
    fn id(&self) -> ScenarioId {
        ScenarioId::Dynamic
    }

    fn summary(&self) -> &'static str {
        "decontamination under seeded between-round edge churn, re-verified across every mutation"
    }

    fn strategy_label(&self) -> &'static str {
        "dynamic-sweep"
    }

    fn default_instance(&self) -> GridInstance {
        GridInstance::Full
    }

    fn closed_form_team(&self, _side: u32, _instance: GridInstance) -> Option<u64> {
        None
    }

    fn reference(&self, side: u32, instance: GridInstance) -> ScenarioReference {
        let nodes = instance.build(side).node_count() as u64;
        let stats = dynamic::run_dynamic(side, instance, 0, 0, 1_000 * nodes + 10_000);
        ScenarioReference::from_stats(nodes, stats)
    }
}

static GRID: GridScenario = GridScenario;
static DYNAMIC: DynamicScenario = DynamicScenario;

/// Every registered scenario. The hypercube is not here by design —
/// see the crate docs.
pub fn registry() -> &'static [&'static dyn Scenario] {
    static REGISTRY: [&dyn Scenario; 2] = [&GRID, &DYNAMIC];
    &REGISTRY
}

/// Resolve an id to its registered scenario. `Hypercube` (the classic
/// pipeline) and only `Hypercube` yields `None`.
pub fn resolve(id: ScenarioId) -> Option<&'static dyn Scenario> {
    registry().iter().copied().find(|s| s.id() == id)
}

/// Validate a `(scenario, side, instance)` triple as it arrives off
/// the wire or the command line. Returns the resolved scenario for
/// non-hypercube ids.
pub fn validate_scenario(
    id: ScenarioId,
    side: u32,
    _instance: GridInstance,
) -> Result<Option<&'static dyn Scenario>, String> {
    match resolve(id) {
        None => Ok(None),
        Some(s) => {
            s.validate(side)?;
            Ok(Some(s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_everything_but_the_hypercube() {
        assert!(resolve(ScenarioId::Hypercube).is_none());
        for id in [ScenarioId::Grid, ScenarioId::Dynamic] {
            let s = resolve(id).expect("registered scenario");
            assert_eq!(s.id(), id);
        }
        assert_eq!(registry().len(), 2);
    }

    #[test]
    fn labels_round_trip() {
        for id in ScenarioId::ALL {
            assert_eq!(ScenarioId::parse(id.label()), Some(id));
        }
        for s in GridStrategy::ALL {
            assert_eq!(GridStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(ScenarioId::parse("torus"), None);
    }

    #[test]
    fn validate_scenario_enforces_side_bounds() {
        assert!(validate_scenario(ScenarioId::Grid, 0, GridInstance::Full).is_err());
        assert!(validate_scenario(ScenarioId::Grid, MAX_SIDE + 1, GridInstance::Full).is_err());
        assert!(validate_scenario(ScenarioId::Grid, 6, GridInstance::Full).is_ok());
        // The hypercube has its own dim validation; this helper passes it through.
        assert!(matches!(
            validate_scenario(ScenarioId::Hypercube, 0, GridInstance::Full),
            Ok(None)
        ));
    }

    #[test]
    fn grid_reference_run_captures_and_matches_the_closed_form_shape() {
        let s = resolve(ScenarioId::Grid).unwrap();
        let r = s.reference(5, GridInstance::Full);
        assert_eq!(r.nodes, 25);
        assert!(r.captured && r.monotone && r.contiguous && r.all_clean);
        assert_eq!(r.violations, 0);
        assert_eq!(r.cleaned_by_team.iter().sum::<u64>(), r.nodes);
        let bound = s.closed_form_team(5, GridInstance::Full).unwrap();
        assert!(
            r.team <= bound + 2,
            "measured team {} strays far from the closed form {bound}",
            r.team
        );
    }

    #[test]
    fn dynamic_reference_run_captures() {
        let s = resolve(ScenarioId::Dynamic).unwrap();
        let r = s.reference(5, GridInstance::Full);
        assert!(r.captured, "dynamic reference run must reach capture");
        assert_eq!(r.violations, 0);
        assert!(r.rounds >= 1);
    }
}
