//! Dynamic-graph decontamination: the sweep from [`crate::sweep`]
//! driven in rounds, with a seeded adversary inserting and deleting
//! edges between rounds.
//!
//! Each round snapshots the contamination state (safe set + occupancy),
//! applies a batch of validated mutations to the working [`AdjGraph`],
//! restores the snapshot onto the mutated adjacency via
//! [`ContaminationField::with_state`], and immediately re-verifies the
//! region invariants with [`StepOracle::verify_region`] — contiguity
//! and frontier-guard coverage must survive the mutation before any
//! agent moves. The sweep then re-plans its duties against the new
//! adjacency and drives [`ROUND_LEN`] more decision steps.
//!
//! A mutation proposal is *rejected* (and counted) when it would break
//! an invariant by construction rather than by strategy error:
//! inserting an edge from contamination to an unguarded clean node
//! (instant recontamination nobody could have prevented), or deleting
//! an edge that disconnects the graph or the clean region. Everything
//! else — including insertions that suddenly turn interior nodes back
//! into frontier — is fair game the strategy must absorb.

use hypersweep_check::{Adversary, StepOracle, ViolationKind, ViolationReport};
use hypersweep_intruder::ContaminationField;
use hypersweep_topology::graph::AdjGraph;
use hypersweep_topology::{GridInstance, Node, NodeSet, Topology};

use crate::rng::SplitMix64;
use crate::sweep::{Progress, ScheduleStats, Sweep};

/// Decision steps driven between mutation batches.
pub const ROUND_LEN: u64 = 6;

/// Edge-churn proposals per mutation batch.
pub const MUTATIONS_PER_ROUND: u32 = 2;

/// Would removing `(a, b)` leave the whole graph or the clean region
/// disconnected? (`graph` is inspected *after* the tentative removal.)
fn still_connected(graph: &AdjGraph, safe: &NodeSet, homebase: Node) -> bool {
    if !graph.is_connected() {
        return false;
    }
    let cleaned = safe.count_ones();
    if cleaned == 0 {
        return true;
    }
    if !safe.contains(homebase) {
        return false;
    }
    // BFS from the homebase restricted to safe nodes.
    let n = graph.node_count();
    let mut seen = NodeSet::new(n);
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs = Vec::new();
    seen.insert(homebase);
    queue.push_back(homebase);
    let mut reached = 1usize;
    while let Some(x) = queue.pop_front() {
        graph.neighbors_into(x, &mut nbrs);
        for &y in &nbrs {
            if safe.contains(y) && seen.insert(y) {
                reached += 1;
                queue.push_back(y);
            }
        }
    }
    reached == cleaned
}

/// Apply one proposal if it passes validation. Returns whether the
/// graph changed.
fn try_mutate(
    graph: &mut AdjGraph,
    safe: &NodeSet,
    occupancy: &[u32],
    homebase: Node,
    a: Node,
    b: Node,
    insert: bool,
) -> bool {
    if a == b {
        return false;
    }
    if insert {
        if graph.has_edge(a, b) {
            return false;
        }
        let a_clean = safe.contains(a);
        let b_clean = safe.contains(b);
        // Contamination reaching an unguarded clean node the instant
        // the edge lands is the adversary cheating, not the strategy
        // failing — reject it.
        if !a_clean && b_clean && occupancy[b.index()] == 0 {
            return false;
        }
        if !b_clean && a_clean && occupancy[a.index()] == 0 {
            return false;
        }
        graph.add_edge(a, b);
        true
    } else {
        if !graph.remove_edge(a, b) {
            return false;
        }
        if still_connected(graph, safe, homebase) {
            true
        } else {
            graph.add_edge(a, b);
            false
        }
    }
}

/// Drive one full dynamic schedule: rounds of sweep steps separated by
/// validated edge churn, every round re-verified by the oracle.
pub(crate) fn run_dynamic(
    side: u32,
    instance: GridInstance,
    seed: u64,
    schedule: u64,
    max_steps: u64,
) -> ScheduleStats {
    let grid = instance.build(side);
    let mut graph = AdjGraph::from_topology(&grid);
    let homebase = grid.homebase();
    let n = graph.node_count();

    let mut adversary = Adversary::for_schedule(seed, schedule);
    // Churn stream decoupled from the scheduling adversary but derived
    // the same way, so every (seed, schedule) pair is reproducible
    // under any worker count.
    let mut churn = SplitMix64::new(
        seed.wrapping_mul(0x9E37_79B9).wrapping_add(schedule) ^ 0x6A09_E667_F3BC_C908,
    );

    let mut sweep = Sweep::new(n, homebase, false);
    let mut safe = NodeSet::new(n);
    let mut occupancy = vec![0u32; n];
    let mut step = 0u64;
    let mut rounds = 0u64;
    let mut mutations = 0u64;
    let mut rejected = 0u64;

    let violation = 'outer: loop {
        rounds += 1;
        {
            let field = ContaminationField::with_state(&graph, homebase, &safe, &occupancy);
            let mut oracle = StepOracle::from_field(field, 1);
            // The previous batch's mutations must leave the region
            // invariants standing before anyone moves.
            if let Err(v) = oracle.verify_region(step) {
                break 'outer Some(v);
            }
            sweep.replan(&graph, oracle.field());
            let mut done = false;
            for _ in 0..ROUND_LEN {
                if step >= max_steps {
                    break 'outer Some(ViolationReport {
                        step,
                        event: oracle.events_applied(),
                        kind: ViolationKind::StepLimit,
                    });
                }
                match sweep.step(&graph, &mut oracle, &mut adversary, step) {
                    Ok(Progress::Done) => {
                        done = true;
                        break;
                    }
                    Ok(Progress::Advanced) => step += 1,
                    Err(v) => break 'outer Some(v),
                }
            }
            let field = oracle.field();
            safe.clear();
            for i in 0..n as u32 {
                if !field.is_contaminated(Node(i)) {
                    safe.insert(Node(i));
                }
            }
            occupancy.copy_from_slice(field.occupancy());
            if done {
                break 'outer None;
            }
        }
        for _ in 0..MUTATIONS_PER_ROUND {
            let a = Node(churn.below(n as u64) as u32);
            let b = Node(churn.below(n as u64) as u32);
            let insert = churn.next() & 1 == 0;
            if try_mutate(&mut graph, &safe, &occupancy, homebase, a, b, insert) {
                mutations += 1;
            } else {
                rejected += 1;
            }
        }
    };

    let mut stats = sweep.stats;
    stats.steps = step;
    stats.rounds = rounds;
    stats.mutations = mutations;
    stats.rejected = rejected;
    stats.violation = violation;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_schedules_stay_quiet_and_churn_happens() {
        let mut total_mutations = 0;
        for schedule in 0..40 {
            let stats = run_dynamic(6, GridInstance::Full, 0, schedule, 100_000);
            assert!(
                stats.violation.is_none(),
                "schedule {schedule}: {:?}",
                stats.violation
            );
            assert!(stats.rounds >= 1);
            total_mutations += stats.mutations;
        }
        assert!(
            total_mutations > 0,
            "the adversary never managed a single accepted mutation"
        );
    }

    #[test]
    fn dynamic_runs_are_deterministic_per_schedule() {
        for schedule in [0u64, 3, 17] {
            let a = run_dynamic(5, GridInstance::Holes(42), 7, schedule, 100_000);
            let b = run_dynamic(5, GridInstance::Holes(42), 7, schedule, 100_000);
            assert_eq!(a.decisions, b.decisions);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.mutations, b.mutations);
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.team, b.team);
        }
    }

    #[test]
    fn insert_into_unguarded_clean_region_is_rejected() {
        let grid = GridInstance::Full.build(3);
        let mut graph = AdjGraph::from_topology(&grid);
        let n = graph.node_count();
        let mut safe = NodeSet::new(n);
        let occupancy = vec![0u32; n];
        // Node 0 clean and unguarded, node 8 contaminated.
        safe.insert(Node(0));
        assert!(!try_mutate(
            &mut graph,
            &safe,
            &occupancy,
            Node(0),
            Node(8),
            Node(0),
            true
        ));
        // Same insert with a guard standing on node 0 is fair game.
        let mut guarded = occupancy.clone();
        guarded[0] = 1;
        assert!(try_mutate(
            &mut graph,
            &safe,
            &guarded,
            Node(0),
            Node(8),
            Node(0),
            true
        ));
    }

    #[test]
    fn disconnecting_deletions_are_rejected() {
        // A 1x3 path: removing any edge disconnects the graph.
        let grid = GridInstance::Full.build(1);
        assert_eq!(grid.node_count(), 1);
        let path = AdjGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut graph = path;
        let safe = NodeSet::new(3);
        let occupancy = vec![0u32; 3];
        assert!(!try_mutate(
            &mut graph,
            &safe,
            &occupancy,
            Node(0),
            Node(0),
            Node(1),
            false
        ));
        assert!(
            graph.has_edge(Node(0), Node(1)),
            "rejected delete must be undone"
        );
    }
}
