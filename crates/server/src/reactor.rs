//! The event-driven serving front end: one reactor thread multiplexing
//! every connection.
//!
//! The reactor owns both listeners (TCP, and optionally a Unix-domain
//! socket), every live connection, and the completion queue the worker
//! pool replies through. All sockets are non-blocking; a single
//! `poll(2)` readiness sweep (see [`crate::poll`]) drives the loop:
//!
//! * **Accept** — new connections get `TCP_NODELAY` (a one-line
//!   request/reply protocol under Nagle + delayed ACK costs ~40 ms per
//!   round trip) and a per-connection pair of reusable byte buffers.
//!   Over [`max_connections`](crate::ServerLimits::max_connections) the
//!   stream gets one best-effort `busy` line and is dropped.
//! * **Read** — bytes are split into lines in place; each complete line
//!   is answered immediately. Clients may pipeline: many request lines
//!   per write, replies always in request order. A line over the size
//!   bound is discarded as it streams in (bounded buffering) and
//!   answered with an `oversized` error; the connection survives.
//! * **Compute** — `plan`/`predict` are answered inline, usually
//!   straight from the precomputed [`AnswerTable`](crate::AnswerTable)
//!   (one array lookup returning pre-serialized bytes); `audit` is
//!   submitted to the worker pool and a *pending slot* is queued in the
//!   connection's reply queue, so later pipelined replies wait behind it
//!   and ordering is preserved. Workers push finished lines through an
//!   mpsc channel and wake the reactor via a loopback socket.
//! * **Flow control** — a connection with
//!   [`max_pipeline`](crate::ServerLimits::max_pipeline) unanswered
//!   requests, or a write buffer past the high-water mark, simply stops
//!   being read until replies drain. Backpressure, not errors.
//! * **Drain** — on shutdown the listeners close (the Unix socket file
//!   is unlinked), in-flight audits finish or time out, every reply is
//!   flushed, and connections close as they empty.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::daemon::{sigint_seen, Shared};
use crate::poll::{nofile_soft_limit, poll, PollFd, POLLIN, POLLOUT};
use crate::protocol::{ErrorKind, Request, Response, ShutdownReply, WireError};

/// Poll timeout: how stale the shutdown/SIGINT flags can get.
const POLL_TIMEOUT_MS: i32 = 50;
/// Descriptors held back from the connection budget: listeners, the
/// waker pair, stdio, the metrics/persist/log files, and slack for
/// whatever the process opens next.
const RESERVED_FDS: u64 = 16;
/// Stop reading a connection whose unflushed replies exceed this.
const WBUF_HIGH_WATER: usize = 256 * 1024;
/// Read chunk size (stack scratch, reused for every connection).
const SCRATCH_BYTES: usize = 16 * 1024;
/// Extra drain time past the request timeout before giving up on
/// unflushed replies.
const DRAIN_GRACE_MS: u64 = 2_000;

/// A connected client socket, TCP or Unix-domain — same state machine.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn fd(&self) -> i32 {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
}

/// One reply position in a connection's in-order queue.
enum Slot {
    /// Serialized and waiting to enter the write buffer.
    Ready(String),
    /// An audit executing on the pool; later replies queue behind it.
    Pending {
        seq: u64,
        started: Instant,
        deadline: Instant,
    },
}

/// Per-connection state. The read and write buffers are allocated once
/// and reused for the connection's whole life — steady-state serving
/// does not allocate per request.
struct Conn {
    stream: Stream,
    /// Guards against completions addressed to a previous occupant of
    /// this connection slot.
    gen: u64,
    /// Partial line carried across reads.
    rbuf: Vec<u8>,
    /// Serialized replies not yet written; `wpos` bytes already sent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// In-order reply queue (pipelining).
    replies: VecDeque<Slot>,
    next_seq: u64,
    /// Inside an oversized line: swallow bytes until the newline.
    discarding: bool,
    /// Peer sent EOF: flush what remains, then close.
    closing: bool,
}

impl Conn {
    fn new(stream: Stream, gen: u64) -> Conn {
        Conn {
            stream,
            gen,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            replies: VecDeque::new(),
            next_seq: 0,
            discarding: false,
            closing: false,
        }
    }

    fn unflushed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// A finished pool job, routed back to the reactor thread.
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    /// `None`: the worker died before replying (the job panicked; the
    /// pool caught it and counts it in `pool.job_panics`).
    line: Option<String>,
}

/// Carried into every pool job: guarantees exactly one completion per
/// submitted audit, even when the job panics mid-run.
struct ReplyGuard {
    tx: mpsc::Sender<Completion>,
    waker: Arc<TcpStream>,
    conn: usize,
    gen: u64,
    seq: u64,
    done: bool,
}

impl ReplyGuard {
    fn deliver(&mut self, line: Option<String>) {
        self.done = true;
        let _ = self.tx.send(Completion {
            conn: self.conn,
            gen: self.gen,
            seq: self.seq,
            line,
        });
        // One byte on the loopback pair interrupts the reactor's poll;
        // a full pipe means a wakeup is already queued.
        let _ = (&*self.waker).write(&[1]);
    }

    fn complete(mut self, line: String) {
        self.deliver(Some(line));
    }
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        if !self.done {
            self.deliver(None);
        }
    }
}

/// What a poll-set entry refers to.
enum Target {
    TcpListener,
    UdsListener,
    Waker,
    Conn(usize),
}

/// The single-threaded serving loop. Owns the listeners and every
/// connection; shares the dispatcher/pool/limits with the daemon.
pub(crate) struct Reactor {
    tcp: TcpListener,
    uds: Option<UnixListener>,
    uds_path: Option<PathBuf>,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    live: usize,
    /// Effective concurrent-connection cap:
    /// [`max_connections`](crate::ServerLimits::max_connections) clamped
    /// to the fd headroom (`ulimit -n` soft limit minus [`RESERVED_FDS`]).
    conn_cap: usize,
    next_gen: u64,
    waker_rx: TcpStream,
    waker_tx: Arc<TcpStream>,
    completions_tx: mpsc::Sender<Completion>,
    completions_rx: mpsc::Receiver<Completion>,
    /// Pre-serialized: every timeout sends the same bytes.
    timeout_line: String,
    draining: bool,
    drain_deadline: Option<Instant>,
}

/// A connected loopback pair: workers write one byte to `tx` to
/// interrupt the reactor's poll on `rx`.
fn waker_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

impl Reactor {
    pub(crate) fn new(
        tcp: TcpListener,
        uds: Option<UnixListener>,
        uds_path: Option<PathBuf>,
        shared: Arc<Shared>,
    ) -> io::Result<Reactor> {
        tcp.set_nonblocking(true)?;
        if let Some(listener) = &uds {
            listener.set_nonblocking(true)?;
        }
        let (waker_rx, waker_tx) = waker_pair()?;
        let (completions_tx, completions_rx) = mpsc::channel();
        let timeout_line = Response::Error(WireError::new(
            ErrorKind::Timeout,
            format!(
                "request exceeded the {} ms budget",
                shared.limits.request_timeout.as_millis()
            ),
        ))
        .to_line();
        let conn_cap = effective_connection_cap(shared.limits.max_connections, nofile_soft_limit());
        if conn_cap < shared.limits.max_connections {
            hypersweep_telemetry::log_line(&format!(
                "reactor: fd soft limit clamps connections to {conn_cap} \
                 (configured {}, {RESERVED_FDS} descriptors reserved)",
                shared.limits.max_connections
            ));
        }
        Ok(Reactor {
            tcp,
            uds,
            uds_path,
            shared,
            conns: Vec::new(),
            live: 0,
            conn_cap,
            next_gen: 0,
            waker_rx,
            waker_tx: Arc::new(waker_tx),
            completions_tx,
            completions_rx,
            timeout_line,
            draining: false,
            drain_deadline: None,
        })
    }

    /// Serve until the shutdown flag (or SIGINT) is raised, then drain:
    /// finish or time out pending audits, flush every reply, close every
    /// connection. The caller shuts the pool down afterwards.
    pub(crate) fn run(mut self) -> io::Result<()> {
        loop {
            self.observe_shutdown();
            if self.draining {
                if self.live == 0 {
                    return Ok(());
                }
                if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
                    return Ok(());
                }
            }
            let (mut fds, targets) = self.poll_set();
            poll(&mut fds, POLL_TIMEOUT_MS)?;
            for (fd, target) in fds.iter().zip(&targets) {
                match target {
                    Target::TcpListener if fd.readable() => self.accept_tcp(),
                    Target::UdsListener if fd.readable() => self.accept_uds(),
                    Target::Waker if fd.readable() => self.drain_waker(),
                    Target::Conn(idx) if fd.readable() => self.drain_readable(*idx),
                    _ => {}
                }
            }
            self.drain_completions();
            self.expire_timeouts();
            self.flush_all();
        }
    }

    /// Latch the drain state: stop listening, unlink the Unix socket.
    fn observe_shutdown(&mut self) {
        if self.draining {
            return;
        }
        if self.shared.shutdown.load(Ordering::SeqCst) || sigint_seen() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.draining = true;
            self.drain_deadline = Some(
                Instant::now()
                    + self.shared.limits.request_timeout
                    + std::time::Duration::from_millis(DRAIN_GRACE_MS),
            );
            self.uds = None;
            if let Some(path) = &self.uds_path {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// Whether the reactor should read more requests from `conn`.
    fn wants_read(&self, conn: &Conn) -> bool {
        !self.draining
            && !conn.closing
            && conn.replies.len() < self.shared.limits.max_pipeline
            && conn.unflushed() < WBUF_HIGH_WATER
    }

    fn poll_set(&self) -> (Vec<PollFd>, Vec<Target>) {
        let mut fds = Vec::with_capacity(self.live + 3);
        let mut targets = Vec::with_capacity(self.live + 3);
        if !self.draining {
            // Listeners stay registered even at the connection cap: the
            // excess client gets an immediate busy line, not a silent
            // wait in the accept backlog.
            fds.push(PollFd::new(self.tcp.as_raw_fd(), POLLIN));
            targets.push(Target::TcpListener);
            if let Some(listener) = &self.uds {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                targets.push(Target::UdsListener);
            }
        }
        fds.push(PollFd::new(self.waker_rx.as_raw_fd(), POLLIN));
        targets.push(Target::Waker);
        for (idx, slot) in self.conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let mut events = 0;
            if self.wants_read(conn) {
                events |= POLLIN;
            }
            if conn.unflushed() > 0 {
                events |= POLLOUT;
            }
            // Registered even with no requested events: POLLERR/POLLHUP
            // are always reported, so a dead peer still wakes us.
            fds.push(PollFd::new(conn.stream.fd(), events));
            targets.push(Target::Conn(idx));
        }
        (fds, targets)
    }

    fn accept_tcp(&mut self) {
        loop {
            match self.tcp.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.admit(Stream::Tcp(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_uds(&mut self) {
        loop {
            let accepted = match &self.uds {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.admit(Stream::Unix(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, mut stream: Stream) {
        if self.live >= self.conn_cap {
            // One best-effort busy line (a fresh socket's send buffer
            // always has room for it), then drop. Counted in the
            // `server.busy` telemetry like a saturated dispatch queue.
            self.shared.dispatcher.note_busy();
            let mut line = Response::Error(WireError::new(
                ErrorKind::Busy,
                "connection limit reached; retry later",
            ))
            .to_line();
            line.push('\n');
            let _ = stream.write(line.as_bytes());
            return;
        }
        self.live += 1;
        self.next_gen += 1;
        let conn = Conn::new(stream, self.next_gen);
        match self.conns.iter().position(Option::is_none) {
            Some(idx) => self.conns[idx] = Some(conn),
            None => self.conns.push(Some(conn)),
        }
    }

    fn close(&mut self, idx: usize) {
        if self.conns[idx].take().is_some() {
            self.live -= 1;
        }
    }

    fn drain_waker(&mut self) {
        let mut scratch = [0u8; 64];
        while matches!(self.waker_rx.read(&mut scratch), Ok(n) if n > 0) {}
    }

    /// Read everything the socket has, splitting and answering lines as
    /// they complete. Stops early when flow control kicks in.
    fn drain_readable(&mut self, idx: usize) {
        let mut scratch = [0u8; SCRATCH_BYTES];
        loop {
            {
                let Some(conn) = self.conns[idx].as_ref() else {
                    return;
                };
                if !self.wants_read(conn) {
                    return;
                }
            }
            let result = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                conn.stream.read(&mut scratch)
            };
            match result {
                Ok(0) => {
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.closing = true;
                    }
                    return;
                }
                Ok(n) => self.ingest(idx, &scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Split `data` into lines, carrying partials in the connection's
    /// read buffer. A line whose length exceeds the bound never buffers
    /// more than the bound: the content is discarded and the line is
    /// answered with an `oversized` error once its newline arrives.
    fn ingest(&mut self, idx: usize, data: &[u8]) {
        let max = self.shared.limits.max_line_bytes;
        let mut pos = 0;
        while pos < data.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            match data[pos..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    let end = pos + rel;
                    let was_discarding = conn.discarding;
                    conn.discarding = false;
                    if was_discarding {
                        self.reply_oversized(idx);
                    } else if conn.rbuf.len() + rel > max {
                        conn.rbuf.clear();
                        self.reply_oversized(idx);
                    } else {
                        let text = if conn.rbuf.is_empty() {
                            String::from_utf8(data[pos..end].to_vec())
                        } else {
                            conn.rbuf.extend_from_slice(&data[pos..end]);
                            let line = std::mem::take(&mut conn.rbuf);
                            String::from_utf8(line)
                        };
                        match text {
                            Ok(text) => self.handle_one(idx, &text),
                            Err(bytes) => {
                                // Hand the allocation back so the buffer
                                // stays warm for the next line.
                                let mut buf = bytes.into_bytes();
                                buf.clear();
                                if let Some(conn) = self.conns[idx].as_mut() {
                                    if conn.rbuf.capacity() < buf.capacity() {
                                        conn.rbuf = buf;
                                    }
                                }
                                self.reply_invalid_utf8(idx);
                            }
                        }
                    }
                    pos = end + 1;
                }
                None => {
                    if !conn.discarding {
                        conn.rbuf.extend_from_slice(&data[pos..]);
                        if conn.rbuf.len() > max {
                            conn.rbuf.clear();
                            conn.discarding = true;
                        }
                    }
                    return;
                }
            }
        }
    }

    fn reply_oversized(&mut self, idx: usize) {
        self.shared.dispatcher.note_error();
        let line = Response::Error(WireError::new(
            ErrorKind::Oversized,
            format!(
                "request line exceeds {} bytes",
                self.shared.limits.max_line_bytes
            ),
        ))
        .to_line();
        self.push_reply(idx, &line);
    }

    fn reply_invalid_utf8(&mut self, idx: usize) {
        self.shared.dispatcher.note_error();
        let line = Response::Error(WireError::new(
            ErrorKind::Malformed,
            "request line is not valid UTF-8",
        ))
        .to_line();
        self.push_reply(idx, &line);
    }

    /// Answer one request line. `status`/`metrics`/`shutdown` and the
    /// closed-form `plan`/`predict` resolve inline (microseconds);
    /// `audit` goes to the worker pool behind a pending slot.
    fn handle_one(&mut self, idx: usize, text: &str) {
        if text.trim().is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let request = match Request::parse(text) {
            Ok(request) => request,
            Err(e) => {
                shared.dispatcher.note_error();
                self.push_reply(idx, &Response::Error(e).to_line());
                return;
            }
        };
        let started = Instant::now();
        match request {
            Request::Status => {
                let status = shared.status();
                shared.latency.status.record_duration(started.elapsed());
                self.push_reply(idx, &Response::Status(status).to_line());
            }
            Request::Metrics => {
                let reply = shared.metrics();
                shared.latency.metrics.record_duration(started.elapsed());
                self.push_reply(idx, &Response::Metrics(reply).to_line());
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let ack = Response::Shutdown(ShutdownReply {
                    draining: shared.pool.in_flight() as u64,
                });
                self.push_reply(idx, &ack.to_line());
            }
            compute @ (Request::Plan { .. }
            | Request::Predict { .. }
            | Request::Audit { .. }
            | Request::ScenarioPlan { .. }
            | Request::ScenarioPredict { .. }
            | Request::ScenarioAudit { .. }) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    shared.dispatcher.note_error();
                    self.push_reply(
                        idx,
                        &Response::Error(WireError::new(
                            ErrorKind::ShuttingDown,
                            "server is draining; no new work accepted",
                        ))
                        .to_line(),
                    );
                    return;
                }
                if matches!(
                    compute,
                    Request::Audit { .. } | Request::ScenarioAudit { .. }
                ) {
                    self.submit_audit(idx, compute, started);
                } else {
                    let histogram = match compute {
                        Request::Plan { .. } | Request::ScenarioPlan { .. } => &shared.latency.plan,
                        _ => &shared.latency.predict,
                    };
                    if let Some(line) = shared.dispatcher.answer_line(&compute) {
                        // O(1) tier: pre-serialized bytes, zero work.
                        histogram.record_duration(started.elapsed());
                        self.push_reply(idx, line);
                    } else {
                        // Out-of-range dimension: the dispatcher's own
                        // validation produces the structured error.
                        let line = shared.dispatcher.handle(compute).to_line();
                        histogram.record_duration(started.elapsed());
                        self.push_reply(idx, &line);
                    }
                }
            }
        }
    }

    fn submit_audit(&mut self, idx: usize, request: Request, started: Instant) {
        let shared = Arc::clone(&self.shared);
        let (seq, gen) = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            (seq, conn.gen)
        };
        let guard = ReplyGuard {
            tx: self.completions_tx.clone(),
            waker: Arc::clone(&self.waker_tx),
            conn: idx,
            gen,
            seq,
            done: false,
        };
        let job_shared = Arc::clone(&shared);
        let submitted = shared.pool.try_submit(move || {
            guard.complete(job_shared.dispatcher.handle(request).to_line());
        });
        match submitted {
            Ok(()) => {
                let deadline = started + shared.limits.request_timeout;
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.replies.push_back(Slot::Pending {
                        seq,
                        started,
                        deadline,
                    });
                }
            }
            Err(_) => {
                // The rejected job was dropped inside try_submit; its
                // guard sent a completion no pending slot matches, so it
                // is ignored. This request resolves as busy right here.
                shared.dispatcher.note_busy();
                shared.latency.audit.record_duration(started.elapsed());
                self.push_reply(
                    idx,
                    &Response::Error(WireError::new(
                        ErrorKind::Busy,
                        "dispatch queue is full; retry later",
                    ))
                    .to_line(),
                );
            }
        }
    }

    /// Queue a serialized reply, appending straight to the write buffer
    /// when nothing is pending ahead of it (no allocation).
    fn push_reply(&mut self, idx: usize, line: &str) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.replies.is_empty() {
            conn.wbuf.extend_from_slice(line.as_bytes());
            conn.wbuf.push(b'\n');
        } else {
            conn.replies.push_back(Slot::Ready(line.to_owned()));
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(completion) = self.completions_rx.try_recv() {
            self.apply_completion(completion);
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        let shared = Arc::clone(&self.shared);
        let Some(conn) = self.conns.get_mut(completion.conn).and_then(Option::as_mut) else {
            return;
        };
        if conn.gen != completion.gen {
            return;
        }
        // A slot that already timed out was replaced by a Ready timeout
        // line; the late completion is dropped (the run still warmed the
        // cache for the next request).
        let Some(pos) = conn
            .replies
            .iter()
            .position(|slot| matches!(slot, Slot::Pending { seq, .. } if *seq == completion.seq))
        else {
            return;
        };
        let Slot::Pending { started, .. } = &conn.replies[pos] else {
            unreachable!("position() matched a pending slot");
        };
        let elapsed = started.elapsed();
        let line = match completion.line {
            Some(line) => line,
            None => {
                // The job panicked before replying: the pool caught it
                // (pool.job_panics counts it) and the worker survives;
                // this client gets a structured internal error.
                shared.dispatcher.note_error();
                Response::Error(WireError::new(
                    ErrorKind::Internal,
                    "request worker failed before producing a reply; \
                     see the pool.job_panics counter",
                ))
                .to_line()
            }
        };
        shared.latency.audit.record_duration(elapsed);
        conn.replies[pos] = Slot::Ready(line);
    }

    /// Convert pending audits past their deadline into timeout errors.
    /// The underlying run keeps executing and warms the cache.
    fn expire_timeouts(&mut self) {
        let now = Instant::now();
        let shared = Arc::clone(&self.shared);
        let timeout_line = self.timeout_line.clone();
        for conn in self.conns.iter_mut().flatten() {
            for slot in conn.replies.iter_mut() {
                if let Slot::Pending {
                    started, deadline, ..
                } = slot
                {
                    if now >= *deadline {
                        shared.dispatcher.note_timeout();
                        shared.latency.audit.record_duration(started.elapsed());
                        *slot = Slot::Ready(timeout_line.clone());
                    }
                }
            }
        }
    }

    fn flush_all(&mut self) {
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.flush(idx);
            }
        }
    }

    /// Move leading ready replies into the write buffer and write as
    /// much as the socket accepts. Closes the connection when it has
    /// nothing left and the peer is gone (or the daemon is draining).
    fn flush(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        while matches!(conn.replies.front(), Some(Slot::Ready(_))) {
            let Some(Slot::Ready(line)) = conn.replies.pop_front() else {
                unreachable!("front() matched a ready slot");
            };
            conn.wbuf.extend_from_slice(line.as_bytes());
            conn.wbuf.push(b'\n');
        }
        let mut failed = false;
        loop {
            if conn.wpos >= conn.wbuf.len() {
                break;
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
        }
        let done = conn.replies.is_empty() && conn.wbuf.is_empty();
        let closing = conn.closing;
        if failed || (done && (closing || self.draining)) {
            self.close(idx);
        }
    }
}

/// Clamp the configured connection limit to the descriptor headroom the
/// process actually has. Accepting a socket the reactor cannot poll would
/// surface as EMFILE in the accept loop and starve *every* client; a
/// clean `busy` reply to the excess client is strictly better. `None`
/// (unlimited / unreadable rlimit) leaves the configured cap alone.
fn effective_connection_cap(configured: usize, nofile_soft: Option<u64>) -> usize {
    match nofile_soft {
        Some(soft) => {
            let headroom = soft.saturating_sub(RESERVED_FDS).max(1);
            configured.min(usize::try_from(headroom).unwrap_or(usize::MAX))
        }
        None => configured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_cap_respects_fd_headroom() {
        assert_eq!(effective_connection_cap(1024, None), 1024);
        assert_eq!(effective_connection_cap(1024, Some(100_000)), 1024);
        assert_eq!(
            effective_connection_cap(1024, Some(256)),
            256 - RESERVED_FDS as usize
        );
        // Pathological limits never clamp to zero: one connection at a
        // time still beats refusing everyone.
        assert_eq!(effective_connection_cap(1024, Some(4)), 1);
    }

    #[test]
    fn this_process_reports_a_soft_fd_limit() {
        // Linux always has RLIMIT_NOFILE set for a normal process.
        let soft = nofile_soft_limit().expect("soft nofile limit readable");
        assert!(soft >= 64, "implausibly low fd limit: {soft}");
    }
}
