//! Client side: a blocking line-protocol client (TCP or Unix-domain,
//! with request pipelining) and the `bench-serve` load generator.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::Serialize;

use hypersweep_analysis::StrategyKind;

use crate::protocol::{ErrorKind, Request, Response};

/// Schema tag stamped into `BENCH_serve.json`. `v2` added pipelining
/// (`pipeline_depth`), microsecond percentiles, answer-table and
/// per-shard accounting, and the transport label; every `v1` field is
/// preserved with unchanged meaning.
pub const BENCH_SCHEMA: &str = "hypersweep-serve-bench/v2";

/// The client's transport: the daemon serves both from one reactor.
enum ClientStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl ClientStream {
    fn try_clone(&self) -> io::Result<ClientStream> {
        Ok(match self {
            ClientStream::Tcp(s) => ClientStream::Tcp(s.try_clone()?),
            ClientStream::Unix(s) => ClientStream::Unix(s.try_clone()?),
        })
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking client for the line-delimited JSON protocol.
pub struct Client {
    reader: BufReader<ClientStream>,
    writer: ClientStream,
}

impl Client {
    /// Connect to a running daemon over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::over(ClientStream::Tcp(stream))
    }

    /// Connect to a running daemon over its Unix-domain socket
    /// (`serve --uds PATH`).
    pub fn connect_uds(path: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        Self::over(ClientStream::Unix(stream))
    }

    fn over(stream: ClientStream) -> io::Result<Client> {
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw line and return the raw response line (no trailing
    /// newline) — the malformed-input tests speak through this.
    pub fn send_raw(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_reply_line()
    }

    /// Pipeline: send every line in one write, then read one reply per
    /// line. The daemon answers in request order.
    pub fn send_raw_batch<S: AsRef<str>>(&mut self, lines: &[S]) -> io::Result<Vec<String>> {
        let mut batch = String::new();
        for line in lines {
            batch.push_str(line.as_ref());
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        lines.iter().map(|_| self.read_reply_line()).collect()
    }

    fn read_reply_line(&mut self) -> io::Result<String> {
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Send a request and parse the response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let line = self.send_raw(&request.to_line())?;
        Response::parse(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Pipeline a batch of requests (one write, in-order replies).
    pub fn request_batch(&mut self, requests: &[Request]) -> io::Result<Vec<Response>> {
        let lines: Vec<String> = requests.iter().map(Request::to_line).collect();
        self.send_raw_batch(&lines)?
            .iter()
            .map(|line| {
                Response::parse(line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            })
            .collect()
    }
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Daemon TCP address, e.g. `127.0.0.1:7071`.
    pub addr: String,
    /// Connect over this Unix-domain socket instead of TCP.
    pub uds: Option<PathBuf>,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Requests pipelined per write (1 = strict request/reply).
    pub pipeline_depth: usize,
    /// Largest dimension the mixed workload asks for.
    pub max_dim: u32,
}

/// What `bench-serve` measures; serialized to `BENCH_serve.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA`].
    pub schema: String,
    /// Concurrent client connections.
    pub clients: u64,
    /// Requests issued per client.
    pub requests_per_client: u64,
    /// Total requests issued.
    pub total_requests: u64,
    /// Successful (non-error) responses.
    pub ok: u64,
    /// Structured error responses other than `busy`.
    pub errors: u64,
    /// `busy` rejections (backpressure working as designed; accounted at
    /// the shared worker pool, upstream of the cache shards).
    pub busy: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub elapsed_ms: f64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds. At `pipeline_depth > 1`
    /// latencies are amortized: batch wall time / batch size.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds (same amortization).
    pub p99_ms: f64,
    /// Run-cache hit rate observed by the daemon after the run.
    pub cache_hit_rate: f64,
    /// `"tcp"` or `"uds"`.
    pub transport: String,
    /// Requests pipelined per write.
    pub pipeline_depth: u64,
    /// Median request latency in microseconds (the closed-form tier
    /// resolves far below a millisecond).
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// `plan`/`predict` replies served from the precomputed answer
    /// table (`answers.table_hits`), measured across the whole run.
    pub table_hits: u64,
    /// `table_hits` over total requests issued.
    pub table_hit_rate: f64,
    /// Run-cache shards behind the daemon.
    pub cache_shards: u64,
    /// Audits routed to each shard (`cache.shard<i>.requests`), index =
    /// shard. Empty when the daemon's telemetry is disabled.
    pub shard_requests: Vec<u64>,
}

/// The deterministic mixed workload: request `seq` of any client. Cycles
/// request types (`plan`, `predict`, `audit`, `status`), strategies, and
/// dimensions, so every client issues the same stream — which is exactly
/// what makes concurrent-vs-single-client byte-comparison meaningful.
pub fn mixed_request(seq: usize, max_dim: u32) -> Request {
    const CLOSED_FORM: [StrategyKind; 6] = [
        StrategyKind::Clean,
        StrategyKind::Visibility,
        StrategyKind::Cloning,
        StrategyKind::Synchronous,
        StrategyKind::CleanThroughRoot,
        StrategyKind::CloningSmallestFirst,
    ];
    const AUDITABLE: [StrategyKind; 8] = crate::protocol::WIRE_STRATEGIES;
    let lo = 4u32.min(max_dim.max(1));
    let hi = max_dim.min(8).max(lo);
    let dim = lo + (seq / 4) as u32 % (hi - lo + 1);
    match seq % 4 {
        0 => Request::Plan {
            strategy: CLOSED_FORM[(seq / 4) % CLOSED_FORM.len()],
            dim,
        },
        1 => Request::Predict {
            strategy: CLOSED_FORM[(seq / 4) % CLOSED_FORM.len()],
            dim,
        },
        2 => Request::Audit {
            strategy: AUDITABLE[(seq / 4) % AUDITABLE.len()],
            dim,
        },
        _ => Request::Status,
    }
}

fn bench_connect(cfg: &BenchConfig) -> io::Result<Client> {
    match &cfg.uds {
        Some(path) => Client::connect_uds(path),
        None => Client::connect(&cfg.addr),
    }
}

/// Run the load generator against a live daemon and aggregate latencies.
pub fn run_bench(cfg: &BenchConfig) -> io::Result<BenchReport> {
    let clients = cfg.clients.max(1);
    let requests = cfg.requests.max(1);
    let depth = cfg.pipeline_depth.max(1);

    // Counter baselines, so a long-lived daemon reports this run's table
    // hits rather than its lifetime total.
    let mut probe = bench_connect(cfg)?;
    let hits_before = probe_metrics(&mut probe)?.0;

    let started = Instant::now();
    let mut per_client: Vec<io::Result<ClientTally>> = Vec::with_capacity(clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| client_worker(cfg, requests, depth)))
            .collect();
        for handle in handles {
            per_client.push(handle.join().expect("bench client panicked"));
        }
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * requests);
    let (mut ok, mut errors, mut busy) = (0u64, 0u64, 0u64);
    for tally in per_client {
        let tally = tally?;
        ok += tally.ok;
        errors += tally.errors;
        busy += tally.busy;
        latencies.extend(tally.latencies);
    }
    latencies.sort();
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[rank].as_secs_f64() * 1e3
    };

    // Follow-up probes read the daemon's counters after the run.
    let (hits_after, shard_requests) = probe_metrics(&mut probe)?;
    let (cache_hit_rate, cache_shards) = match probe.request(&Request::Status)? {
        Response::Status(status) => {
            let total = status.cache.hits + status.cache.misses;
            let rate = if total == 0 {
                0.0
            } else {
                status.cache.hits as f64 / total as f64
            };
            (rate, status.cache.shards)
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("status probe got a {} response", other.tag()),
            ))
        }
    };

    let total_requests = (clients * requests) as u64;
    let table_hits = hits_after.saturating_sub(hits_before);
    let p50_ms = percentile(0.50);
    let p99_ms = percentile(0.99);
    Ok(BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        clients: clients as u64,
        requests_per_client: requests as u64,
        total_requests,
        ok,
        errors,
        busy,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_rps: total_requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms,
        p99_ms,
        cache_hit_rate,
        transport: if cfg.uds.is_some() { "uds" } else { "tcp" }.to_string(),
        pipeline_depth: depth as u64,
        p50_us: p50_ms * 1e3,
        p99_us: p99_ms * 1e3,
        table_hits,
        table_hit_rate: table_hits as f64 / total_requests as f64,
        cache_shards,
        shard_requests,
    })
}

/// Read `(answers.table_hits, per-shard request counts)` from a
/// `metrics` reply. Both default to empty when telemetry is off.
fn probe_metrics(probe: &mut Client) -> io::Result<(u64, Vec<u64>)> {
    let reply = match probe.request(&Request::Metrics)? {
        Response::Metrics(reply) => reply,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("metrics probe got a {} response", other.tag()),
            ))
        }
    };
    let table_hits = reply.series.counter("answers.table_hits").unwrap_or(0);
    let mut shard_requests = Vec::new();
    while let Some(count) = reply
        .series
        .counter(&format!("cache.shard{}.requests", shard_requests.len()))
    {
        shard_requests.push(count);
    }
    Ok((table_hits, shard_requests))
}

struct ClientTally {
    ok: u64,
    errors: u64,
    busy: u64,
    latencies: Vec<Duration>,
}

fn client_worker(cfg: &BenchConfig, requests: usize, depth: usize) -> io::Result<ClientTally> {
    let mut client = bench_connect(cfg)?;
    let mut tally = ClientTally {
        ok: 0,
        errors: 0,
        busy: 0,
        latencies: Vec::with_capacity(requests),
    };
    let mut seq = 0;
    while seq < requests {
        let batch: Vec<Request> = (seq..requests.min(seq + depth))
            .map(|s| mixed_request(s, cfg.max_dim))
            .collect();
        seq += batch.len();
        let sent = Instant::now();
        let responses = client.request_batch(&batch)?;
        // Amortized per-request latency: the batch round trip divided by
        // its size (individual in-batch timings are not observable from
        // one flush).
        let each = sent.elapsed() / batch.len() as u32;
        for response in responses {
            tally.latencies.push(each);
            match response {
                Response::Error(e) if e.kind == ErrorKind::Busy => tally.busy += 1,
                Response::Error(_) => tally.errors += 1,
                _ => tally.ok += 1,
            }
        }
    }
    Ok(tally)
}

impl BenchReport {
    /// Pretty JSON for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench reports serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_is_deterministic_and_varied() {
        let a: Vec<Request> = (0..64).map(|s| mixed_request(s, 8)).collect();
        let b: Vec<Request> = (0..64).map(|s| mixed_request(s, 8)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|r| matches!(r, Request::Plan { .. })));
        assert!(a.iter().any(|r| matches!(r, Request::Predict { .. })));
        assert!(a.iter().any(|r| matches!(r, Request::Audit { .. })));
        assert!(a.iter().any(|r| matches!(r, Request::Status)));
        // Every dimension stays within the requested bound.
        for r in &a {
            if let Request::Plan { dim, .. }
            | Request::Predict { dim, .. }
            | Request::Audit { dim, .. } = r
            {
                assert!((1..=8).contains(dim));
            }
        }
    }

    #[test]
    fn bench_report_serializes_with_schema() {
        let report = BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            clients: 4,
            requests_per_client: 32,
            total_requests: 128,
            ok: 120,
            errors: 0,
            busy: 8,
            elapsed_ms: 10.0,
            throughput_rps: 12_800.0,
            p50_ms: 0.05,
            p99_ms: 1.5,
            cache_hit_rate: 0.9,
            transport: "tcp".to_string(),
            pipeline_depth: 8,
            p50_us: 50.0,
            p99_us: 1500.0,
            table_hits: 64,
            table_hit_rate: 0.5,
            cache_shards: 8,
            shard_requests: vec![4, 4, 4, 4, 4, 4, 4, 4],
        };
        let json = report.to_json();
        assert!(json.contains("hypersweep-serve-bench/v2"));
        // Every v1 field survives the schema bump alongside the new ones.
        for field in [
            "clients",
            "requests_per_client",
            "total_requests",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "cache_hit_rate",
            "pipeline_depth",
            "table_hit_rate",
            "cache_shards",
            "shard_requests",
            "transport",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }
}
