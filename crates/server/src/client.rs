//! Client side: a blocking line-protocol client and the `bench-serve`
//! load generator.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use serde::Serialize;

use hypersweep_analysis::StrategyKind;

use crate::protocol::{ErrorKind, Request, Response};

/// Schema tag stamped into `BENCH_serve.json`.
pub const BENCH_SCHEMA: &str = "hypersweep-serve-bench/v1";

/// A blocking client for the line-delimited JSON protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw line and return the raw response line (no trailing
    /// newline) — the malformed-input tests speak through this.
    pub fn send_raw(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Send a request and parse the response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let line = self.send_raw(&request.to_line())?;
        Response::parse(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Daemon address, e.g. `127.0.0.1:7071`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Largest dimension the mixed workload asks for.
    pub max_dim: u32,
}

/// What `bench-serve` measures; serialized to `BENCH_serve.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA`].
    pub schema: String,
    /// Concurrent client connections.
    pub clients: u64,
    /// Requests issued per client.
    pub requests_per_client: u64,
    /// Total requests issued.
    pub total_requests: u64,
    /// Successful (non-error) responses.
    pub ok: u64,
    /// Structured error responses other than `busy`.
    pub errors: u64,
    /// `busy` rejections (backpressure working as designed).
    pub busy: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub elapsed_ms: f64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Run-cache hit rate observed by the daemon after the run.
    pub cache_hit_rate: f64,
}

/// The deterministic mixed workload: request `seq` of any client. Cycles
/// request types (`plan`, `predict`, `audit`, `status`), strategies, and
/// dimensions, so every client issues the same stream — which is exactly
/// what makes concurrent-vs-single-client byte-comparison meaningful.
pub fn mixed_request(seq: usize, max_dim: u32) -> Request {
    const CLOSED_FORM: [StrategyKind; 6] = [
        StrategyKind::Clean,
        StrategyKind::Visibility,
        StrategyKind::Cloning,
        StrategyKind::Synchronous,
        StrategyKind::CleanThroughRoot,
        StrategyKind::CloningSmallestFirst,
    ];
    const AUDITABLE: [StrategyKind; 8] = crate::protocol::WIRE_STRATEGIES;
    let lo = 4u32.min(max_dim.max(1));
    let hi = max_dim.min(8).max(lo);
    let dim = lo + (seq / 4) as u32 % (hi - lo + 1);
    match seq % 4 {
        0 => Request::Plan {
            strategy: CLOSED_FORM[(seq / 4) % CLOSED_FORM.len()],
            dim,
        },
        1 => Request::Predict {
            strategy: CLOSED_FORM[(seq / 4) % CLOSED_FORM.len()],
            dim,
        },
        2 => Request::Audit {
            strategy: AUDITABLE[(seq / 4) % AUDITABLE.len()],
            dim,
        },
        _ => Request::Status,
    }
}

/// Run the load generator against a live daemon and aggregate latencies.
pub fn run_bench(cfg: &BenchConfig) -> io::Result<BenchReport> {
    let clients = cfg.clients.max(1);
    let requests = cfg.requests.max(1);
    let started = Instant::now();
    let mut per_client: Vec<io::Result<ClientTally>> = Vec::with_capacity(clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| client_worker(cfg, requests)))
            .collect();
        for handle in handles {
            per_client.push(handle.join().expect("bench client panicked"));
        }
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * requests);
    let (mut ok, mut errors, mut busy) = (0u64, 0u64, 0u64);
    for tally in per_client {
        let tally = tally?;
        ok += tally.ok;
        errors += tally.errors;
        busy += tally.busy;
        latencies.extend(tally.latencies);
    }
    latencies.sort();
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[rank].as_secs_f64() * 1e3
    };

    // One follow-up status request reads the daemon's cache counters.
    let mut probe = Client::connect(&cfg.addr)?;
    let cache_hit_rate = match probe.request(&Request::Status)? {
        Response::Status(status) => {
            let total = status.cache.hits + status.cache.misses;
            if total == 0 {
                0.0
            } else {
                status.cache.hits as f64 / total as f64
            }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("status probe got a {} response", other.tag()),
            ))
        }
    };

    let total_requests = (clients * requests) as u64;
    Ok(BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        clients: clients as u64,
        requests_per_client: requests as u64,
        total_requests,
        ok,
        errors,
        busy,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_rps: total_requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
        cache_hit_rate,
    })
}

struct ClientTally {
    ok: u64,
    errors: u64,
    busy: u64,
    latencies: Vec<Duration>,
}

fn client_worker(cfg: &BenchConfig, requests: usize) -> io::Result<ClientTally> {
    let mut client = Client::connect(&cfg.addr)?;
    let mut tally = ClientTally {
        ok: 0,
        errors: 0,
        busy: 0,
        latencies: Vec::with_capacity(requests),
    };
    for seq in 0..requests {
        let request = mixed_request(seq, cfg.max_dim);
        let sent = Instant::now();
        let response = client.request(&request)?;
        tally.latencies.push(sent.elapsed());
        match response {
            Response::Error(e) if e.kind == ErrorKind::Busy => tally.busy += 1,
            Response::Error(_) => tally.errors += 1,
            _ => tally.ok += 1,
        }
    }
    Ok(tally)
}

impl BenchReport {
    /// Pretty JSON for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench reports serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_is_deterministic_and_varied() {
        let a: Vec<Request> = (0..64).map(|s| mixed_request(s, 8)).collect();
        let b: Vec<Request> = (0..64).map(|s| mixed_request(s, 8)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|r| matches!(r, Request::Plan { .. })));
        assert!(a.iter().any(|r| matches!(r, Request::Predict { .. })));
        assert!(a.iter().any(|r| matches!(r, Request::Audit { .. })));
        assert!(a.iter().any(|r| matches!(r, Request::Status)));
        // Every dimension stays within the requested bound.
        for r in &a {
            if let Request::Plan { dim, .. }
            | Request::Predict { dim, .. }
            | Request::Audit { dim, .. } = r
            {
                assert!((1..=8).contains(dim));
            }
        }
    }

    #[test]
    fn bench_report_serializes_with_schema() {
        let report = BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            clients: 4,
            requests_per_client: 32,
            total_requests: 128,
            ok: 120,
            errors: 0,
            busy: 8,
            elapsed_ms: 10.0,
            throughput_rps: 12_800.0,
            p50_ms: 0.05,
            p99_ms: 1.5,
            cache_hit_rate: 0.9,
        };
        let json = report.to_json();
        assert!(json.contains("hypersweep-serve-bench/v1"));
        assert!(json.contains("throughput_rps"));
    }
}
