//! A minimal readiness poll over raw file descriptors, std-only.
//!
//! The reactor needs one primitive the standard library does not expose:
//! "sleep until any of these sockets is readable or writable, or a
//! timeout elapses". `poll(2)` is exactly that, is POSIX, and needs no
//! libc crate — the symbol is declared directly, the same way the
//! daemon's SIGINT handler declares `signal(2)`. Everything above this
//! module speaks safe Rust over [`PollFd`] slices.

use std::io;

/// Readable readiness (or a pending accept on a listener).
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// The descriptor was not open (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled in by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the descriptor is readable (or errored/hung up, which a
    /// read will surface as `Ok(0)`/`Err` — both handled by the reader).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the descriptor is writable (or errored, which the next
    /// write surfaces).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[allow(unsafe_code)]
mod sys {
    use super::PollFd;

    /// `struct rlimit` on 64-bit Linux: two `rlim_t` (u64) fields.
    #[repr(C)]
    pub(super) struct RLimit {
        pub(super) cur: u64,
        pub(super) max: u64,
    }

    /// Linux's `RLIMIT_NOFILE`.
    const RLIMIT_NOFILE: std::ffi::c_int = 7;
    /// Linux's `RLIM_INFINITY`.
    const RLIM_INFINITY: u64 = u64::MAX;

    extern "C" {
        pub(super) fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;

        fn getrlimit(resource: std::ffi::c_int, rlim: *mut RLimit) -> std::ffi::c_int;
    }

    /// Safe wrapper: the slice is a valid `pollfd` array for the call's
    /// duration, which is all `poll(2)` requires.
    pub(super) fn poll_slice(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) }
    }

    /// The soft `RLIMIT_NOFILE` bound, or `None` when unlimited or
    /// unreadable.
    pub(super) fn nofile_soft() -> Option<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: getrlimit(2) writes into the provided struct and
        // nothing else.
        let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
        (rc == 0 && lim.cur != RLIM_INFINITY).then_some(lim.cur)
    }
}

/// The process's soft open-file-descriptor limit (`ulimit -n`), or `None`
/// if unlimited or unreadable. The reactor subtracts its reserved
/// descriptors from this to cap concurrent connections — accepting a
/// socket the process cannot poll would take the whole daemon down with
/// EMFILE instead of busying one client.
pub fn nofile_soft_limit() -> Option<u64> {
    sys::nofile_soft()
}

/// Block until at least one descriptor is ready or `timeout_ms` elapses
/// (`-1` = no timeout). Returns the number of ready descriptors (`0` on
/// timeout); an `EINTR` wakeup reports as `Ok(0)` so callers simply
/// re-evaluate their state (the daemon's signal handler only flips an
/// atomic the caller polls anyway).
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let rc = sys::poll_slice(fds, timeout_ms);
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn timeout_reports_zero_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let fd = {
            use std::os::fd::AsRawFd;
            accepted.as_raw_fd()
        };
        let mut fds = [PollFd::new(fd, POLLIN)];
        assert_eq!(poll(&mut fds, 10).unwrap(), 0, "nothing written yet");
        assert!(!fds[0].readable());
        drop(stream);
    }

    #[test]
    fn written_bytes_wake_the_poll() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        stream.write_all(b"x").unwrap();
        stream.flush().unwrap();
        let fd = {
            use std::os::fd::AsRawFd;
            accepted.as_raw_fd()
        };
        let mut fds = [PollFd::new(fd, POLLIN | POLLOUT)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        assert!(fds[0].writable(), "a fresh socket has send-buffer space");
    }
}
