//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every request and every response is one JSON object on one line,
//! tagged by a `"type"` field. Malformed input never drops the
//! connection — it produces a structured `{"type":"error",...}` response
//! with a stable machine-readable `kind`, and the connection keeps
//! serving subsequent lines.
//!
//! Requests:
//!
//! ```json
//! {"type":"plan","strategy":"clean","dim":6}
//! {"type":"predict","strategy":"visibility","dim":8}
//! {"type":"audit","strategy":"cloning","dim":10}
//! {"type":"status"}
//! {"type":"metrics"}
//! {"type":"shutdown"}
//! ```
//!
//! Response envelopes reuse the request tag (`{"type":"plan",...}`), with
//! `{"type":"error","kind":...,"message":...}` for every failure. The
//! payload field order is fixed by struct declaration order, so equal
//! requests always produce byte-identical response lines — the property
//! the determinism suite pins down.

use serde::{Deserialize, Serialize, Value};

use hypersweep_analysis::StrategyKind;
use hypersweep_scenario::ScenarioId;
use hypersweep_sim::TraceSummary;
use hypersweep_telemetry::MetricsSnapshot;
use hypersweep_topology::GridInstance;

/// Every strategy the server can plan, predict, or audit, in wire order.
pub const WIRE_STRATEGIES: [StrategyKind; 8] = [
    StrategyKind::Clean,
    StrategyKind::CleanThroughRoot,
    StrategyKind::Visibility,
    StrategyKind::Cloning,
    StrategyKind::CloningSmallestFirst,
    StrategyKind::Synchronous,
    StrategyKind::Flood,
    StrategyKind::Frontier,
];

/// Parse a wire strategy label (the same labels `StrategyKind::label`
/// prints, e.g. `clean`, `visibility`, `cloning-smallest-first`).
pub fn parse_strategy(label: &str) -> Option<StrategyKind> {
    WIRE_STRATEGIES.into_iter().find(|s| s.label() == label)
}

/// Machine-readable error category, stable across releases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a valid JSON object.
    Malformed,
    /// The `type` field was missing or not a known request type.
    UnknownRequest,
    /// The `strategy` field named no known strategy.
    UnknownStrategy,
    /// The `dim` field was missing, zero, or above the server's limit.
    BadDimension,
    /// The request line exceeded the size limit.
    Oversized,
    /// The request did not complete within the per-request timeout.
    Timeout,
    /// The dispatch queue is at capacity; retry later.
    Busy,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The request is structurally valid but unsupported (e.g. a plan for
    /// a baseline strategy with no closed-form schedule).
    Unsupported,
    /// The server failed internally while computing the reply (e.g. the
    /// dispatched job panicked); the request itself was well-formed.
    Internal,
    /// The `scenario` field named no registered scenario.
    UnknownScenario,
    /// The `instance` field was not a valid instance spelling for the
    /// requested scenario.
    BadInstance,
}

impl ErrorKind {
    /// The stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::UnknownRequest => "unknown_request",
            ErrorKind::UnknownStrategy => "unknown_strategy",
            ErrorKind::BadDimension => "bad_dimension",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Busy => "busy",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Internal => "internal",
            ErrorKind::UnknownScenario => "unknown_scenario",
            ErrorKind::BadInstance => "bad_instance",
        }
    }

    /// Parse a wire label back into a kind.
    pub fn parse(label: &str) -> Option<Self> {
        [
            ErrorKind::Malformed,
            ErrorKind::UnknownRequest,
            ErrorKind::UnknownStrategy,
            ErrorKind::BadDimension,
            ErrorKind::Oversized,
            ErrorKind::Timeout,
            ErrorKind::Busy,
            ErrorKind::ShuttingDown,
            ErrorKind::Unsupported,
            ErrorKind::Internal,
            ErrorKind::UnknownScenario,
            ErrorKind::BadInstance,
        ]
        .into_iter()
        .find(|k| k.label() == label)
    }
}

/// A structured protocol error: category plus human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Build an error of `kind` with the given detail.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }
}

/// A parsed client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// The per-phase cleaning schedule for a strategy on `H_dim`.
    Plan {
        /// Which strategy.
        strategy: StrategyKind,
        /// The hypercube dimension.
        dim: u32,
    },
    /// The paper's closed-form agent/move/time counts.
    Predict {
        /// Which strategy.
        strategy: StrategyKind,
        /// The hypercube dimension.
        dim: u32,
    },
    /// Stream the strategy's trace through the packed contamination
    /// monitor and return the verdict plus metrics.
    Audit {
        /// Which strategy.
        strategy: StrategyKind,
        /// The hypercube dimension.
        dim: u32,
    },
    /// Daemon health: uptime, cache statistics, in-flight requests.
    Status,
    /// The full telemetry snapshot: pool, cache, sink, and per-request
    /// series as an ordered name → value object.
    Metrics,
    /// Ask the daemon to drain in-flight work and exit.
    Shutdown,
    /// A `plan` for a registered non-hypercube scenario (wire tag is
    /// still `plan`, selected by the `scenario` field). `side` rides the
    /// wire in the `dim` field.
    ScenarioPlan {
        /// Which registered scenario (never `Hypercube` off the wire).
        scenario: ScenarioId,
        /// Grid side length (the wire's `dim` field).
        side: u32,
        /// Instance generator.
        instance: GridInstance,
    },
    /// A `predict` for a registered scenario. Scenarios without a full
    /// closed form answer this with a structured `unsupported` error.
    ScenarioPredict {
        /// Which registered scenario.
        scenario: ScenarioId,
        /// Grid side length.
        side: u32,
        /// Instance generator.
        instance: GridInstance,
    },
    /// An `audit` for a registered scenario: run the reference schedule
    /// under the step oracle and report the verdict.
    ScenarioAudit {
        /// Which registered scenario.
        scenario: ScenarioId,
        /// Grid side length.
        side: u32,
        /// Instance generator.
        instance: GridInstance,
    },
}

impl Request {
    /// The wire tag of this request.
    pub fn tag(&self) -> &'static str {
        match self {
            Request::Plan { .. } | Request::ScenarioPlan { .. } => "plan",
            Request::Predict { .. } | Request::ScenarioPredict { .. } => "predict",
            Request::Audit { .. } | Request::ScenarioAudit { .. } => "audit",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![("type".to_string(), Value::String(self.tag().to_string()))];
        match self {
            Request::Plan { strategy, dim }
            | Request::Predict { strategy, dim }
            | Request::Audit { strategy, dim } => {
                fields.push((
                    "strategy".to_string(),
                    Value::String(strategy.label().to_string()),
                ));
                fields.push(("dim".to_string(), dim.serialize_value()));
            }
            Request::ScenarioPlan {
                scenario,
                side,
                instance,
            }
            | Request::ScenarioPredict {
                scenario,
                side,
                instance,
            }
            | Request::ScenarioAudit {
                scenario,
                side,
                instance,
            } => {
                fields.push((
                    "scenario".to_string(),
                    Value::String(scenario.label().to_string()),
                ));
                fields.push(("dim".to_string(), side.serialize_value()));
                fields.push(("instance".to_string(), Value::String(instance.label())));
            }
            Request::Status | Request::Metrics | Request::Shutdown => {}
        }
        serde_json::to_string(&Value::Object(fields)).expect("requests serialize")
    }

    /// Parse one wire line. Errors are structured, never connection-fatal.
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let value = serde_json::from_str_value(line)
            .map_err(|e| WireError::new(ErrorKind::Malformed, format!("invalid JSON: {e}")))?;
        let fields = value
            .as_object()
            .ok_or_else(|| WireError::new(ErrorKind::Malformed, "request must be a JSON object"))?;
        let tag = serde::get_field(fields, "type").as_str().ok_or_else(|| {
            WireError::new(
                ErrorKind::UnknownRequest,
                "missing request 'type' (expected plan|predict|audit|status|metrics|shutdown)",
            )
        })?;
        match tag {
            "plan" | "predict" | "audit" => {
                // An explicit non-hypercube `scenario` field routes to the
                // registry; absent (or `"hypercube"`) keeps the classic
                // strategy/dim form, byte-compatible with every old client.
                let scenario_field = serde::get_field(fields, "scenario");
                if !matches!(scenario_field, Value::Null) {
                    let label = scenario_field.as_str().ok_or_else(|| {
                        WireError::new(ErrorKind::UnknownScenario, "'scenario' must be a string")
                    })?;
                    let scenario = ScenarioId::parse(label).ok_or_else(|| {
                        let known: Vec<&str> = ScenarioId::ALL.iter().map(|s| s.label()).collect();
                        WireError::new(
                            ErrorKind::UnknownScenario,
                            format!("unknown scenario '{label}' (known: {})", known.join(", ")),
                        )
                    })?;
                    if let Some(resolved) = hypersweep_scenario::resolve(scenario) {
                        let side = u32::deserialize_value(serde::get_field(fields, "dim"))
                            .map_err(|_| {
                                WireError::new(
                                    ErrorKind::BadDimension,
                                    format!("'{tag}' requires an integer 'dim' field"),
                                )
                            })?;
                        let instance_field = serde::get_field(fields, "instance");
                        let instance = if matches!(instance_field, Value::Null) {
                            resolved.default_instance()
                        } else {
                            let spelled = instance_field.as_str().ok_or_else(|| {
                                WireError::new(
                                    ErrorKind::BadInstance,
                                    "'instance' must be a string",
                                )
                            })?;
                            GridInstance::parse(spelled).ok_or_else(|| {
                                WireError::new(
                                    ErrorKind::BadInstance,
                                    format!(
                                        "unknown instance '{spelled}' \
                                         (expected full|holes:<seed>|corridor)"
                                    ),
                                )
                            })?
                        };
                        return Ok(match tag {
                            "plan" => Request::ScenarioPlan {
                                scenario,
                                side,
                                instance,
                            },
                            "predict" => Request::ScenarioPredict {
                                scenario,
                                side,
                                instance,
                            },
                            _ => Request::ScenarioAudit {
                                scenario,
                                side,
                                instance,
                            },
                        });
                    }
                    // `"scenario":"hypercube"` is the explicit spelling of
                    // the default: fall through to the classic form.
                }
                let strategy_label =
                    serde::get_field(fields, "strategy")
                        .as_str()
                        .ok_or_else(|| {
                            WireError::new(
                                ErrorKind::UnknownStrategy,
                                format!("'{tag}' requires a string 'strategy' field"),
                            )
                        })?;
                let strategy = parse_strategy(strategy_label).ok_or_else(|| {
                    let known: Vec<&str> = WIRE_STRATEGIES.iter().map(|s| s.label()).collect();
                    WireError::new(
                        ErrorKind::UnknownStrategy,
                        format!(
                            "unknown strategy '{strategy_label}' (known: {})",
                            known.join(", ")
                        ),
                    )
                })?;
                let dim =
                    u32::deserialize_value(serde::get_field(fields, "dim")).map_err(|_| {
                        WireError::new(
                            ErrorKind::BadDimension,
                            format!("'{tag}' requires an integer 'dim' field"),
                        )
                    })?;
                Ok(match tag {
                    "plan" => Request::Plan { strategy, dim },
                    "predict" => Request::Predict { strategy, dim },
                    _ => Request::Audit { strategy, dim },
                })
            }
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError::new(
                ErrorKind::UnknownRequest,
                format!(
                    "unknown request type '{other}' \
                     (expected plan|predict|audit|status|metrics|shutdown)"
                ),
            )),
        }
    }
}

/// One phase of a cleaning schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// Phase index (CLEAN's level being vacated, or a visibility wave).
    pub phase: u32,
    /// Agents engaged during this phase.
    pub active_agents: u64,
    /// Nodes decontaminated by this phase.
    pub nodes_cleaned: u64,
}

/// Reply to a `plan` request: the closed-form schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanReply {
    /// Strategy label.
    pub strategy: String,
    /// Dimension planned.
    pub dim: u32,
    /// Nodes in `H_dim`.
    pub nodes: u64,
    /// Exact team size.
    pub team: u64,
    /// Exact total worker moves over the whole schedule.
    pub total_moves: u64,
    /// Ideal time in synchronous rounds, when the strategy has one.
    pub ideal_time: Option<u64>,
    /// The per-phase schedule, in execution order.
    pub phases: Vec<PhasePlan>,
}

/// Reply to a `predict` request: the paper's exact theorem counts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictReply {
    /// Strategy label.
    pub strategy: String,
    /// Dimension predicted.
    pub dim: u32,
    /// Nodes in `H_dim`.
    pub nodes: u64,
    /// Exact agent count (Theorem 2 / Theorem 5 / §5).
    pub agents: u64,
    /// Exact worker moves (Theorem 3 / Theorem 8 / §5).
    pub worker_moves: u64,
    /// Upper bound on synchronizer moves (CLEAN only).
    pub sync_moves_upper: Option<u64>,
    /// Ideal time in rounds (Theorem 4 / Theorem 7), when defined.
    pub ideal_time: Option<u64>,
}

/// Reply to an `audit` request: the monitor's verdict over the streamed
/// trace, plus measured metrics and the trace digest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReply {
    /// Strategy label.
    pub strategy: String,
    /// Dimension audited.
    pub dim: u32,
    /// No decontaminated node was ever recontaminated.
    pub monotone: bool,
    /// The clean region stayed connected (with the homebase) throughout.
    pub contiguous: bool,
    /// Every node ended clean.
    pub all_clean: bool,
    /// The tracked intruder ended captured (`null` if none was tracked).
    pub captured: Option<bool>,
    /// Violations detected.
    pub violations: u64,
    /// Measured team size.
    pub team_size: u64,
    /// Measured worker moves.
    pub worker_moves: u64,
    /// Measured total moves (workers + synchronizer).
    pub total_moves: u64,
    /// Digest of the streamed trace (per-kind event counts).
    pub trace: TraceSummary,
}

/// Request counters served since startup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServedCounts {
    /// Successful `plan` replies.
    pub plan: u64,
    /// Successful `predict` replies.
    pub predict: u64,
    /// Successful `audit` replies.
    pub audit: u64,
    /// `status` replies.
    pub status: u64,
    /// `metrics` replies.
    pub metrics: u64,
    /// Structured error replies (malformed, unknown, bad dimension, …).
    pub errors: u64,
    /// `busy` rejections under backpressure.
    pub busy: u64,
    /// Requests that hit the per-request timeout.
    pub timeouts: u64,
}

/// Run-cache statistics as exposed by `status`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests served from a cached outcome.
    pub hits: u64,
    /// Requests that executed a run.
    pub misses: u64,
    /// Outcomes dropped by the LRU bound.
    pub evictions: u64,
    /// Outcomes currently resident.
    pub entries: u64,
    /// The LRU bound (`null` = unbounded).
    pub capacity: Option<u64>,
    /// Hash-partitioned shards behind these aggregates.
    pub shards: u64,
}

/// Reply to a `status` request.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReply {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// The daemon's build version (the crate version it was built from).
    pub version: String,
    /// Requests queued or executing right now.
    pub in_flight: u64,
    /// Worker threads serving the dispatch pool.
    pub workers: u64,
    /// Per-request dimension cap.
    pub max_dim: u32,
    /// Request counters since startup.
    pub served: ServedCounts,
    /// Run-cache statistics.
    pub cache: CacheStats,
}

/// Reply to a `metrics` request: the daemon's full telemetry snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// The daemon's build version.
    pub version: String,
    /// Whether telemetry recording is enabled (`false` ⇒ `series` only
    /// carries the cache's always-on accounting, if anything).
    pub enabled: bool,
    /// Every metric, name-sorted: `{"name": {"type": "counter", ...}}`.
    pub series: MetricsSnapshot,
}

/// Reply to a `shutdown` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShutdownReply {
    /// Requests still in flight that the daemon will drain before exit.
    pub draining: u64,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Schedule reply.
    Plan(PlanReply),
    /// Prediction reply.
    Predict(PredictReply),
    /// Audit reply.
    Audit(AuditReply),
    /// Status reply.
    Status(StatusReply),
    /// Telemetry snapshot reply.
    Metrics(MetricsReply),
    /// Shutdown acknowledgement.
    Shutdown(ShutdownReply),
    /// Structured failure.
    Error(WireError),
}

impl Response {
    /// The wire tag of this response.
    pub fn tag(&self) -> &'static str {
        match self {
            Response::Plan(_) => "plan",
            Response::Predict(_) => "predict",
            Response::Audit(_) => "audit",
            Response::Status(_) => "status",
            Response::Metrics(_) => "metrics",
            Response::Shutdown(_) => "shutdown",
            Response::Error(_) => "error",
        }
    }

    /// Whether this is a successful (non-error) reply.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Error(_))
    }

    /// Serialize to one wire line (no trailing newline). Field order is
    /// fixed, so equal responses are byte-identical.
    pub fn to_line(&self) -> String {
        let payload = match self {
            Response::Plan(r) => r.serialize_value(),
            Response::Predict(r) => r.serialize_value(),
            Response::Audit(r) => r.serialize_value(),
            Response::Status(r) => r.serialize_value(),
            Response::Metrics(r) => r.serialize_value(),
            Response::Shutdown(r) => r.serialize_value(),
            Response::Error(e) => Value::Object(vec![
                (
                    "kind".to_string(),
                    Value::String(e.kind.label().to_string()),
                ),
                ("message".to_string(), Value::String(e.message.clone())),
            ]),
        };
        let mut fields = vec![("type".to_string(), Value::String(self.tag().to_string()))];
        match payload {
            Value::Object(rest) => fields.extend(rest),
            other => fields.push(("payload".to_string(), other)),
        }
        serde_json::to_string(&Value::Object(fields)).expect("responses serialize")
    }

    /// Parse one wire line (the client side).
    pub fn parse(line: &str) -> Result<Response, String> {
        let value = serde_json::from_str_value(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let fields = value
            .as_object()
            .ok_or_else(|| "response must be a JSON object".to_string())?;
        let tag = serde::get_field(fields, "type")
            .as_str()
            .ok_or_else(|| "missing response 'type'".to_string())?
            .to_string();
        let parse_err = |e: serde::Error| format!("bad '{tag}' response: {e}");
        match tag.as_str() {
            "plan" => Ok(Response::Plan(
                PlanReply::deserialize_value(&value).map_err(parse_err)?,
            )),
            "predict" => Ok(Response::Predict(
                PredictReply::deserialize_value(&value).map_err(parse_err)?,
            )),
            "audit" => Ok(Response::Audit(
                AuditReply::deserialize_value(&value).map_err(parse_err)?,
            )),
            "status" => Ok(Response::Status(
                StatusReply::deserialize_value(&value).map_err(parse_err)?,
            )),
            "metrics" => Ok(Response::Metrics(
                MetricsReply::deserialize_value(&value).map_err(parse_err)?,
            )),
            "shutdown" => Ok(Response::Shutdown(
                ShutdownReply::deserialize_value(&value).map_err(parse_err)?,
            )),
            "error" => {
                let kind_label = serde::get_field(fields, "kind")
                    .as_str()
                    .ok_or_else(|| "error response missing 'kind'".to_string())?;
                let kind = ErrorKind::parse(kind_label)
                    .ok_or_else(|| format!("unknown error kind '{kind_label}'"))?;
                let message = serde::get_field(fields, "message")
                    .as_str()
                    .unwrap_or_default()
                    .to_string();
                Ok(Response::Error(WireError { kind, message }))
            }
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}
