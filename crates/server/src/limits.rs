//! Resource bounds enforced by the daemon, plus its observability knobs.

use std::path::PathBuf;
use std::time::Duration;

use hypersweep_analysis::REPORT_MAX_DIM;

/// Everything the daemon refuses to exceed, plus how it exposes its
/// telemetry. Every limit has a conservative default; the CLI exposes the
/// interesting ones as flags.
#[derive(Clone, Debug)]
pub struct ServerLimits {
    /// Largest dimension a request may ask for. Validated with the same
    /// rules as the offline `report --max-dim` flag.
    pub max_dim: u32,
    /// Longest accepted request line, in bytes. Longer lines are consumed
    /// and answered with an `oversized` error — the connection survives,
    /// and the excess bytes are discarded without buffering.
    pub max_line_bytes: usize,
    /// How long a single `plan`/`predict`/`audit` request may take before
    /// the client gets a `timeout` error. The underlying run still
    /// completes and populates the cache for the next request.
    pub request_timeout: Duration,
    /// Dispatch-queue bound: requests beyond `workers` executing plus this
    /// many queued are refused with `busy`.
    pub queue_capacity: usize,
    /// Concurrent connections served; excess connections receive a single
    /// `busy` error line and are closed.
    pub max_connections: usize,
    /// Pipelined requests a single connection may have awaiting the worker
    /// pool before the reactor stops reading from it (flow control, not an
    /// error: reading resumes as replies drain).
    pub max_pipeline: usize,
    /// Worker threads executing requests.
    pub workers: usize,
    /// LRU bound on cached run outcomes (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Hash-partitioned run-cache shards ([`ServerLimits::cache_capacity`]
    /// is split across them).
    pub cache_shards: usize,
    /// Also listen on this Unix-domain socket path, served by the same
    /// reactor as the TCP listener. A stale socket file (no daemon
    /// accepting on it) is removed and rebound; the file is unlinked again
    /// at drain.
    pub uds_path: Option<PathBuf>,
    /// Record telemetry. Off, the daemon still answers `metrics` with
    /// `"enabled":false` and the always-on accounting (request counters,
    /// cache statistics) but records no pool, sink, or latency series.
    pub telemetry: bool,
    /// Append a JSON-lines telemetry snapshot to this file every
    /// [`ServerLimits::metrics_interval`], plus one final line at drain.
    pub metrics_file: Option<PathBuf>,
    /// Export cadence for [`ServerLimits::metrics_file`].
    pub metrics_interval: Duration,
    /// Persist the run cache to this JSONL append-log: warm-load valid
    /// records at bind (`cache.warm_loaded`), append computed outcomes as
    /// they are inserted (`cache.persist_appends`), and snapshot+compact
    /// at graceful drain. Corrupt or truncated records are skipped
    /// (`cache.persist_skipped`), never fatal.
    pub persist_path: Option<PathBuf>,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_dim: REPORT_MAX_DIM,
            max_line_bytes: 64 * 1024,
            request_timeout: Duration::from_secs(30),
            queue_capacity: 64,
            max_connections: 1024,
            max_pipeline: 512,
            workers: hypersweep_analysis::default_jobs().min(4),
            cache_capacity: Some(256),
            cache_shards: 8,
            uds_path: None,
            telemetry: true,
            metrics_file: None,
            metrics_interval: Duration::from_secs(10),
            persist_path: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let limits = ServerLimits::default();
        assert_eq!(limits.max_dim, REPORT_MAX_DIM);
        assert!(limits.workers >= 1);
        assert!(limits.queue_capacity >= limits.workers);
        assert!(limits.max_line_bytes >= 1024);
        assert!(limits.cache_capacity.is_some());
        assert!(
            limits.cache_capacity.unwrap() >= limits.cache_shards,
            "every shard must get a non-zero capacity slice by default"
        );
        assert!(limits.max_connections >= 256, "pipelined bench headroom");
        assert!(limits.max_pipeline >= 1);
        assert!(limits.uds_path.is_none(), "no Unix socket by default");
        assert!(limits.telemetry, "telemetry records by default");
        assert!(limits.metrics_file.is_none(), "no export file by default");
        assert!(limits.metrics_interval >= Duration::from_millis(100));
        assert!(limits.persist_path.is_none(), "no persistence by default");
    }
}
