//! Resource bounds enforced by the daemon.

use std::time::Duration;

use hypersweep_analysis::REPORT_MAX_DIM;

/// Everything the daemon refuses to exceed. Every limit has a conservative
/// default; the CLI exposes the interesting ones as flags.
#[derive(Clone, Copy, Debug)]
pub struct ServerLimits {
    /// Largest dimension a request may ask for. Validated with the same
    /// rules as the offline `report --max-dim` flag.
    pub max_dim: u32,
    /// Longest accepted request line, in bytes. Longer lines are consumed
    /// and answered with an `oversized` error — the connection survives,
    /// and the excess bytes are discarded without buffering.
    pub max_line_bytes: usize,
    /// How long a single `plan`/`predict`/`audit` request may take before
    /// the client gets a `timeout` error. The underlying run still
    /// completes and populates the cache for the next request.
    pub request_timeout: Duration,
    /// Dispatch-queue bound: requests beyond `workers` executing plus this
    /// many queued are refused with `busy`.
    pub queue_capacity: usize,
    /// Concurrent connections served; excess connections receive a single
    /// `busy` error line and are closed.
    pub max_connections: usize,
    /// Worker threads executing requests.
    pub workers: usize,
    /// LRU bound on cached run outcomes (`None` = unbounded).
    pub cache_capacity: Option<usize>,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_dim: REPORT_MAX_DIM,
            max_line_bytes: 64 * 1024,
            request_timeout: Duration::from_secs(30),
            queue_capacity: 64,
            max_connections: 32,
            workers: hypersweep_analysis::default_jobs().min(4),
            cache_capacity: Some(256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let limits = ServerLimits::default();
        assert_eq!(limits.max_dim, REPORT_MAX_DIM);
        assert!(limits.workers >= 1);
        assert!(limits.queue_capacity >= limits.workers);
        assert!(limits.max_line_bytes >= 1024);
        assert!(limits.cache_capacity.is_some());
    }
}
