//! Request handling: map a parsed [`Request`] to a [`Response`].
//!
//! The dispatcher is pure compute over shared state — the daemon decides
//! *where* it runs (worker pool, with timeout) and the dispatcher decides
//! *what* it answers. `plan` and `predict` evaluate the paper's closed
//! forms directly; `audit` goes through the shared [`RunCache`] under an
//! [`Exec::Audited`](hypersweep_analysis::Exec) key, so repeated audits of
//! the same configuration are served from memory and concurrent duplicates
//! execute exactly once.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use hypersweep_analysis::{validate_max_dim, RunCache, RunKey, ShardedRunCache, StrategyKind};
use hypersweep_core::predictions::{
    clean_phase_accounting, clean_prediction, cloning_prediction, visibility_prediction,
};
use hypersweep_scenario::{ScenarioId, ScenarioReference};
use hypersweep_sim::TraceSummary;
use hypersweep_telemetry::{Counter, MetricsRegistry};
use hypersweep_topology::{combinatorics as comb, GridInstance};

use crate::answers::AnswerTable;
use crate::protocol::{
    AuditReply, CacheStats, ErrorKind, MetricsReply, PhasePlan, PlanReply, PredictReply, Request,
    Response, ServedCounts, StatusReply, WireError,
};

/// The version string every `status` and `metrics` reply carries.
pub(crate) fn build_version() -> String {
    env!("CARGO_PKG_VERSION").to_string()
}

/// Narrow a closed-form `u128` to the wire's `u64`. Every quantity the
/// server exposes fits comfortably at the dimensions it accepts (`d ≤ 20`).
fn wire_u64(x: u128) -> u64 {
    u64::try_from(x).expect("closed-form quantity exceeds u64 at a served dimension")
}

/// Shared request handler: validates, computes, and counts.
///
/// The request counters live in a telemetry [`MetricsRegistry`]
/// (`server.requests.*`, `server.errors`, `server.busy`,
/// `server.timeouts`) — they *are* the accounting behind
/// [`Dispatcher::served`], and a `metrics` request serializes the whole
/// registry, so `status` and `metrics` can never disagree.
pub struct Dispatcher {
    cache: Arc<ShardedRunCache>,
    answers: AnswerTable,
    max_dim: u32,
    registry: MetricsRegistry,
    plan: Counter,
    predict: Counter,
    audit: Counter,
    status: Counter,
    metrics: Counter,
    errors: Counter,
    busy: Counter,
    timeouts: Counter,
    table_hits: Counter,
    table_bypass: Counter,
    scenario_hits: Counter,
    scenario_misses: Counter,
    /// Reference runs per `(scenario, side, instance)` — deterministic,
    /// so caching preserves byte-identical replies while making repeat
    /// scenario requests as cheap as a lookup.
    scenario_refs: Mutex<HashMap<(ScenarioId, u32, GridInstance), ScenarioReference>>,
}

impl Dispatcher {
    /// Build a dispatcher over a single-shard wrap of `cache`, refusing
    /// dimensions above `max_dim`, counting into a private registry.
    pub fn new(cache: Arc<RunCache>, max_dim: u32) -> Self {
        Dispatcher::with_telemetry(cache, max_dim, &MetricsRegistry::new())
    }

    /// [`Dispatcher::with_sharded`] over a single-shard wrap of `cache`
    /// (the test-injection path: a caller-owned cache keeps its own
    /// registry and runner).
    pub fn with_telemetry(cache: Arc<RunCache>, max_dim: u32, registry: &MetricsRegistry) -> Self {
        Dispatcher::with_sharded(
            Arc::new(ShardedRunCache::from_caches(vec![cache])),
            max_dim,
            registry,
        )
    }

    /// Build a dispatcher counting into `registry`. A disabled registry is
    /// replaced with a private enabled one: the request counters double as
    /// the `served()` accounting, which must work even when the daemon's
    /// exported telemetry is switched off. Also precomputes the
    /// `plan`/`predict` answer table for every strategy at `1..=max_dim`.
    pub fn with_sharded(
        cache: Arc<ShardedRunCache>,
        max_dim: u32,
        registry: &MetricsRegistry,
    ) -> Self {
        let registry = if registry.is_enabled() {
            registry.clone()
        } else {
            MetricsRegistry::new()
        };
        let answers = AnswerTable::build(max_dim);
        registry
            .gauge("answers.table_size")
            .set(answers.len() as i64);
        Dispatcher {
            cache,
            answers,
            max_dim,
            plan: registry.counter("server.requests.plan"),
            predict: registry.counter("server.requests.predict"),
            audit: registry.counter("server.requests.audit"),
            status: registry.counter("server.requests.status"),
            metrics: registry.counter("server.requests.metrics"),
            errors: registry.counter("server.errors"),
            busy: registry.counter("server.busy"),
            timeouts: registry.counter("server.timeouts"),
            table_hits: registry.counter("answers.table_hits"),
            table_bypass: registry.counter("answers.table_bypass"),
            scenario_hits: registry.counter("scenario.cache_hits"),
            scenario_misses: registry.counter("scenario.cache_misses"),
            scenario_refs: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// The shared (sharded) run cache.
    pub fn cache(&self) -> &Arc<ShardedRunCache> {
        &self.cache
    }

    /// The precomputed answer line for `request`, when it is a
    /// `plan`/`predict` whose dimension the table covers. A returned line
    /// is byte-identical to what [`Dispatcher::handle`] would serialize,
    /// and the counters move exactly as a dispatched request would move
    /// them (plus `answers.table_hits`).
    pub fn answer_line(&self, request: &Request) -> Option<&str> {
        // The table only holds hypercube closed forms; scenario
        // plan/predict requests dispatch normally, and the bypass is
        // counted so the serving tiers stay observable.
        if matches!(
            request,
            Request::ScenarioPlan { .. } | Request::ScenarioPredict { .. }
        ) {
            self.table_bypass.inc();
            return None;
        }
        let answer = self.answers.lookup_request(request)?;
        self.table_hits.inc();
        if answer.ok {
            match request {
                Request::Plan { .. } => self.plan.inc(),
                Request::Predict { .. } => self.predict.inc(),
                _ => unreachable!("the table only holds plan/predict answers"),
            }
        } else {
            self.errors.inc();
        }
        Some(&answer.line)
    }

    /// Table hits so far (the live `answers.table_hits` counter).
    pub fn table_hits(&self) -> u64 {
        self.table_hits.get()
    }

    /// The registry the request counters live in.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The per-request dimension cap.
    pub fn max_dim(&self) -> u32 {
        self.max_dim
    }

    /// Handle a compute request (`plan`, `predict`, or `audit`). `status`
    /// and `shutdown` are answered inline by the daemon, not here.
    pub fn handle(&self, request: Request) -> Response {
        let result = match request {
            Request::Plan { strategy, dim } => self
                .check_dim(dim)
                .and_then(|dim| plan_reply(strategy, dim))
                .map(Response::Plan)
                .inspect(|_| self.plan.inc()),
            Request::Predict { strategy, dim } => self
                .check_dim(dim)
                .and_then(|dim| predict_reply(strategy, dim))
                .map(Response::Predict)
                .inspect(|_| self.predict.inc()),
            Request::Audit { strategy, dim } => self
                .check_dim(dim)
                .map(|dim| Response::Audit(self.audit_reply(strategy, dim)))
                .inspect(|_| self.audit.inc()),
            Request::ScenarioPlan {
                scenario,
                side,
                instance,
            } => self
                .scenario_reference(scenario, side, instance)
                .map(|r| Response::Plan(scenario_plan_reply(scenario, side, &r)))
                .inspect(|_| self.plan.inc()),
            Request::ScenarioPredict { scenario, .. } => Err(WireError::new(
                ErrorKind::Unsupported,
                format!(
                    "the {scenario} scenario has no full closed-form prediction; \
                     use 'plan' or 'audit' to measure it"
                ),
            )),
            Request::ScenarioAudit {
                scenario,
                side,
                instance,
            } => self
                .scenario_reference(scenario, side, instance)
                .map(|r| Response::Audit(scenario_audit_reply(scenario, side, &r)))
                .inspect(|_| self.audit.inc()),
            Request::Status | Request::Metrics | Request::Shutdown => Err(WireError::new(
                ErrorKind::UnknownRequest,
                "status/metrics/shutdown are connection-level requests",
            )),
        };
        result.unwrap_or_else(|e| {
            self.note_error();
            Response::Error(e)
        })
    }

    /// Validate a requested dimension: the same rules as the offline
    /// `report --max-dim` flag, tightened to this server's own cap.
    fn check_dim(&self, dim: u32) -> Result<u32, WireError> {
        let dim =
            validate_max_dim(dim).map_err(|msg| WireError::new(ErrorKind::BadDimension, msg))?;
        if dim > self.max_dim {
            return Err(WireError::new(
                ErrorKind::BadDimension,
                format!(
                    "dimension {dim} exceeds this server's limit of {}",
                    self.max_dim
                ),
            ));
        }
        Ok(dim)
    }

    /// The cached deterministic reference run for a scenario request.
    fn scenario_reference(
        &self,
        scenario: ScenarioId,
        side: u32,
        instance: GridInstance,
    ) -> Result<ScenarioReference, WireError> {
        let resolved = hypersweep_scenario::validate_scenario(scenario, side, instance)
            .map_err(|msg| WireError::new(ErrorKind::BadDimension, msg))?
            .ok_or_else(|| {
                WireError::new(
                    ErrorKind::UnknownScenario,
                    "the hypercube is served by the classic strategy/dim form",
                )
            })?;
        let key = (scenario, side, instance);
        if let Some(cached) = self
            .scenario_refs
            .lock()
            .expect("scenario cache lock")
            .get(&key)
        {
            self.scenario_hits.inc();
            return Ok(cached.clone());
        }
        // Compute outside the lock; concurrent duplicates both run the
        // (deterministic) reference and insert the same value.
        let reference = resolved.reference(side, instance);
        self.scenario_misses.inc();
        self.scenario_refs
            .lock()
            .expect("scenario cache lock")
            .insert(key, reference.clone());
        Ok(reference)
    }

    fn audit_reply(&self, strategy: StrategyKind, dim: u32) -> AuditReply {
        let outcome = self.cache.get_or_run(RunKey::audited(strategy, dim));
        AuditReply {
            strategy: strategy.label().to_string(),
            dim,
            monotone: outcome.verdict.monotone,
            contiguous: outcome.verdict.contiguous,
            all_clean: outcome.verdict.all_clean,
            captured: outcome.verdict.capture.map(|c| c.is_captured()),
            violations: outcome.verdict.violations.len() as u64,
            team_size: outcome.metrics.team_size,
            worker_moves: outcome.metrics.worker_moves,
            total_moves: outcome.metrics.total_moves(),
            trace: outcome.trace_summary.unwrap_or_default(),
        }
    }

    /// Record a backpressure rejection.
    pub fn note_busy(&self) {
        self.busy.inc();
    }

    /// Record a per-request timeout.
    pub fn note_timeout(&self) {
        self.timeouts.inc();
    }

    /// Record a structured error reply produced outside [`Dispatcher::handle`]
    /// (parse failures, oversized lines).
    pub fn note_error(&self) {
        self.errors.inc();
    }

    /// Request counters so far.
    pub fn served(&self) -> ServedCounts {
        ServedCounts {
            plan: self.plan.get(),
            predict: self.predict.get(),
            audit: self.audit.get(),
            status: self.status.get(),
            metrics: self.metrics.get(),
            errors: self.errors.get(),
            busy: self.busy.get(),
            timeouts: self.timeouts.get(),
        }
    }

    /// Build (and count) a `status` reply.
    pub fn status_reply(&self, uptime_ms: u64, in_flight: u64, workers: u64) -> StatusReply {
        self.status.inc();
        StatusReply {
            uptime_ms,
            version: build_version(),
            in_flight,
            workers,
            max_dim: self.max_dim,
            served: self.served(),
            cache: CacheStats {
                hits: self.cache.hits(),
                misses: self.cache.misses(),
                evictions: self.cache.evictions(),
                entries: self.cache.len() as u64,
                capacity: self.cache.capacity().map(|c| c as u64),
                shards: self.cache.shard_count() as u64,
            },
        }
    }

    /// Build (and count) a `metrics` reply: every series of the daemon's
    /// registry, merged with the run cache's own registry when the cache
    /// accounts into a separate one (a caller-injected cache does).
    pub fn metrics_reply(&self, uptime_ms: u64, enabled: bool) -> MetricsReply {
        self.metrics.inc();
        self.export_reply(uptime_ms, enabled)
    }

    /// [`Dispatcher::metrics_reply`] without counting a served request —
    /// the daemon's periodic file exporter snapshots through this so its
    /// ticks don't inflate `served.metrics`.
    pub fn export_reply(&self, uptime_ms: u64, enabled: bool) -> MetricsReply {
        let mut series = self.registry.snapshot();
        for registry in self.cache.registries() {
            if !self.registry.ptr_eq(registry) {
                series.merge(&registry.snapshot());
            }
        }
        MetricsReply {
            uptime_ms,
            version: build_version(),
            enabled,
            series,
        }
    }
}

/// Map a scenario reference run into the existing plan envelope: phases
/// are the team-growth accounting (phase `k` = nodes cleaned while the
/// team had `k + 1` agents), so the response structs stay
/// scenario-agnostic and byte-identity costs nothing new.
fn scenario_plan_reply(
    scenario: ScenarioId,
    side: u32,
    reference: &ScenarioReference,
) -> PlanReply {
    let strategy = hypersweep_scenario::resolve(scenario)
        .map(|s| s.strategy_label())
        .unwrap_or("scenario");
    let phases = reference
        .cleaned_by_team
        .iter()
        .enumerate()
        .filter(|(_, &cleaned)| cleaned > 0)
        .map(|(k, &cleaned)| PhasePlan {
            phase: k as u32,
            active_agents: k as u64 + 1,
            nodes_cleaned: cleaned,
        })
        .collect();
    PlanReply {
        strategy: strategy.to_string(),
        dim: side,
        nodes: reference.nodes,
        team: reference.team,
        total_moves: reference.moves,
        ideal_time: None,
        phases,
    }
}

/// Map a scenario reference run into the existing audit envelope.
fn scenario_audit_reply(
    scenario: ScenarioId,
    side: u32,
    reference: &ScenarioReference,
) -> AuditReply {
    let strategy = hypersweep_scenario::resolve(scenario)
        .map(|s| s.strategy_label())
        .unwrap_or("scenario");
    AuditReply {
        strategy: strategy.to_string(),
        dim: side,
        monotone: reference.monotone,
        contiguous: reference.contiguous,
        all_clean: reference.all_clean,
        captured: Some(reference.captured),
        violations: reference.violations,
        team_size: reference.team,
        worker_moves: reference.moves,
        total_moves: reference.moves,
        trace: TraceSummary {
            events: reference.events,
            spawns: reference.team,
            moves: reference.moves,
            clones: 0,
            terminates: reference.terminates,
            max_time: reference.max_time,
        },
    }
}

fn unsupported(what: &str, strategy: StrategyKind) -> WireError {
    WireError::new(
        ErrorKind::Unsupported,
        format!(
            "the {} baseline has no closed-form {what}; use 'audit' to measure it",
            strategy.label()
        ),
    )
}

/// The closed-form schedule for `strategy` on `H_dim`.
pub(crate) fn plan_reply(strategy: StrategyKind, dim: u32) -> Result<PlanReply, WireError> {
    let d = dim;
    let nodes = wire_u64(comb::pow2(d));
    let reply = match strategy {
        StrategyKind::Clean | StrategyKind::CleanThroughRoot => {
            // Phase l vacates level l: workers walk to level l+1, cleaning
            // its C(d, l+1) nodes (Lemmas 3–4 give the agent accounting).
            let p = clean_prediction(d);
            let phases = (0..d)
                .map(|l| {
                    let (_, _, workers) = clean_phase_accounting(d, l);
                    PhasePlan {
                        phase: l,
                        active_agents: wire_u64(workers),
                        nodes_cleaned: wire_u64(comb::nodes_at_level(d, l + 1)),
                    }
                })
                .collect();
            PlanReply {
                strategy: strategy.label().to_string(),
                dim,
                nodes,
                team: wire_u64(p.team),
                total_moves: wire_u64(p.worker_moves),
                ideal_time: None,
                phases,
            }
        }
        StrategyKind::Visibility | StrategyKind::Synchronous => {
            // Wave t ≥ 1 advances every agent still travelling — those
            // destined to levels ≥ t, i.e. Σ_{l≥t} C(d−1, l−1) of them —
            // and cleans the C(d, t) nodes of level t (Theorems 5–8).
            let p = visibility_prediction(d);
            let phases = (1..=d)
                .map(|t| {
                    let travelling: u128 = (t..=d).map(|l| comb::leaves_at_level(d, l)).sum();
                    PhasePlan {
                        phase: t,
                        active_agents: wire_u64(travelling),
                        nodes_cleaned: wire_u64(comb::nodes_at_level(d, t)),
                    }
                })
                .collect();
            PlanReply {
                strategy: strategy.label().to_string(),
                dim,
                nodes,
                team: wire_u64(p.agents),
                total_moves: wire_u64(p.moves),
                ideal_time: Some(wire_u64(p.ideal_time)),
                phases,
            }
        }
        StrategyKind::Cloning | StrategyKind::CloningSmallestFirst => {
            // Broadcast wave t reaches level t: one clone crosses each of
            // the C(d, t) tree edges into it (§5: n−1 moves in d waves).
            let p = cloning_prediction(d);
            let phases = (1..=d)
                .map(|t| PhasePlan {
                    phase: t,
                    active_agents: wire_u64(comb::nodes_at_level(d, t)),
                    nodes_cleaned: wire_u64(comb::nodes_at_level(d, t)),
                })
                .collect();
            PlanReply {
                strategy: strategy.label().to_string(),
                dim,
                nodes,
                team: wire_u64(p.agents),
                total_moves: wire_u64(p.moves),
                ideal_time: Some(wire_u64(p.ideal_time)),
                phases,
            }
        }
        StrategyKind::Flood | StrategyKind::Frontier => {
            return Err(unsupported("schedule", strategy))
        }
    };
    Ok(reply)
}

/// The paper's exact theorem counts for `strategy` on `H_dim`.
pub(crate) fn predict_reply(strategy: StrategyKind, dim: u32) -> Result<PredictReply, WireError> {
    let d = dim;
    let nodes = wire_u64(comb::pow2(d));
    let label = strategy.label().to_string();
    let reply = match strategy {
        StrategyKind::Clean | StrategyKind::CleanThroughRoot => {
            let p = clean_prediction(d);
            PredictReply {
                strategy: label,
                dim,
                nodes,
                agents: wire_u64(p.team),
                worker_moves: wire_u64(p.worker_moves),
                sync_moves_upper: Some(wire_u64(p.sync_moves_upper)),
                ideal_time: None,
            }
        }
        StrategyKind::Visibility | StrategyKind::Synchronous => {
            let p = visibility_prediction(d);
            PredictReply {
                strategy: label,
                dim,
                nodes,
                agents: wire_u64(p.agents),
                worker_moves: wire_u64(p.moves),
                sync_moves_upper: None,
                ideal_time: Some(wire_u64(p.ideal_time)),
            }
        }
        StrategyKind::Cloning | StrategyKind::CloningSmallestFirst => {
            let p = cloning_prediction(d);
            PredictReply {
                strategy: label,
                dim,
                nodes,
                agents: wire_u64(p.agents),
                worker_moves: wire_u64(p.moves),
                sync_moves_upper: None,
                ideal_time: Some(wire_u64(p.ideal_time)),
            }
        }
        StrategyKind::Flood | StrategyKind::Frontier => {
            return Err(unsupported("prediction", strategy))
        }
    };
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatcher() -> Dispatcher {
        Dispatcher::new(Arc::new(RunCache::new()), 20)
    }

    #[test]
    fn plan_clean_matches_theorem_3() {
        let d = dispatcher();
        let Response::Plan(plan) = d.handle(Request::Plan {
            strategy: StrategyKind::Clean,
            dim: 6,
        }) else {
            panic!("expected a plan reply");
        };
        assert_eq!(plan.nodes, 64);
        assert_eq!(plan.team, 26);
        assert_eq!(plan.total_moves, 224);
        assert_eq!(plan.phases.len(), 6);
        // The schedule covers every node except the homebase.
        let cleaned: u64 = plan.phases.iter().map(|p| p.nodes_cleaned).sum();
        assert_eq!(cleaned, plan.nodes - 1);
    }

    #[test]
    fn plan_wave_strategies_cover_and_sum() {
        let d = dispatcher();
        for strategy in [StrategyKind::Visibility, StrategyKind::Cloning] {
            let Response::Plan(plan) = d.handle(Request::Plan { strategy, dim: 8 }) else {
                panic!("expected a plan reply");
            };
            let cleaned: u64 = plan.phases.iter().map(|p| p.nodes_cleaned).sum();
            assert_eq!(cleaned, plan.nodes - 1, "{}", plan.strategy);
            assert_eq!(plan.ideal_time, Some(8));
            // Per-wave movers sum to the total move count.
            let moves: u64 = plan.phases.iter().map(|p| p.active_agents).sum();
            assert_eq!(moves, plan.total_moves, "{}", plan.strategy);
        }
    }

    #[test]
    fn predict_visibility_matches_theorems() {
        let d = dispatcher();
        let Response::Predict(p) = d.handle(Request::Predict {
            strategy: StrategyKind::Visibility,
            dim: 10,
        }) else {
            panic!("expected a predict reply");
        };
        assert_eq!(p.agents, 512);
        assert_eq!(p.ideal_time, Some(10));
        assert_eq!(p.worker_moves, 256 * 11);
    }

    #[test]
    fn audit_reports_verdict_and_digest() {
        let d = dispatcher();
        let Response::Audit(a) = d.handle(Request::Audit {
            strategy: StrategyKind::Clean,
            dim: 5,
        }) else {
            panic!("expected an audit reply");
        };
        assert!(a.monotone && a.contiguous && a.all_clean);
        assert_eq!(a.captured, Some(true));
        assert_eq!(a.violations, 0);
        assert_eq!(a.trace.moves, a.total_moves);
        // A second identical audit is a cache hit.
        d.handle(Request::Audit {
            strategy: StrategyKind::Clean,
            dim: 5,
        });
        assert_eq!(d.cache().hits(), 1);
        assert_eq!(d.served().audit, 2);
    }

    #[test]
    fn dimension_validation_mirrors_report() {
        let d = Dispatcher::new(Arc::new(RunCache::new()), 10);
        for (dim, expect_ok) in [(0, false), (1, true), (10, true), (11, false), (25, false)] {
            let response = d.handle(Request::Predict {
                strategy: StrategyKind::Clean,
                dim,
            });
            assert_eq!(response.is_ok(), expect_ok, "dim={dim}");
            if !expect_ok {
                let Response::Error(e) = response else {
                    unreachable!()
                };
                assert_eq!(e.kind, ErrorKind::BadDimension);
            }
        }
        assert_eq!(d.served().errors, 3);
    }

    #[test]
    fn metrics_reply_merges_request_and_cache_series() {
        let d = dispatcher();
        for _ in 0..2 {
            let response = d.handle(Request::Audit {
                strategy: StrategyKind::Clean,
                dim: 4,
            });
            assert!(response.is_ok());
        }
        let reply = d.metrics_reply(7, true);
        assert!(reply.enabled);
        assert_eq!(reply.uptime_ms, 7);
        assert_eq!(reply.version, env!("CARGO_PKG_VERSION"));
        // The dispatcher's own counters and the injected cache's separate
        // registry both appear in one merged snapshot.
        assert_eq!(reply.series.counter("server.requests.audit"), Some(2));
        assert_eq!(reply.series.counter("cache.hits"), Some(1));
        assert_eq!(reply.series.counter("cache.misses"), Some(1));
        assert!(reply.series.histogram("cache.run_us").is_some());
        assert_eq!(d.served().metrics, 1);
    }

    #[test]
    fn status_reply_reports_version_and_uptime() {
        let d = dispatcher();
        let status = d.status_reply(1234, 0, 2);
        assert_eq!(status.uptime_ms, 1234);
        assert_eq!(status.version, env!("CARGO_PKG_VERSION"));
        assert_eq!(status.served.status, 1);
        assert_eq!(status.served.metrics, 0);
    }

    #[test]
    fn scenario_plan_bypasses_the_answer_table_and_caches() {
        let d = dispatcher();
        let request = Request::ScenarioPlan {
            scenario: ScenarioId::Grid,
            side: 6,
            instance: GridInstance::Holes(42),
        };
        assert!(d.answer_line(&request).is_none(), "table must not answer");
        let first = d.handle(request).to_line();
        let second = d.handle(request).to_line();
        assert_eq!(first, second, "scenario replies must be byte-identical");
        let snap = d.registry().snapshot();
        assert_eq!(snap.counter("answers.table_bypass"), Some(1));
        assert_eq!(snap.counter("scenario.cache_misses"), Some(1));
        assert_eq!(snap.counter("scenario.cache_hits"), Some(1));
        assert_eq!(d.served().plan, 2);
        // The classic hypercube path still hits the table, not the bypass.
        assert!(d
            .answer_line(&Request::Plan {
                strategy: StrategyKind::Clean,
                dim: 6
            })
            .is_some());
        let snap = d.registry().snapshot();
        assert_eq!(snap.counter("answers.table_bypass"), Some(1));
        assert_eq!(snap.counter("answers.table_hits"), Some(1));
    }

    #[test]
    fn scenario_audit_reports_a_clean_verdict() {
        let d = dispatcher();
        for scenario in [ScenarioId::Grid, ScenarioId::Dynamic] {
            let Response::Audit(a) = d.handle(Request::ScenarioAudit {
                scenario,
                side: 5,
                instance: GridInstance::Full,
            }) else {
                panic!("expected an audit reply for {scenario}");
            };
            assert!(a.monotone && a.contiguous && a.all_clean, "{scenario}");
            assert_eq!(a.captured, Some(true), "{scenario}");
            assert_eq!(a.violations, 0, "{scenario}");
            assert_eq!(a.trace.spawns, a.team_size, "{scenario}");
            assert_eq!(a.trace.moves, a.total_moves, "{scenario}");
        }
    }

    #[test]
    fn scenario_plan_phases_cover_every_node() {
        let d = dispatcher();
        let Response::Plan(plan) = d.handle(Request::ScenarioPlan {
            scenario: ScenarioId::Grid,
            side: 6,
            instance: GridInstance::Full,
        }) else {
            panic!("expected a plan reply");
        };
        assert_eq!(plan.strategy, "grid-sweep");
        assert_eq!(plan.nodes, 36);
        let cleaned: u64 = plan.phases.iter().map(|p| p.nodes_cleaned).sum();
        assert_eq!(
            cleaned, plan.nodes,
            "team-growth phases must cover the grid"
        );
    }

    #[test]
    fn scenario_predict_and_bad_sides_yield_structured_errors() {
        let d = dispatcher();
        let Response::Error(e) = d.handle(Request::ScenarioPredict {
            scenario: ScenarioId::Grid,
            side: 6,
            instance: GridInstance::Full,
        }) else {
            panic!("scenario predict must be unsupported");
        };
        assert_eq!(e.kind, ErrorKind::Unsupported);
        let Response::Error(e) = d.handle(Request::ScenarioPlan {
            scenario: ScenarioId::Grid,
            side: 99,
            instance: GridInstance::Full,
        }) else {
            panic!("oversized side must be refused");
        };
        assert_eq!(e.kind, ErrorKind::BadDimension);
    }

    #[test]
    fn baselines_are_unsupported_for_closed_forms() {
        let d = dispatcher();
        for strategy in [StrategyKind::Flood, StrategyKind::Frontier] {
            for request in [
                Request::Plan { strategy, dim: 4 },
                Request::Predict { strategy, dim: 4 },
            ] {
                let Response::Error(e) = d.handle(request) else {
                    panic!("baselines must refuse closed-form requests");
                };
                assert_eq!(e.kind, ErrorKind::Unsupported);
            }
            // They still audit fine.
            assert!(d.handle(Request::Audit { strategy, dim: 4 }).is_ok());
        }
    }
}
