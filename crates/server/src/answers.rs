//! The precomputed answer tier: every `plan`/`predict` line the server can
//! ever emit, serialized once at startup.
//!
//! `plan` and `predict` are pure functions of `(strategy, dim)` with
//! `dim ≤ 20` — a few hundred distinct answers in total. Building them all
//! up front turns the dominant request class into one bounds-checked array
//! lookup returning an already-serialized wire line: no worker dispatch,
//! no closed-form evaluation, no JSON serialization, no allocation on the
//! hot path. The table stores *exactly* the bytes the dispatcher would
//! produce — including the `unsupported` error lines for the baseline
//! strategies — so serving from it is observationally identical to
//! dispatching (the differential test in `tests/answers.rs` pins this
//! byte-for-byte over the whole table).

use hypersweep_analysis::StrategyKind;

use crate::dispatch::{plan_reply, predict_reply};
use crate::protocol::{Request, Response, WIRE_STRATEGIES};

/// One precomputed reply: the wire line plus whether it is a success
/// (drives which request counter a table hit increments).
pub(crate) struct Answer {
    /// The exact bytes `Dispatcher::handle` would serialize (no newline).
    pub line: String,
    /// `false` for the baselines' `unsupported` error lines.
    pub ok: bool,
}

/// Which closed-form family an answer belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AnswerKind {
    /// A `plan` reply.
    Plan,
    /// A `predict` reply.
    Predict,
}

/// All `plan`/`predict` answers for every wire strategy at `1..=max_dim`.
pub struct AnswerTable {
    max_dim: u32,
    /// `[strategy index in WIRE_STRATEGIES][dim - 1]`.
    plan: Vec<Vec<Answer>>,
    predict: Vec<Vec<Answer>>,
}

impl AnswerTable {
    /// Precompute every answer up to `max_dim` (the server's dimension
    /// cap, itself bounded by `REPORT_MAX_DIM = 20`).
    pub fn build(max_dim: u32) -> Self {
        let build_rows = |kind: AnswerKind| {
            WIRE_STRATEGIES
                .iter()
                .map(|&strategy| {
                    (1..=max_dim)
                        .map(|dim| {
                            let reply = match kind {
                                AnswerKind::Plan => plan_reply(strategy, dim).map(Response::Plan),
                                AnswerKind::Predict => {
                                    predict_reply(strategy, dim).map(Response::Predict)
                                }
                            };
                            match reply {
                                Ok(response) => Answer {
                                    line: response.to_line(),
                                    ok: true,
                                },
                                Err(e) => Answer {
                                    line: Response::Error(e).to_line(),
                                    ok: false,
                                },
                            }
                        })
                        .collect()
                })
                .collect()
        };
        AnswerTable {
            max_dim,
            plan: build_rows(AnswerKind::Plan),
            predict: build_rows(AnswerKind::Predict),
        }
    }

    /// Number of precomputed answers.
    pub fn len(&self) -> usize {
        2 * WIRE_STRATEGIES.len() * self.max_dim as usize
    }

    /// Whether the table holds no answers (a zero `max_dim`; never built
    /// by the server, which validates `max_dim >= 1`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The precomputed answer for `(kind, strategy, dim)`, or `None` when
    /// `dim` is outside `1..=max_dim` (those fall through to the
    /// dispatcher, which produces the structured `bad_dimension` error).
    pub(crate) fn lookup(
        &self,
        kind: AnswerKind,
        strategy: StrategyKind,
        dim: u32,
    ) -> Option<&Answer> {
        if dim == 0 || dim > self.max_dim {
            return None;
        }
        let si = WIRE_STRATEGIES.iter().position(|&s| s == strategy)?;
        let rows = match kind {
            AnswerKind::Plan => &self.plan,
            AnswerKind::Predict => &self.predict,
        };
        rows[si].get(dim as usize - 1)
    }

    /// The table entry answering `request`, when it is a `plan`/`predict`
    /// within the precomputed dimension range.
    pub(crate) fn lookup_request(&self, request: &Request) -> Option<&Answer> {
        match *request {
            Request::Plan { strategy, dim } => self.lookup(AnswerKind::Plan, strategy, dim),
            Request::Predict { strategy, dim } => self.lookup(AnswerKind::Predict, strategy, dim),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_strategy_and_dimension() {
        let table = AnswerTable::build(20);
        assert_eq!(table.len(), 2 * 8 * 20);
        assert!(!table.is_empty());
        for &strategy in &WIRE_STRATEGIES {
            for dim in 1..=20 {
                for kind in [AnswerKind::Plan, AnswerKind::Predict] {
                    let answer = table.lookup(kind, strategy, dim).expect("in range");
                    assert!(!answer.line.is_empty());
                    // The baselines have no closed forms; everything else
                    // succeeds.
                    let closed_form =
                        !matches!(strategy, StrategyKind::Flood | StrategyKind::Frontier);
                    assert_eq!(answer.ok, closed_form, "{strategy:?} d={dim}");
                }
            }
        }
    }

    #[test]
    fn out_of_range_dimensions_miss() {
        let table = AnswerTable::build(10);
        assert!(table
            .lookup(AnswerKind::Plan, StrategyKind::Clean, 0)
            .is_none());
        assert!(table
            .lookup(AnswerKind::Predict, StrategyKind::Clean, 11)
            .is_none());
        assert!(table
            .lookup(AnswerKind::Plan, StrategyKind::Clean, 10)
            .is_some());
    }
}
