//! `hypersweep-server`: an online query daemon for the hypercube search
//! harness.
//!
//! The offline harness answers questions in batch (`hypersweep report`);
//! this crate answers them on demand over TCP, in a line-delimited JSON
//! protocol (see [`protocol`]):
//!
//! * `plan` — the closed-form per-phase cleaning schedule for a strategy
//!   on `H_d`;
//! * `predict` — the paper's exact theorem counts (agents, moves, time);
//! * `audit` — run the strategy's trace through the packed contamination
//!   monitor and return the verdict plus measured metrics, streaming the
//!   trace so memory stays `O(n)` even at `H_20`;
//! * `status` — uptime, request counters, cache statistics, in-flight work;
//! * `metrics` — the daemon's full telemetry snapshot (pool, cache, sink,
//!   and per-request-kind latency series), also exportable as JSON lines
//!   via [`ServerLimits::metrics_file`].
//!
//! The front end is a single-threaded non-blocking reactor (TCP plus an
//! optional Unix-domain socket) with request pipelining and in-order
//! replies. `plan`/`predict` answer inline from a precomputed
//! [`AnswerTable`]; `audit` dispatches onto the analysis crate's bounded
//! [`WorkerPool`] (backpressure surfaces to clients as `busy` errors,
//! never as unbounded queueing) and deduplicates through a hash-sharded
//! [`ShardedRunCache`] with an LRU capacity bound, so the daemon stays in
//! bounded memory no matter how long it serves. Graceful shutdown (SIGINT
//! or a `shutdown` request) drains in-flight work and emits a final stats
//! line.
//!
//! [`WorkerPool`]: hypersweep_analysis::WorkerPool
//! [`ShardedRunCache`]: hypersweep_analysis::ShardedRunCache

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod answers;
pub mod client;
pub mod daemon;
pub mod dispatch;
pub mod limits;
pub mod poll;
pub mod protocol;
mod reactor;

pub use answers::AnswerTable;
pub use client::{run_bench, BenchConfig, BenchReport, Client, BENCH_SCHEMA};
pub use daemon::{Server, ServerStats};
pub use dispatch::Dispatcher;
pub use limits::ServerLimits;
pub use protocol::{
    parse_strategy, AuditReply, CacheStats, ErrorKind, MetricsReply, PhasePlan, PlanReply,
    PredictReply, Request, Response, ServedCounts, ShutdownReply, StatusReply, WireError,
    WIRE_STRATEGIES,
};
