//! The daemon: bind, serve through the reactor, drain gracefully.
//!
//! Serving is event-driven: one reactor thread (see [`crate::reactor`])
//! multiplexes every connection over non-blocking sockets — TCP plus an
//! optional Unix-domain socket ([`ServerLimits::uds_path`]) — with
//! request pipelining and in-order replies. `plan`/`predict` resolve
//! inline from the precomputed answer table; `audit` runs on a bounded
//! [`WorkerPool`] — a full queue turns into an immediate `busy` error,
//! and a slow run turns into a `timeout` error after
//! [`ServerLimits::request_timeout`] (the run itself still completes and
//! warms the cache). Audits deduplicate through an N-sharded
//! [`ShardedRunCache`] hash-partitioned on the run key.
//!
//! Shutdown is cooperative: a SIGINT (when [`install_sigint_handler`] is
//! active) or a `shutdown` request raises one flag; the reactor stops
//! accepting, unlinks the Unix socket, finishes or times out in-flight
//! audits, flushes every reply, the pool drains, and a final status line
//! is emitted.

use std::fs::File;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hypersweep_analysis::{CacheStore, PersistAppender, RunCache, ShardedRunCache, WorkerPool};
use hypersweep_telemetry::{log_line, Histogram, MetricsRegistry};

use crate::dispatch::Dispatcher;
use crate::limits::ServerLimits;
use crate::protocol::{MetricsReply, Response, StatusReply};
use crate::reactor::Reactor;

/// How long the exporter sleeps between shutdown-flag checks.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The final status snapshot [`Server::run`] returns after draining.
pub type ServerStats = StatusReply;

/// SIGINT/SIGTERM handling without a libc dependency: registers a handler
/// that flips one atomic the reactor polls. SIGTERM is what `hypersweep
/// daemon stop` sends, so a managed daemon drains exactly like a Ctrl-C'd
/// foreground one.
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SEEN: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SEEN.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
            signal(SIGTERM, on_sigint);
        }
    }

    pub(super) fn seen() -> bool {
        SEEN.load(Ordering::SeqCst)
    }
}

/// Route SIGINT and SIGTERM into a graceful drain instead of process
/// death. Called by the CLI before [`Server::run`]; tests skip it and use
/// [`Server::shutdown_flag`] instead.
pub fn install_sigint_handler() {
    sigint::install();
}

/// Whether a SIGINT arrived (reactor drain trigger).
pub(crate) fn sigint_seen() -> bool {
    sigint::seen()
}

/// Per-request-kind latency histograms (`server.latency.<kind>_us`),
/// resolved once at bind so the per-request cost is one `Instant` pair and
/// one lock-free record. Disabled telemetry makes every record a no-op.
pub(crate) struct LatencyMetrics {
    pub(crate) plan: Histogram,
    pub(crate) predict: Histogram,
    pub(crate) audit: Histogram,
    pub(crate) status: Histogram,
    pub(crate) metrics: Histogram,
}

impl LatencyMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        LatencyMetrics {
            plan: registry.histogram("server.latency.plan_us"),
            predict: registry.histogram("server.latency.predict_us"),
            audit: registry.histogram("server.latency.audit_us"),
            status: registry.histogram("server.latency.status_us"),
            metrics: registry.histogram("server.latency.metrics_us"),
        }
    }
}

/// Everything the reactor and its pool jobs share.
pub(crate) struct Shared {
    pub(crate) dispatcher: Dispatcher,
    pub(crate) pool: WorkerPool,
    pub(crate) limits: ServerLimits,
    pub(crate) latency: LatencyMetrics,
    pub(crate) shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    pub(crate) fn status(&self) -> StatusReply {
        self.dispatcher.status_reply(
            self.uptime_ms(),
            self.pool.in_flight() as u64,
            self.pool.workers() as u64,
        )
    }

    pub(crate) fn metrics(&self) -> MetricsReply {
        self.dispatcher
            .metrics_reply(self.uptime_ms(), self.limits.telemetry)
    }

    /// A snapshot for the file exporter: identical shape to a `metrics`
    /// reply but not counted as a served request, so exporter ticks never
    /// inflate `served.metrics`.
    fn export(&self) -> MetricsReply {
        self.dispatcher
            .export_reply(self.uptime_ms(), self.limits.telemetry)
    }
}

/// The cache persistence pipeline, alive for the daemon's lifetime:
/// warm-loaded at bind, appending computed inserts while serving, and
/// flushed + compacted at graceful drain.
struct Persist {
    store: CacheStore,
    appender: PersistAppender,
    cache: Arc<ShardedRunCache>,
}

/// The daemon: bind, then [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    uds: Option<UnixListener>,
    shared: Arc<Shared>,
    persist: Option<Persist>,
}

impl Server {
    /// Bind `addr` with a fresh sharded run cache
    /// ([`ServerLimits::cache_shards`] shards splitting
    /// [`ServerLimits::cache_capacity`]), accounting into the daemon's
    /// own telemetry registry (one unmerged snapshot serves `metrics`).
    pub fn bind(addr: impl ToSocketAddrs, limits: ServerLimits) -> io::Result<Server> {
        let registry = Self::registry_for(&limits);
        let cache = Arc::new(ShardedRunCache::with_capacity_and_telemetry(
            limits.cache_shards,
            limits.cache_capacity,
            &registry,
        ));
        Self::build(addr, limits, cache, registry)
    }

    /// Bind `addr` serving from a caller-provided cache (tests inject slow
    /// or pre-warmed runners this way), wrapped as a single shard. The
    /// cache keeps its own registry; `metrics` replies merge it into the
    /// daemon's snapshot.
    pub fn with_cache(
        addr: impl ToSocketAddrs,
        limits: ServerLimits,
        cache: Arc<RunCache>,
    ) -> io::Result<Server> {
        let registry = Self::registry_for(&limits);
        let sharded = Arc::new(ShardedRunCache::from_caches(vec![cache]));
        Self::build(addr, limits, sharded, registry)
    }

    fn registry_for(limits: &ServerLimits) -> MetricsRegistry {
        if limits.telemetry {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        }
    }

    fn build(
        addr: impl ToSocketAddrs,
        limits: ServerLimits,
        cache: Arc<ShardedRunCache>,
        registry: MetricsRegistry,
    ) -> io::Result<Server> {
        cache.set_capacity(limits.cache_capacity);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let uds = match &limits.uds_path {
            Some(path) => Some(bind_uds(path)?),
            None => None,
        };
        if limits.telemetry {
            // Streamed audits meter their event flow through the process
            // global (`sink.events`); point it at this daemon's registry.
            hypersweep_telemetry::install_global(&registry);
        }
        let persist = match &limits.persist_path {
            Some(path) => {
                let store = CacheStore::new(path);
                let stats = store.warm_load(&cache, &registry)?;
                log_line(&format!(
                    "cache: warm-loaded {} records from {} ({} skipped, {} duplicate)",
                    stats.loaded,
                    path.display(),
                    stats.skipped,
                    stats.duplicates,
                ));
                let appender = store.appender(&registry)?;
                cache.set_insert_listener(appender.listener());
                Some(Persist {
                    store,
                    appender,
                    cache: Arc::clone(&cache),
                })
            }
            None => None,
        };
        Ok(Server {
            listener,
            uds,
            persist,
            shared: Arc::new(Shared {
                dispatcher: Dispatcher::with_sharded(cache, limits.max_dim, &registry),
                pool: WorkerPool::with_telemetry(limits.workers, limits.queue_capacity, &registry),
                latency: LatencyMetrics::resolve(&registry),
                limits,
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
            }),
        })
    }

    /// The bound TCP address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] drain and return when raised.
    pub fn shutdown_flag(&self) -> Arc<impl Fn() + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.shutdown.store(true, Ordering::SeqCst))
    }

    /// Serve until SIGINT or a `shutdown` request, then drain in-flight
    /// work, join every thread, emit a final status line on stdout, and
    /// return the final stats.
    pub fn run(self) -> io::Result<ServerStats> {
        let Server {
            listener,
            uds,
            shared,
            persist,
        } = self;
        let exporter = match &shared.limits.metrics_file {
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                let shared = Arc::clone(&shared);
                Some(std::thread::spawn(move || export_metrics(file, &shared)))
            }
            None => None,
        };
        let uds_path = shared.limits.uds_path.clone();
        let reactor = Reactor::new(listener, uds, uds_path, Arc::clone(&shared))?;
        let served = reactor.run();
        // Drain: the reactor has already flushed and closed every
        // connection; finish queued work, then join everything.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.pool.shutdown();
        if let Some(persist) = persist {
            // Every pool job has completed, so every insert listener has
            // enqueued; flush forces the appender through its queue and
            // fsyncs before the snapshot rewrite.
            persist.appender.flush();
            match persist.store.compact(&persist.cache) {
                Ok(records) => log_line(&format!(
                    "cache: compacted {} records into {}",
                    records,
                    persist.store.path().display()
                )),
                Err(e) => log_line(&format!("cache: compaction failed: {e}")),
            }
        }
        if let Some(handle) = exporter {
            // The exporter notices the flag within one poll interval and
            // appends its final post-drain snapshot before exiting.
            let _ = handle.join();
        }
        served?;
        let stats = shared.status();
        let mut stdout = io::stdout().lock();
        let _ = writeln!(stdout, "{}", Response::Status(stats.clone()).to_line());
        let _ = stdout.flush();
        Ok(stats)
    }
}

/// Bind the Unix-domain listener, reclaiming a stale socket file: if the
/// path exists but no daemon accepts on it (a previous process died
/// without unlinking), remove it and bind. A live daemon keeps its
/// socket — that surfaces as `AddrInUse`.
fn bind_uds(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} is in use by a live daemon", path.display()),
                ));
            }
            std::fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

/// The `--metrics-file` exporter loop: append one `metrics` JSON line per
/// interval (each line parses with [`Response::parse`]), plus a final
/// snapshot when the daemon drains. Write failures end the export quietly —
/// observability must never take the serving path down.
fn export_metrics(mut file: File, shared: &Arc<Shared>) {
    let interval = shared.limits.metrics_interval;
    loop {
        let mut waited = Duration::ZERO;
        while waited < interval && !shared.shutdown.load(Ordering::SeqCst) {
            let step = POLL_INTERVAL.min(interval - waited);
            std::thread::sleep(step);
            waited += step;
        }
        let line = Response::Metrics(shared.export()).to_line();
        if writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .is_err()
        {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}
