//! The TCP daemon: accept loop, connection handling, graceful shutdown.
//!
//! One thread per live connection (bounded by
//! [`ServerLimits::max_connections`]); each connection reads line-delimited
//! JSON requests and writes one response line per request. Compute requests
//! (`plan`/`predict`/`audit`) are submitted to a bounded [`WorkerPool`] —
//! a full queue turns into an immediate `busy` error, and a slow run turns
//! into a `timeout` error after [`ServerLimits::request_timeout`] (the run
//! itself still completes and warms the cache).
//!
//! Shutdown is cooperative: a SIGINT (when [`install_sigint_handler`] is
//! active) or a `shutdown` request raises one flag; the accept loop stops,
//! connection sockets notice at their next 50 ms read timeout, queued work
//! drains, every thread is joined, and a final status line is emitted.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hypersweep_analysis::{RunCache, WorkerPool};

use crate::dispatch::Dispatcher;
use crate::limits::ServerLimits;
use crate::protocol::{ErrorKind, Request, Response, ShutdownReply, StatusReply, WireError};

/// How long a connection read blocks before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The final status snapshot [`Server::run`] returns after draining.
pub type ServerStats = StatusReply;

/// SIGINT handling without a libc dependency: registers a handler that
/// flips one atomic the accept loop polls.
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SEEN: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SEEN.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    pub(super) fn seen() -> bool {
        SEEN.load(Ordering::SeqCst)
    }
}

/// Route SIGINT into a graceful drain instead of process death. Called by
/// the CLI before [`Server::run`]; tests skip it and use
/// [`Server::shutdown_flag`] instead.
pub fn install_sigint_handler() {
    sigint::install();
}

/// Everything a connection thread needs, shared by `Arc`.
struct Shared {
    dispatcher: Dispatcher,
    pool: WorkerPool,
    limits: ServerLimits,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn status(&self) -> StatusReply {
        self.dispatcher.status_reply(
            self.started.elapsed().as_millis() as u64,
            self.pool.in_flight() as u64,
            self.pool.workers() as u64,
        )
    }
}

/// The daemon: bind, then [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` with a fresh run cache bounded at
    /// [`ServerLimits::cache_capacity`].
    pub fn bind(addr: impl ToSocketAddrs, limits: ServerLimits) -> io::Result<Server> {
        Self::with_cache(
            addr,
            limits,
            Arc::new(RunCache::with_capacity(limits.cache_capacity)),
        )
    }

    /// Bind `addr` serving from a caller-provided cache (tests inject slow
    /// or pre-warmed runners this way).
    pub fn with_cache(
        addr: impl ToSocketAddrs,
        limits: ServerLimits,
        cache: Arc<RunCache>,
    ) -> io::Result<Server> {
        cache.set_capacity(limits.cache_capacity);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                dispatcher: Dispatcher::new(cache, limits.max_dim),
                pool: WorkerPool::new(limits.workers, limits.queue_capacity),
                limits,
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] drain and return when raised.
    pub fn shutdown_flag(&self) -> Arc<impl Fn() + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.shutdown.store(true, Ordering::SeqCst))
    }

    /// Serve until SIGINT or a `shutdown` request, then drain in-flight
    /// work, join every thread, emit a final status line on stdout, and
    /// return the final stats.
    pub fn run(self) -> io::Result<ServerStats> {
        let Server { listener, shared } = self;
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::SeqCst) && !sigint::seen() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if live.load(Ordering::SeqCst) >= shared.limits.max_connections {
                        refuse_connection(stream);
                        continue;
                    }
                    live.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&shared);
                    let live = Arc::clone(&live);
                    handles.push(std::thread::spawn(move || {
                        let _ = serve_connection(stream, &shared);
                        live.fetch_sub(1, Ordering::SeqCst);
                    }));
                    handles.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: raise the flag for connection threads, finish queued work,
        // then join everything — no leaked threads.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.pool.shutdown();
        for handle in handles {
            let _ = handle.join();
        }
        let stats = shared.status();
        let mut stdout = io::stdout().lock();
        let _ = writeln!(stdout, "{}", Response::Status(stats.clone()).to_line());
        let _ = stdout.flush();
        Ok(stats)
    }
}

/// Over the connection cap: send one `busy` line and close.
fn refuse_connection(mut stream: TcpStream) {
    let response = Response::Error(WireError::new(
        ErrorKind::Busy,
        "connection limit reached; retry later",
    ));
    let _ = writeln!(stream, "{}", response.to_line());
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    writeln!(stream, "{}", response.to_line())?;
    stream.flush()
}

/// What one pass over the socket buffer produced.
enum LineStep {
    /// A complete request line (possibly empty).
    Line(Vec<u8>),
    /// A complete line that exceeded the size bound (content discarded).
    Oversized,
    /// The client closed the connection.
    Eof,
    /// Read timeout — caller should check the shutdown flag and retry.
    Idle,
}

/// Accumulate one newline-terminated line, never buffering more than
/// `max_len` bytes: once a line exceeds the bound its remainder is consumed
/// and discarded, and the line reports as [`LineStep::Oversized`].
fn read_line_step(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    discarding: &mut bool,
    max_len: usize,
) -> io::Result<LineStep> {
    loop {
        let (newline_at, chunk_len) = match reader.fill_buf() {
            Ok([]) => return Ok(LineStep::Eof),
            Ok(chunk) => {
                let newline_at = chunk.iter().position(|&b| b == b'\n');
                let take = newline_at.unwrap_or(chunk.len());
                if !*discarding {
                    buf.extend_from_slice(&chunk[..take]);
                    if buf.len() > max_len {
                        *discarding = true;
                        buf.clear();
                    }
                }
                (newline_at, chunk.len())
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(LineStep::Idle)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        match newline_at {
            Some(pos) => {
                reader.consume(pos + 1);
                if *discarding {
                    *discarding = false;
                    return Ok(LineStep::Oversized);
                }
                return Ok(LineStep::Line(std::mem::take(buf)));
            }
            None => reader.consume(chunk_len),
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    let mut discarding = false;
    loop {
        let line = match read_line_step(
            &mut reader,
            &mut buf,
            &mut discarding,
            shared.limits.max_line_bytes,
        )? {
            LineStep::Eof => return Ok(()),
            LineStep::Idle => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            LineStep::Oversized => {
                shared.dispatcher.note_error();
                write_response(
                    &mut writer,
                    &Response::Error(WireError::new(
                        ErrorKind::Oversized,
                        format!(
                            "request line exceeds {} bytes",
                            shared.limits.max_line_bytes
                        ),
                    )),
                )?;
                continue;
            }
            LineStep::Line(line) => line,
        };
        let Ok(text) = String::from_utf8(line) else {
            shared.dispatcher.note_error();
            write_response(
                &mut writer,
                &Response::Error(WireError::new(
                    ErrorKind::Malformed,
                    "request line is not valid UTF-8",
                )),
            )?;
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let response = handle_line(&text, shared);
        write_response(&mut writer, &response)?;
    }
}

/// Answer one request line (connection-agnostic; the determinism test also
/// calls this path through a live socket).
fn handle_line(text: &str, shared: &Arc<Shared>) -> Response {
    let request = match Request::parse(text) {
        Ok(request) => request,
        Err(e) => {
            shared.dispatcher.note_error();
            return Response::Error(e);
        }
    };
    match request {
        Request::Status => Response::Status(shared.status()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::Shutdown(ShutdownReply {
                draining: shared.pool.in_flight() as u64,
            })
        }
        compute @ (Request::Plan { .. } | Request::Predict { .. } | Request::Audit { .. }) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.dispatcher.note_error();
                return Response::Error(WireError::new(
                    ErrorKind::ShuttingDown,
                    "server is draining; no new work accepted",
                ));
            }
            dispatch_compute(compute, shared)
        }
    }
}

/// Hand a compute request to the pool and wait (bounded) for its answer.
fn dispatch_compute(request: Request, shared: &Arc<Shared>) -> Response {
    let (tx, rx) = mpsc::channel();
    let job_shared = Arc::clone(shared);
    let submitted = shared.pool.try_submit(move || {
        let _ = tx.send(job_shared.dispatcher.handle(request));
    });
    if submitted.is_err() {
        shared.dispatcher.note_busy();
        return Response::Error(WireError::new(
            ErrorKind::Busy,
            "dispatch queue is full; retry later",
        ));
    }
    match rx.recv_timeout(shared.limits.request_timeout) {
        Ok(response) => response,
        Err(_) => {
            // The run keeps executing and will warm the cache; only this
            // client's wait is abandoned.
            shared.dispatcher.note_timeout();
            Response::Error(WireError::new(
                ErrorKind::Timeout,
                format!(
                    "request exceeded the {} ms budget",
                    shared.limits.request_timeout.as_millis()
                ),
            ))
        }
    }
}
