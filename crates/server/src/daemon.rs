//! The TCP daemon: accept loop, connection handling, graceful shutdown.
//!
//! One thread per live connection (bounded by
//! [`ServerLimits::max_connections`]); each connection reads line-delimited
//! JSON requests and writes one response line per request. Compute requests
//! (`plan`/`predict`/`audit`) are submitted to a bounded [`WorkerPool`] —
//! a full queue turns into an immediate `busy` error, and a slow run turns
//! into a `timeout` error after [`ServerLimits::request_timeout`] (the run
//! itself still completes and warms the cache).
//!
//! Shutdown is cooperative: a SIGINT (when [`install_sigint_handler`] is
//! active) or a `shutdown` request raises one flag; the accept loop stops,
//! connection sockets notice at their next 50 ms read timeout, queued work
//! drains, every thread is joined, and a final status line is emitted.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hypersweep_analysis::{RunCache, WorkerPool};
use hypersweep_telemetry::{Histogram, MetricsRegistry};

use crate::dispatch::Dispatcher;
use crate::limits::ServerLimits;
use crate::protocol::{
    ErrorKind, MetricsReply, Request, Response, ShutdownReply, StatusReply, WireError,
};

/// How long a connection read blocks before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The final status snapshot [`Server::run`] returns after draining.
pub type ServerStats = StatusReply;

/// SIGINT handling without a libc dependency: registers a handler that
/// flips one atomic the accept loop polls.
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SEEN: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SEEN.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    pub(super) fn seen() -> bool {
        SEEN.load(Ordering::SeqCst)
    }
}

/// Route SIGINT into a graceful drain instead of process death. Called by
/// the CLI before [`Server::run`]; tests skip it and use
/// [`Server::shutdown_flag`] instead.
pub fn install_sigint_handler() {
    sigint::install();
}

/// Per-request-kind latency histograms (`server.latency.<kind>_us`),
/// resolved once at bind so the per-request cost is one `Instant` pair and
/// one lock-free record. Disabled telemetry makes every record a no-op.
struct LatencyMetrics {
    plan: Histogram,
    predict: Histogram,
    audit: Histogram,
    status: Histogram,
    metrics: Histogram,
}

impl LatencyMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        LatencyMetrics {
            plan: registry.histogram("server.latency.plan_us"),
            predict: registry.histogram("server.latency.predict_us"),
            audit: registry.histogram("server.latency.audit_us"),
            status: registry.histogram("server.latency.status_us"),
            metrics: registry.histogram("server.latency.metrics_us"),
        }
    }

    /// The histogram timing `request`, if its kind is timed (`shutdown`
    /// is a drain edge, not a served request).
    fn for_request(&self, request: &Request) -> Option<&Histogram> {
        match request {
            Request::Plan { .. } => Some(&self.plan),
            Request::Predict { .. } => Some(&self.predict),
            Request::Audit { .. } => Some(&self.audit),
            Request::Status => Some(&self.status),
            Request::Metrics => Some(&self.metrics),
            Request::Shutdown => None,
        }
    }
}

/// Everything a connection thread needs, shared by `Arc`.
struct Shared {
    dispatcher: Dispatcher,
    pool: WorkerPool,
    limits: ServerLimits,
    latency: LatencyMetrics,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn status(&self) -> StatusReply {
        self.dispatcher.status_reply(
            self.uptime_ms(),
            self.pool.in_flight() as u64,
            self.pool.workers() as u64,
        )
    }

    fn metrics(&self) -> MetricsReply {
        self.dispatcher
            .metrics_reply(self.uptime_ms(), self.limits.telemetry)
    }

    /// A snapshot for the file exporter: identical shape to a `metrics`
    /// reply but not counted as a served request, so exporter ticks never
    /// inflate `served.metrics`.
    fn export(&self) -> MetricsReply {
        self.dispatcher
            .export_reply(self.uptime_ms(), self.limits.telemetry)
    }
}

/// The daemon: bind, then [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` with a fresh run cache bounded at
    /// [`ServerLimits::cache_capacity`], accounting into the daemon's own
    /// telemetry registry (one unmerged snapshot serves `metrics`).
    pub fn bind(addr: impl ToSocketAddrs, limits: ServerLimits) -> io::Result<Server> {
        let registry = Self::registry_for(&limits);
        let cache = Arc::new(RunCache::with_capacity_and_telemetry(
            limits.cache_capacity,
            &registry,
        ));
        Self::build(addr, limits, cache, registry)
    }

    /// Bind `addr` serving from a caller-provided cache (tests inject slow
    /// or pre-warmed runners this way). The cache keeps its own registry;
    /// `metrics` replies merge it into the daemon's snapshot.
    pub fn with_cache(
        addr: impl ToSocketAddrs,
        limits: ServerLimits,
        cache: Arc<RunCache>,
    ) -> io::Result<Server> {
        let registry = Self::registry_for(&limits);
        Self::build(addr, limits, cache, registry)
    }

    fn registry_for(limits: &ServerLimits) -> MetricsRegistry {
        if limits.telemetry {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        }
    }

    fn build(
        addr: impl ToSocketAddrs,
        limits: ServerLimits,
        cache: Arc<RunCache>,
        registry: MetricsRegistry,
    ) -> io::Result<Server> {
        cache.set_capacity(limits.cache_capacity);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        if limits.telemetry {
            // Streamed audits meter their event flow through the process
            // global (`sink.events`); point it at this daemon's registry.
            hypersweep_telemetry::install_global(&registry);
        }
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                dispatcher: Dispatcher::with_telemetry(cache, limits.max_dim, &registry),
                pool: WorkerPool::with_telemetry(limits.workers, limits.queue_capacity, &registry),
                latency: LatencyMetrics::resolve(&registry),
                limits,
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] drain and return when raised.
    pub fn shutdown_flag(&self) -> Arc<impl Fn() + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.shutdown.store(true, Ordering::SeqCst))
    }

    /// Serve until SIGINT or a `shutdown` request, then drain in-flight
    /// work, join every thread, emit a final status line on stdout, and
    /// return the final stats.
    pub fn run(self) -> io::Result<ServerStats> {
        let Server { listener, shared } = self;
        let exporter = match &shared.limits.metrics_file {
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                let shared = Arc::clone(&shared);
                Some(std::thread::spawn(move || export_metrics(file, &shared)))
            }
            None => None,
        };
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::SeqCst) && !sigint::seen() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if live.load(Ordering::SeqCst) >= shared.limits.max_connections {
                        refuse_connection(stream);
                        continue;
                    }
                    live.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&shared);
                    let live = Arc::clone(&live);
                    handles.push(std::thread::spawn(move || {
                        let _ = serve_connection(stream, &shared);
                        live.fetch_sub(1, Ordering::SeqCst);
                    }));
                    handles.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: raise the flag for connection threads, finish queued work,
        // then join everything — no leaked threads.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.pool.shutdown();
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(handle) = exporter {
            // The exporter notices the flag within one poll interval and
            // appends its final post-drain snapshot before exiting.
            let _ = handle.join();
        }
        let stats = shared.status();
        let mut stdout = io::stdout().lock();
        let _ = writeln!(stdout, "{}", Response::Status(stats.clone()).to_line());
        let _ = stdout.flush();
        Ok(stats)
    }
}

/// The `--metrics-file` exporter loop: append one `metrics` JSON line per
/// interval (each line parses with [`Response::parse`]), plus a final
/// snapshot when the daemon drains. Write failures end the export quietly —
/// observability must never take the serving path down.
fn export_metrics(mut file: File, shared: &Arc<Shared>) {
    let interval = shared.limits.metrics_interval;
    loop {
        let mut waited = Duration::ZERO;
        while waited < interval && !shared.shutdown.load(Ordering::SeqCst) {
            let step = POLL_INTERVAL.min(interval - waited);
            std::thread::sleep(step);
            waited += step;
        }
        let line = Response::Metrics(shared.export()).to_line();
        if writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .is_err()
        {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Over the connection cap: send one `busy` line and close.
fn refuse_connection(mut stream: TcpStream) {
    let response = Response::Error(WireError::new(
        ErrorKind::Busy,
        "connection limit reached; retry later",
    ));
    let _ = writeln!(stream, "{}", response.to_line());
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    writeln!(stream, "{}", response.to_line())?;
    stream.flush()
}

/// What one pass over the socket buffer produced.
enum LineStep {
    /// A complete request line (possibly empty).
    Line(Vec<u8>),
    /// A complete line that exceeded the size bound (content discarded).
    Oversized,
    /// The client closed the connection.
    Eof,
    /// Read timeout — caller should check the shutdown flag and retry.
    Idle,
}

/// Accumulate one newline-terminated line, never buffering more than
/// `max_len` bytes: once a line exceeds the bound its remainder is consumed
/// and discarded, and the line reports as [`LineStep::Oversized`].
fn read_line_step(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    discarding: &mut bool,
    max_len: usize,
) -> io::Result<LineStep> {
    loop {
        let (newline_at, chunk_len) = match reader.fill_buf() {
            Ok([]) => return Ok(LineStep::Eof),
            Ok(chunk) => {
                let newline_at = chunk.iter().position(|&b| b == b'\n');
                let take = newline_at.unwrap_or(chunk.len());
                if !*discarding {
                    buf.extend_from_slice(&chunk[..take]);
                    if buf.len() > max_len {
                        *discarding = true;
                        buf.clear();
                    }
                }
                (newline_at, chunk.len())
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(LineStep::Idle)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        match newline_at {
            Some(pos) => {
                reader.consume(pos + 1);
                if *discarding {
                    *discarding = false;
                    return Ok(LineStep::Oversized);
                }
                return Ok(LineStep::Line(std::mem::take(buf)));
            }
            None => reader.consume(chunk_len),
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    let mut discarding = false;
    loop {
        let line = match read_line_step(
            &mut reader,
            &mut buf,
            &mut discarding,
            shared.limits.max_line_bytes,
        )? {
            LineStep::Eof => return Ok(()),
            LineStep::Idle => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            LineStep::Oversized => {
                shared.dispatcher.note_error();
                write_response(
                    &mut writer,
                    &Response::Error(WireError::new(
                        ErrorKind::Oversized,
                        format!(
                            "request line exceeds {} bytes",
                            shared.limits.max_line_bytes
                        ),
                    )),
                )?;
                continue;
            }
            LineStep::Line(line) => line,
        };
        let Ok(text) = String::from_utf8(line) else {
            shared.dispatcher.note_error();
            write_response(
                &mut writer,
                &Response::Error(WireError::new(
                    ErrorKind::Malformed,
                    "request line is not valid UTF-8",
                )),
            )?;
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let response = handle_line(&text, shared);
        write_response(&mut writer, &response)?;
    }
}

/// Answer one request line (connection-agnostic; the determinism test also
/// calls this path through a live socket).
fn handle_line(text: &str, shared: &Arc<Shared>) -> Response {
    let request = match Request::parse(text) {
        Ok(request) => request,
        Err(e) => {
            shared.dispatcher.note_error();
            return Response::Error(e);
        }
    };
    let timer = shared.latency.for_request(&request).map(|histogram| {
        let started = Instant::now();
        (histogram, started)
    });
    let response = match request {
        Request::Status => Response::Status(shared.status()),
        Request::Metrics => Response::Metrics(shared.metrics()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::Shutdown(ShutdownReply {
                draining: shared.pool.in_flight() as u64,
            })
        }
        compute @ (Request::Plan { .. } | Request::Predict { .. } | Request::Audit { .. }) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.dispatcher.note_error();
                return Response::Error(WireError::new(
                    ErrorKind::ShuttingDown,
                    "server is draining; no new work accepted",
                ));
            }
            dispatch_compute(compute, shared)
        }
    };
    if let Some((histogram, started)) = timer {
        histogram.record_duration(started.elapsed());
    }
    response
}

/// Hand a compute request to the pool and wait (bounded) for its answer.
fn dispatch_compute(request: Request, shared: &Arc<Shared>) -> Response {
    let (tx, rx) = mpsc::channel();
    let job_shared = Arc::clone(shared);
    let submitted = shared.pool.try_submit(move || {
        let _ = tx.send(job_shared.dispatcher.handle(request));
    });
    if submitted.is_err() {
        shared.dispatcher.note_busy();
        return Response::Error(WireError::new(
            ErrorKind::Busy,
            "dispatch queue is full; retry later",
        ));
    }
    match rx.recv_timeout(shared.limits.request_timeout) {
        Ok(response) => response,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The run keeps executing and will warm the cache; only this
            // client's wait is abandoned.
            shared.dispatcher.note_timeout();
            Response::Error(WireError::new(
                ErrorKind::Timeout,
                format!(
                    "request exceeded the {} ms budget",
                    shared.limits.request_timeout.as_millis()
                ),
            ))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker dropped the sender without replying: the job
            // panicked. The pool caught it (`pool.job_panics` counts it)
            // and the worker thread survives; this client gets a
            // structured internal error instead of a hung wait.
            shared.dispatcher.note_error();
            Response::Error(WireError::new(
                ErrorKind::Internal,
                "request worker failed before producing a reply; \
                 see the pool.job_panics counter",
            ))
        }
    }
}
