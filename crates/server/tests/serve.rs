//! End-to-end daemon tests over real TCP sockets: robustness (oversized
//! lines, malformed input, backpressure, timeouts) and graceful shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use hypersweep_analysis::{execute_run, RunCache, StrategyKind};
use hypersweep_server::{Client, ErrorKind, Request, Response, ServerLimits};
use hypersweep_testutil::{quick_limits, spawn_bound_server, spawn_server};

#[test]
fn serves_all_request_types_and_survives_malformed_lines() {
    let (addr, shutdown, handle) = spawn_server(quick_limits(), Arc::new(RunCache::new()));
    let mut client = Client::connect(&addr).expect("connect");

    // Malformed lines produce structured errors, not dropped connections.
    for (line, kind) in [
        (r#"{"type":"plan","strategy":"clea"#, ErrorKind::Malformed),
        (r#"{"type":"teleport"}"#, ErrorKind::UnknownRequest),
        (
            r#"{"type":"audit","strategy":"quantum","dim":4}"#,
            ErrorKind::UnknownStrategy,
        ),
        (
            r#"{"type":"plan","strategy":"clean","dim":0}"#,
            ErrorKind::BadDimension,
        ),
        (
            r#"{"type":"plan","strategy":"clean","dim":25}"#,
            ErrorKind::BadDimension,
        ),
    ] {
        let raw = client.send_raw(line).expect(line);
        let Ok(Response::Error(e)) = Response::parse(&raw) else {
            panic!("{line} -> {raw}");
        };
        assert_eq!(e.kind, kind, "{line}");
    }

    // The same connection still serves real work after all those errors.
    let Response::Plan(plan) = client
        .request(&Request::Plan {
            strategy: StrategyKind::Clean,
            dim: 6,
        })
        .expect("plan")
    else {
        panic!("expected plan reply");
    };
    assert_eq!(plan.team, 26);

    let Response::Predict(predict) = client
        .request(&Request::Predict {
            strategy: StrategyKind::Visibility,
            dim: 8,
        })
        .expect("predict")
    else {
        panic!("expected predict reply");
    };
    assert_eq!(predict.agents, 128);

    let Response::Audit(audit) = client
        .request(&Request::Audit {
            strategy: StrategyKind::Cloning,
            dim: 6,
        })
        .expect("audit")
    else {
        panic!("expected audit reply");
    };
    assert!(audit.monotone && audit.contiguous && audit.all_clean);
    assert_eq!(audit.worker_moves, 63); // n - 1

    let Response::Status(status) = client.request(&Request::Status).expect("status") else {
        panic!("expected status reply");
    };
    assert_eq!(status.served.plan, 1);
    assert_eq!(status.served.predict, 1);
    assert_eq!(status.served.audit, 1);
    assert_eq!(status.served.errors, 5);

    shutdown();
    let stats = handle.join().expect("no leaked panics");
    assert_eq!(stats.served.audit, 1);
    assert_eq!(stats.in_flight, 0, "drained server still had work queued");
}

#[test]
fn oversized_lines_are_discarded_without_killing_the_connection() {
    let limits = ServerLimits {
        max_line_bytes: 512,
        ..quick_limits()
    };
    let (addr, shutdown, handle) = spawn_server(limits, Arc::new(RunCache::new()));
    let mut client = Client::connect(&addr).expect("connect");

    // 64 KiB of garbage on one line: bounded buffering, structured error.
    let huge = "x".repeat(64 * 1024);
    let raw = client.send_raw(&huge).expect("oversized line answered");
    let Ok(Response::Error(e)) = Response::parse(&raw) else {
        panic!("oversized -> {raw}");
    };
    assert_eq!(e.kind, ErrorKind::Oversized);

    // The connection keeps serving.
    let response = client
        .request(&Request::Predict {
            strategy: StrategyKind::Clean,
            dim: 4,
        })
        .expect("request after oversized line");
    assert!(response.is_ok(), "{response:?}");

    shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn saturation_returns_busy_and_timeouts_expire() {
    // A runner that blocks until released, making pool occupancy
    // deterministic.
    let (release, gate) = mpsc::channel::<()>();
    let gate = Mutex::new(gate);
    let cache = Arc::new(RunCache::with_runner(move |key| {
        gate.lock().unwrap().recv().ok();
        execute_run(key)
    }));
    let limits = ServerLimits {
        workers: 1,
        queue_capacity: 1,
        request_timeout: Duration::from_millis(100),
        ..ServerLimits::default()
    };
    let (addr, shutdown, handle) = spawn_server(limits, cache);

    // Distinct dims so the cache cannot deduplicate the three requests.
    let audit = |dim| Request::Audit {
        strategy: StrategyKind::Clean,
        dim,
    };
    let spawn_waiter = |dim| {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.request(&audit(dim)).expect("response")
        })
    };
    let mut probe = Client::connect(&addr).expect("probe connect");
    let in_flight = |probe: &mut Client| -> u64 {
        match probe.request(&Request::Status).expect("status") {
            Response::Status(s) => s.in_flight,
            other => panic!("{other:?}"),
        }
    };

    // Occupy the single worker, then the single queue slot.
    let first = spawn_waiter(3);
    while in_flight(&mut probe) < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let second = spawn_waiter(4);
    while in_flight(&mut probe) < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // The pool is saturated: the next compute request is refused as busy
    // immediately (it never waits on the timeout).
    let mut third = Client::connect(&addr).expect("connect");
    let Response::Error(e) = third.request(&audit(5)).expect("busy reply") else {
        panic!("expected busy");
    };
    assert_eq!(e.kind, ErrorKind::Busy);

    // The two waiters outlive their 100ms budget: both time out.
    let Response::Error(t1) = first.join().expect("waiter 1") else {
        panic!("expected timeout");
    };
    let Response::Error(t2) = second.join().expect("waiter 2") else {
        panic!("expected timeout");
    };
    assert_eq!(t1.kind, ErrorKind::Timeout);
    assert_eq!(t2.kind, ErrorKind::Timeout);

    // Release the gated runs; the abandoned jobs complete and warm the
    // cache, so a repeat of the first request is now an instant hit.
    release.send(()).ok();
    release.send(()).ok();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match probe.request(&audit(3)).expect("retry") {
            Response::Audit(a) => {
                assert!(a.monotone);
                break;
            }
            // Transient while the released jobs drain the queue: the
            // reply can still be busy (the queue slot is not yet free)
            // or a timeout (the run is still finishing).
            Response::Error(e) if e.kind == ErrorKind::Timeout || e.kind == ErrorKind::Busy => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "request never completed after release"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("{other:?}"),
        }
    }

    let Response::Status(status) = probe.request(&Request::Status).expect("status") else {
        panic!()
    };
    assert!(status.served.busy >= 1);
    assert!(status.served.timeouts >= 2);

    shutdown();
    let stats = handle.join().expect("clean shutdown");
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn metrics_request_reports_live_series_after_warm_audits() {
    // bind() (not with_cache) so the run cache accounts straight into the
    // daemon's registry — the path `hypersweep serve` takes.
    let (addr, shutdown, handle) = spawn_bound_server(quick_limits());
    let mut client = Client::connect(&addr).expect("connect");

    // Two identical audits: one miss that executes, one cache hit.
    for _ in 0..2 {
        let response = client
            .request(&Request::Audit {
                strategy: StrategyKind::Clean,
                dim: 5,
            })
            .expect("audit");
        assert!(response.is_ok(), "{response:?}");
    }

    let Response::Metrics(reply) = client.request(&Request::Metrics).expect("metrics") else {
        panic!("expected a metrics reply");
    };
    assert!(reply.enabled);
    assert!(!reply.version.is_empty());
    let series = &reply.series;
    // Request accounting.
    assert_eq!(series.counter("server.requests.audit"), Some(2));
    assert_eq!(series.counter("server.requests.metrics"), Some(1));
    // Live cache series, straight from the daemon's registry (no merge).
    assert_eq!(series.counter("cache.hits"), Some(1));
    assert_eq!(series.counter("cache.misses"), Some(1));
    assert_eq!(series.gauge("cache.entries"), Some(1));
    // Pool series: both audits dispatched through the worker pool.
    assert_eq!(series.counter("pool.jobs"), Some(2));
    assert_eq!(series.counter("pool.job_panics"), Some(0));
    // Latency histograms recorded one sample per audit request.
    let latency = series
        .histogram("server.latency.audit_us")
        .expect("audit latency histogram");
    assert_eq!(latency.count, 2);
    assert!(series
        .histogram("cache.run_us")
        .is_some_and(|h| h.count == 1));

    // A second metrics request observes the first (and itself).
    let Response::Metrics(again) = client.request(&Request::Metrics).expect("metrics") else {
        panic!("expected a metrics reply");
    };
    assert_eq!(again.series.counter("server.requests.metrics"), Some(2));
    assert!(again
        .series
        .histogram("server.latency.metrics_us")
        .is_some_and(|h| h.count >= 1));

    shutdown();
    let stats = handle.join().expect("clean shutdown");
    assert_eq!(stats.served.metrics, 2);
}

#[test]
fn disabled_telemetry_still_answers_metrics_with_accounting_only() {
    let limits = ServerLimits {
        telemetry: false,
        ..quick_limits()
    };
    let (addr, shutdown, handle) = spawn_server(limits, Arc::new(RunCache::new()));
    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .request(&Request::Audit {
            strategy: StrategyKind::Clean,
            dim: 4,
        })
        .expect("audit");
    assert!(response.is_ok(), "{response:?}");

    let Response::Metrics(reply) = client.request(&Request::Metrics).expect("metrics") else {
        panic!("expected a metrics reply");
    };
    assert!(!reply.enabled);
    // The always-on accounting survives the disabled registry…
    assert_eq!(reply.series.counter("server.requests.audit"), Some(1));
    assert_eq!(reply.series.counter("cache.misses"), Some(1));
    // …but nothing was recorded into the disabled pool/latency series.
    assert!(reply.series.histogram("server.latency.audit_us").is_none());
    assert!(reply.series.counter("pool.jobs").is_none());

    shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn panicking_runner_yields_internal_error_and_daemon_survives() {
    // A runner that panics on dim 3 exactly once, then behaves.
    static PANICS: AtomicUsize = AtomicUsize::new(0);
    let cache = Arc::new(RunCache::with_runner(|key| {
        if key.dim == 3 && PANICS.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("injected runner failure");
        }
        execute_run(key)
    }));
    let (addr, shutdown, handle) = spawn_server(quick_limits(), cache);
    let mut client = Client::connect(&addr).expect("connect");
    let audit = |dim| Request::Audit {
        strategy: StrategyKind::Clean,
        dim,
    };

    // The panicked job surfaces as a structured internal error — not a
    // hung client, not a dead daemon.
    let Response::Error(e) = client.request(&audit(3)).expect("internal error reply") else {
        panic!("expected an error reply");
    };
    assert_eq!(e.kind, ErrorKind::Internal);
    assert!(e.message.contains("pool.job_panics"), "{}", e.message);

    // The same connection and the same cache key still work: the retry
    // re-executes (the in-flight guard released the key) and succeeds.
    let Response::Audit(a) = client.request(&audit(3)).expect("retry") else {
        panic!("expected a successful retry");
    };
    assert!(a.monotone && a.contiguous && a.all_clean);
    assert_eq!(PANICS.load(Ordering::SeqCst), 2);

    // The panic is visible in the telemetry, and the error was counted.
    let Response::Metrics(reply) = client.request(&Request::Metrics).expect("metrics") else {
        panic!("expected a metrics reply");
    };
    assert_eq!(reply.series.counter("pool.job_panics"), Some(1));
    let Response::Status(status) = client.request(&Request::Status).expect("status") else {
        panic!("expected a status reply");
    };
    assert!(status.served.errors >= 1);

    shutdown();
    let stats = handle.join().expect("daemon drains after a panicked job");
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn metrics_file_exporter_appends_parseable_snapshots() {
    let dir = std::env::temp_dir().join(format!(
        "hypersweep-metrics-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.jsonl");
    let limits = ServerLimits {
        metrics_file: Some(path.clone()),
        metrics_interval: Duration::from_millis(100),
        ..quick_limits()
    };
    let (addr, shutdown, handle) = spawn_server(limits, Arc::new(RunCache::new()));
    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .request(&Request::Audit {
            strategy: StrategyKind::Visibility,
            dim: 4,
        })
        .expect("audit");
    assert!(response.is_ok(), "{response:?}");

    // Let at least one interval tick elapse, then drain (which appends a
    // final snapshot before run() returns).
    std::thread::sleep(Duration::from_millis(250));
    shutdown();
    handle.join().expect("clean shutdown");

    let exported = std::fs::read_to_string(&path).expect("exporter wrote the file");
    let lines: Vec<&str> = exported.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(
        lines.len() >= 2,
        "expected interval ticks plus a final snapshot, got {} lines",
        lines.len()
    );
    for line in &lines {
        let Ok(Response::Metrics(reply)) = Response::parse(line) else {
            panic!("unparseable exporter line: {line}");
        };
        assert!(reply.enabled);
    }
    // The final (post-drain) snapshot saw the audit's request counter,
    // and exporter ticks never count as served metrics requests.
    let Ok(Response::Metrics(last)) = Response::parse(lines.last().expect("nonempty")) else {
        unreachable!()
    };
    assert_eq!(last.series.counter("server.requests.audit"), Some(1));
    assert_eq!(last.series.counter("server.requests.metrics"), Some(0));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn connection_cap_refuses_excess_clients_with_busy() {
    let limits = ServerLimits {
        max_connections: 1,
        ..quick_limits()
    };
    let (addr, shutdown, handle) = spawn_server(limits, Arc::new(RunCache::new()));

    let mut resident = Client::connect(&addr).expect("first connection");
    assert!(resident.request(&Request::Status).expect("status").is_ok());

    // The second connection gets one busy line at accept. Read it without
    // writing anything: a write racing the server's close can turn into an
    // RST that discards the buffered reply.
    use std::io::BufRead as _;
    let refused = std::net::TcpStream::connect(&addr).expect("tcp connect still succeeds");
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut raw = String::new();
    std::io::BufReader::new(refused)
        .read_line(&mut raw)
        .expect("busy line");
    let Ok(Response::Error(e)) = Response::parse(raw.trim_end()) else {
        panic!("expected busy, got {raw}");
    };
    assert_eq!(e.kind, ErrorKind::Busy);

    // The resident connection is unaffected.
    assert!(resident.request(&Request::Status).expect("status").is_ok());

    shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn pipelined_batches_get_in_order_replies() {
    let (addr, shutdown, handle) = spawn_server(quick_limits(), Arc::new(RunCache::new()));

    // The reference stream: one request per write. Status requests are
    // excluded — their replies carry live counters that legitimately
    // differ between the serial and pipelined passes.
    let workload: Vec<Request> = (0..32)
        .map(|s| hypersweep_server::client::mixed_request(s, 6))
        .filter(|r| !matches!(r, Request::Status))
        .collect();
    let mut serial = Client::connect(&addr).expect("connect");
    let expected: Vec<String> = workload
        .iter()
        .map(|r| serial.send_raw(&r.to_line()).expect("reply"))
        .collect();

    // The same stream as one write per batch, across several depths: the
    // reactor must answer in request order with identical bytes.
    for depth in [2, 5, 24] {
        let mut pipelined = Client::connect(&addr).expect("connect");
        let mut got = Vec::new();
        for batch in workload.chunks(depth) {
            let lines: Vec<String> = batch.iter().map(Request::to_line).collect();
            got.extend(pipelined.send_raw_batch(&lines).expect("batch"));
        }
        assert_eq!(got, expected, "depth {depth} reordered or altered replies");
    }

    shutdown();
    let stats = handle.join().expect("clean shutdown");
    assert_eq!(stats.served.errors, 0);
}

#[test]
fn mixed_error_and_success_pipelines_keep_order() {
    let (addr, shutdown, handle) = spawn_server(quick_limits(), Arc::new(RunCache::new()));
    let mut client = Client::connect(&addr).expect("connect");

    // One write carrying good requests, a parse error, an unknown
    // strategy, and an audit: four replies, in exactly that order.
    let lines = [
        r#"{"type":"predict","strategy":"clean","dim":5}"#,
        r#"{"type":"plan","strategy":"clea"#,
        r#"{"type":"predict","strategy":"quantum","dim":5}"#,
        r#"{"type":"audit","strategy":"clean","dim":4}"#,
    ];
    let replies = client.send_raw_batch(&lines).expect("batch");
    assert_eq!(replies.len(), 4);
    assert!(
        matches!(Response::parse(&replies[0]), Ok(Response::Predict(_))),
        "{}",
        replies[0]
    );
    let Ok(Response::Error(e1)) = Response::parse(&replies[1]) else {
        panic!("{}", replies[1]);
    };
    assert_eq!(e1.kind, ErrorKind::Malformed);
    let Ok(Response::Error(e2)) = Response::parse(&replies[2]) else {
        panic!("{}", replies[2]);
    };
    assert_eq!(e2.kind, ErrorKind::UnknownStrategy);
    assert!(
        matches!(Response::parse(&replies[3]), Ok(Response::Audit(_))),
        "{}",
        replies[3]
    );

    shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn slow_loris_partial_lines_do_not_stall_other_clients() {
    use std::io::{BufRead, BufReader, Write};

    let (addr, shutdown, handle) = spawn_server(quick_limits(), Arc::new(RunCache::new()));

    // A client that dribbles a request one byte at a time, never
    // finishing the line while we measure.
    let mut loris = std::net::TcpStream::connect(&addr).expect("connect");
    loris.set_nodelay(true).expect("nodelay");
    let line = br#"{"type":"predict","strategy":"visibility","dim":6}"#;
    let (head, tail) = line.split_at(line.len() - 5);
    for chunk in head.chunks(7) {
        loris.write_all(chunk).expect("dribble");
        loris.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));

        // The reactor is not blocked on the unfinished line: a second
        // client gets a full round trip mid-dribble.
        let mut other = Client::connect(&addr).expect("connect");
        let response = other.request(&Request::Status).expect("status");
        assert!(response.is_ok(), "{response:?}");
    }

    // Completing the line gets the dribbled request its reply.
    loris.write_all(tail).expect("tail");
    loris.write_all(b"\n").expect("newline");
    loris.flush().expect("flush");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reply = String::new();
    BufReader::new(loris.try_clone().expect("clone"))
        .read_line(&mut reply)
        .expect("reply");
    let Ok(Response::Predict(p)) = Response::parse(reply.trim_end()) else {
        panic!("dribbled request got {reply}");
    };
    assert_eq!(p.agents, 32);

    // A half-line abandoned at disconnect is dropped without a reply —
    // and without wedging the daemon.
    let mut quitter = std::net::TcpStream::connect(&addr).expect("connect");
    quitter.write_all(b"{\"type\":\"sta").expect("partial");
    quitter.flush().expect("flush");
    drop(quitter);

    shutdown();
    let stats = handle.join().expect("clean shutdown");
    assert_eq!(stats.served.errors, 0, "partial lines must not error");
}

#[test]
fn uds_listener_serves_and_reclaims_stale_sockets() {
    let dir = std::env::temp_dir().join(format!(
        "hypersweep-uds-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let socket = dir.join("daemon.sock");

    // A stale socket file from a daemon that died without unlinking:
    // bind() must reclaim it (nothing accepts on it).
    {
        let dead = std::os::unix::net::UnixListener::bind(&socket).expect("stale bind");
        drop(dead);
    }
    assert!(socket.exists(), "stale socket file is on disk");

    let limits = ServerLimits {
        uds_path: Some(socket.clone()),
        ..quick_limits()
    };
    let (addr, shutdown, handle) = spawn_server(limits, Arc::new(RunCache::new()));

    // Both transports answer, with identical bytes for the same request.
    let request = Request::Predict {
        strategy: StrategyKind::Visibility,
        dim: 7,
    };
    let mut tcp = Client::connect(&addr).expect("tcp connect");
    let mut uds = Client::connect_uds(&socket).expect("uds connect");
    let over_tcp = tcp.send_raw(&request.to_line()).expect("tcp reply");
    let over_uds = uds.send_raw(&request.to_line()).expect("uds reply");
    assert_eq!(over_tcp, over_uds, "transports must serve identical bytes");

    // Pipelining works over the Unix socket too.
    let audits: Vec<String> = (3..=6)
        .map(|dim| {
            Request::Audit {
                strategy: StrategyKind::Clean,
                dim,
            }
            .to_line()
        })
        .collect();
    for reply in uds.send_raw_batch(&audits).expect("uds batch") {
        let Ok(Response::Audit(a)) = Response::parse(&reply) else {
            panic!("{reply}");
        };
        assert!(a.monotone && a.contiguous && a.all_clean);
    }

    shutdown();
    let stats = handle.join().expect("clean shutdown");
    assert_eq!(stats.served.errors, 0);
    assert!(
        !socket.exists(),
        "drain must unlink the socket file so the next daemon binds cleanly"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_request_drains_and_reports_final_stats() {
    static RUNS: AtomicUsize = AtomicUsize::new(0);
    let cache = Arc::new(RunCache::with_runner(|key| {
        RUNS.fetch_add(1, Ordering::SeqCst);
        execute_run(key)
    }));
    let (addr, _shutdown, handle) = spawn_server(quick_limits(), cache);
    let mut client = Client::connect(&addr).expect("connect");

    for dim in [3, 4, 5] {
        let response = client
            .request(&Request::Audit {
                strategy: StrategyKind::Visibility,
                dim,
            })
            .expect("audit");
        assert!(response.is_ok(), "{response:?}");
    }

    // Replies arrive a beat before the worker thread finishes its
    // bookkeeping; wait for the pool to report quiescent so the ack's
    // draining count is deterministic.
    loop {
        let Response::Status(s) = client.request(&Request::Status).expect("status") else {
            panic!("expected status reply");
        };
        if s.in_flight == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let Response::Shutdown(ack) = client.request(&Request::Shutdown).expect("shutdown") else {
        panic!("expected shutdown ack");
    };
    assert_eq!(ack.draining, 0);

    // run() returns only after every worker and connection thread is
    // joined; the final stats reflect the whole session.
    let stats = handle.join().expect("no leaked threads or panics");
    assert_eq!(stats.served.audit, 3);
    assert_eq!(RUNS.load(Ordering::SeqCst), 3);
    assert_eq!(stats.cache.misses, 3);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn warm_restart_serves_byte_identical_replies_without_recomputing() {
    let dir = std::env::temp_dir().join(format!("hypersweep-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let persist = dir.join("cache.jsonl");
    let limits = ServerLimits {
        persist_path: Some(persist.clone()),
        ..quick_limits()
    };
    let audits = [
        r#"{"type":"audit","strategy":"clean","dim":6}"#,
        r#"{"type":"audit","strategy":"visibility","dim":5}"#,
        r#"{"type":"audit","strategy":"cloning","dim":4}"#,
    ];

    // First life: compute the audits, then drain gracefully. The drain
    // flushes the append-log and compacts it into a snapshot.
    let (addr, shutdown, handle) = spawn_bound_server(limits.clone());
    let mut client = Client::connect(&addr).expect("connect cold");
    let cold: Vec<String> = audits
        .iter()
        .map(|line| client.send_raw(line).expect("cold audit"))
        .collect();
    shutdown();
    let stats = handle.join().expect("cold drain");
    assert_eq!(stats.cache.misses, 3, "cold audits all computed");
    let log = std::fs::read_to_string(&persist).expect("persisted log exists");
    assert_eq!(log.lines().count(), 3, "one compacted record per audit");

    // Second life: the same requests answer byte-identically from the
    // warm-loaded cache — no recomputation.
    let (addr, shutdown, handle) = spawn_bound_server(limits);
    let mut client = Client::connect(&addr).expect("connect warm");
    for (line, cold_reply) in audits.iter().zip(&cold) {
        let warm_reply = client.send_raw(line).expect("warm audit");
        assert_eq!(&warm_reply, cold_reply, "warm reply must be byte-identical");
    }
    shutdown();
    let stats = handle.join().expect("warm drain");
    assert_eq!(stats.cache.misses, 0, "warm restart recomputed a run");
    assert_eq!(stats.cache.hits, 3, "every audit served from warm cache");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_load_survives_a_torn_append_log_tail() {
    let dir = std::env::temp_dir().join(format!("hypersweep-torn-tail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let persist = dir.join("cache.jsonl");
    let limits = ServerLimits {
        persist_path: Some(persist.clone()),
        ..quick_limits()
    };

    // First life writes two records, then the "crash": chop the file
    // mid-record, the way a kill -9 between write and fsync can leave it.
    let (addr, shutdown, handle) = spawn_bound_server(limits.clone());
    let mut client = Client::connect(&addr).expect("connect");
    client
        .send_raw(r#"{"type":"audit","strategy":"clean","dim":6}"#)
        .expect("first audit");
    client
        .send_raw(r#"{"type":"audit","strategy":"visibility","dim":5}"#)
        .expect("second audit");
    shutdown();
    handle.join().expect("drain");
    let log = std::fs::read(&persist).expect("log exists");
    assert!(log.len() > 24);
    std::fs::write(&persist, &log[..log.len() - 17]).unwrap();

    // Second life: the valid prefix loads, the torn tail is skipped, and
    // the daemon binds without error.
    let (addr, shutdown, handle) = spawn_bound_server(limits);
    let mut client = Client::connect(&addr).expect("connect after tear");
    let raw = client
        .send_raw(r#"{"type":"audit","strategy":"clean","dim":6}"#)
        .expect("audit after tear");
    assert!(Response::parse(&raw).expect("parses").is_ok(), "{raw}");
    shutdown();
    let stats = handle.join().expect("drain after tear");
    assert_eq!(stats.cache.hits, 1, "valid prefix served the first audit");
    let _ = std::fs::remove_dir_all(&dir);
}
