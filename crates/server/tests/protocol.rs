//! Wire-protocol round trips and structured parse errors.
//!
//! Every request and response variant must survive
//! serialize → parse → serialize byte-identically (the protocol's field
//! order is fixed), and every malformed input must map to a structured
//! [`ErrorKind`], never a panic.

use hypersweep_scenario::ScenarioId;
use hypersweep_server::{
    AuditReply, CacheStats, ErrorKind, MetricsReply, PhasePlan, PlanReply, PredictReply, Request,
    Response, ServedCounts, ShutdownReply, StatusReply, WireError, WIRE_STRATEGIES,
};
use hypersweep_sim::TraceSummary;
use hypersweep_telemetry::MetricsRegistry;
use hypersweep_topology::GridInstance;

fn round_trip_request(request: Request) {
    let line = request.to_line();
    let parsed = Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
    assert_eq!(parsed, request, "request changed across the wire");
    assert_eq!(parsed.to_line(), line, "re-serialization differs");
}

fn round_trip_response(response: Response) {
    let line = response.to_line();
    let parsed = Response::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
    assert_eq!(parsed, response, "response changed across the wire");
    assert_eq!(parsed.to_line(), line, "re-serialization differs");
}

#[test]
fn every_request_variant_round_trips() {
    for strategy in WIRE_STRATEGIES {
        for dim in [1, 6, 20] {
            round_trip_request(Request::Plan { strategy, dim });
            round_trip_request(Request::Predict { strategy, dim });
            round_trip_request(Request::Audit { strategy, dim });
        }
    }
    for scenario in [ScenarioId::Grid, ScenarioId::Dynamic] {
        for instance in [
            GridInstance::Full,
            GridInstance::Holes(42),
            GridInstance::Corridor,
        ] {
            for side in [1, 6, 16] {
                round_trip_request(Request::ScenarioPlan {
                    scenario,
                    side,
                    instance,
                });
                round_trip_request(Request::ScenarioPredict {
                    scenario,
                    side,
                    instance,
                });
                round_trip_request(Request::ScenarioAudit {
                    scenario,
                    side,
                    instance,
                });
            }
        }
    }
    round_trip_request(Request::Status);
    round_trip_request(Request::Metrics);
    round_trip_request(Request::Shutdown);
}

#[test]
fn scenario_requests_ride_the_classic_tags() {
    let line = Request::ScenarioPlan {
        scenario: ScenarioId::Grid,
        side: 6,
        instance: GridInstance::Holes(42),
    }
    .to_line();
    assert_eq!(
        line,
        r#"{"type":"plan","scenario":"grid","dim":6,"instance":"holes:42"}"#
    );
    // An explicit "scenario":"hypercube" is the spelled-out default and
    // parses into the classic strategy/dim request.
    let classic =
        Request::parse(r#"{"type":"audit","scenario":"hypercube","strategy":"clean","dim":6}"#)
            .expect("explicit hypercube parses");
    assert_eq!(
        classic,
        Request::Audit {
            strategy: hypersweep_analysis::StrategyKind::Clean,
            dim: 6
        }
    );
    // A scenario request without an instance field gets the scenario's
    // default instance.
    let defaulted =
        Request::parse(r#"{"type":"plan","scenario":"dynamic","dim":5}"#).expect("parses");
    assert_eq!(
        defaulted,
        Request::ScenarioPlan {
            scenario: ScenarioId::Dynamic,
            side: 5,
            instance: GridInstance::Full,
        }
    );
}

#[test]
fn every_response_variant_round_trips() {
    round_trip_response(Response::Plan(PlanReply {
        strategy: "clean".into(),
        dim: 6,
        nodes: 64,
        team: 26,
        total_moves: 224,
        ideal_time: None,
        phases: vec![
            PhasePlan {
                phase: 0,
                active_agents: 6,
                nodes_cleaned: 6,
            },
            PhasePlan {
                phase: 1,
                active_agents: 21,
                nodes_cleaned: 15,
            },
        ],
    }));
    round_trip_response(Response::Predict(PredictReply {
        strategy: "visibility".into(),
        dim: 10,
        nodes: 1024,
        agents: 512,
        worker_moves: 2816,
        sync_moves_upper: None,
        ideal_time: Some(10),
    }));
    round_trip_response(Response::Audit(AuditReply {
        strategy: "cloning".into(),
        dim: 8,
        monotone: true,
        contiguous: true,
        all_clean: true,
        captured: Some(true),
        violations: 0,
        team_size: 128,
        worker_moves: 255,
        total_moves: 255,
        trace: TraceSummary {
            events: 511,
            spawns: 1,
            moves: 255,
            clones: 127,
            terminates: 128,
            max_time: 8,
        },
    }));
    round_trip_response(Response::Status(StatusReply {
        uptime_ms: 12345,
        version: "0.1.0".into(),
        in_flight: 2,
        workers: 4,
        max_dim: 20,
        served: ServedCounts {
            plan: 10,
            predict: 11,
            audit: 12,
            status: 13,
            metrics: 4,
            errors: 2,
            busy: 1,
            timeouts: 0,
        },
        cache: CacheStats {
            hits: 30,
            misses: 12,
            evictions: 3,
            entries: 9,
            capacity: Some(256),
            shards: 8,
        },
    }));
    round_trip_response(Response::Status(StatusReply {
        uptime_ms: 0,
        version: String::new(),
        in_flight: 0,
        workers: 1,
        max_dim: 1,
        served: ServedCounts::default(),
        cache: CacheStats {
            capacity: None, // unbounded serializes as null and comes back
            ..CacheStats::default()
        },
    }));
    round_trip_response(Response::Shutdown(ShutdownReply { draining: 3 }));
    for kind in [
        ErrorKind::Malformed,
        ErrorKind::UnknownRequest,
        ErrorKind::UnknownStrategy,
        ErrorKind::BadDimension,
        ErrorKind::Oversized,
        ErrorKind::Timeout,
        ErrorKind::Busy,
        ErrorKind::ShuttingDown,
        ErrorKind::Unsupported,
        ErrorKind::Internal,
        ErrorKind::UnknownScenario,
        ErrorKind::BadInstance,
    ] {
        round_trip_response(Response::Error(WireError::new(kind, "detail text")));
    }
}

#[test]
fn metrics_responses_round_trip() {
    // An empty snapshot (telemetry off, nothing recorded yet).
    round_trip_response(Response::Metrics(MetricsReply {
        uptime_ms: 0,
        version: "0.1.0".into(),
        enabled: false,
        series: hypersweep_telemetry::MetricsSnapshot::default(),
    }));
    // A live snapshot with every metric kind, including an empty histogram
    // (whose min/max serialize as null) and a negative gauge.
    let registry = MetricsRegistry::new();
    registry.counter("server.requests.audit").add(17);
    registry.gauge("pool.queued").set(-2);
    let h = registry.histogram("server.latency.audit_us");
    h.record(0);
    h.record(1023);
    h.record(u64::MAX);
    let _ = registry.histogram("cache.run_us"); // registered, never recorded
    round_trip_response(Response::Metrics(MetricsReply {
        uptime_ms: 98765,
        version: "9.9.9-test".into(),
        enabled: true,
        series: registry.snapshot(),
    }));
}

#[test]
fn malformed_metrics_responses_are_rejected() {
    // A metrics response whose series is not an object cannot parse.
    for line in [
        r#"{"type":"metrics","uptime_ms":1,"version":"x","enabled":true,"series":7}"#,
        r#"{"type":"metrics","uptime_ms":1,"version":"x","enabled":true,"series":[1,2]}"#,
        // A series entry with an unknown metric type.
        r#"{"type":"metrics","uptime_ms":1,"version":"x","enabled":true,"series":{"a":{"type":"sparkline","value":3}}}"#,
        // Missing the enabled flag entirely.
        r#"{"type":"metrics","uptime_ms":1,"version":"x","series":{}}"#,
    ] {
        assert!(Response::parse(line).is_err(), "must reject: {line}");
    }
    // The well-formed empty snapshot still parses.
    let ok = r#"{"type":"metrics","uptime_ms":1,"version":"x","enabled":true,"series":{}}"#;
    let parsed = Response::parse(ok).expect("empty series parses");
    let Response::Metrics(reply) = parsed else {
        panic!("expected a metrics response");
    };
    assert!(reply.series.is_empty());
}

#[test]
fn request_tags_are_flat_json() {
    let line = Request::Plan {
        strategy: hypersweep_analysis::StrategyKind::Clean,
        dim: 6,
    }
    .to_line();
    assert_eq!(line, r#"{"type":"plan","strategy":"clean","dim":6}"#);
    assert_eq!(Request::Status.to_line(), r#"{"type":"status"}"#);
}

#[test]
fn malformed_inputs_yield_structured_errors() {
    let cases: [(&str, ErrorKind); 14] = [
        // Truncated JSON.
        (r#"{"type":"plan","strategy":"clea"#, ErrorKind::Malformed),
        // Not JSON at all.
        ("hello there", ErrorKind::Malformed),
        // Valid JSON, wrong shape.
        (r#"[1,2,3]"#, ErrorKind::Malformed),
        // Missing type.
        (r#"{"strategy":"clean","dim":6}"#, ErrorKind::UnknownRequest),
        // Unknown request type.
        (r#"{"type":"teleport","dim":6}"#, ErrorKind::UnknownRequest),
        // Unknown strategy.
        (
            r#"{"type":"plan","strategy":"quantum","dim":6}"#,
            ErrorKind::UnknownStrategy,
        ),
        // Missing strategy.
        (r#"{"type":"audit","dim":6}"#, ErrorKind::UnknownStrategy),
        // Missing dim.
        (
            r#"{"type":"predict","strategy":"clean"}"#,
            ErrorKind::BadDimension,
        ),
        // Non-integer dim.
        (
            r#"{"type":"plan","strategy":"clean","dim":"six"}"#,
            ErrorKind::BadDimension,
        ),
        // Unknown scenario name.
        (
            r#"{"type":"plan","scenario":"torus","dim":6}"#,
            ErrorKind::UnknownScenario,
        ),
        // Non-string scenario field.
        (
            r#"{"type":"audit","scenario":7,"dim":6}"#,
            ErrorKind::UnknownScenario,
        ),
        // Unknown instance spelling.
        (
            r#"{"type":"plan","scenario":"grid","dim":6,"instance":"swiss-cheese"}"#,
            ErrorKind::BadInstance,
        ),
        // Malformed holes seed.
        (
            r#"{"type":"audit","scenario":"grid","dim":6,"instance":"holes:abc"}"#,
            ErrorKind::BadInstance,
        ),
        // Scenario request missing dim.
        (
            r#"{"type":"plan","scenario":"grid","instance":"full"}"#,
            ErrorKind::BadDimension,
        ),
    ];
    for (line, expected) in cases {
        let err = Request::parse(line).expect_err(line);
        assert_eq!(err.kind, expected, "{line}: {}", err.message);
        assert!(!err.message.is_empty(), "{line} produced an empty message");
        // Every parse error is itself a serializable response.
        round_trip_response(Response::Error(err));
    }
}

#[test]
fn error_kind_labels_are_stable_and_parseable() {
    for kind in [
        ErrorKind::Malformed,
        ErrorKind::UnknownRequest,
        ErrorKind::UnknownStrategy,
        ErrorKind::BadDimension,
        ErrorKind::Oversized,
        ErrorKind::Timeout,
        ErrorKind::Busy,
        ErrorKind::ShuttingDown,
        ErrorKind::Unsupported,
        ErrorKind::Internal,
        ErrorKind::UnknownScenario,
        ErrorKind::BadInstance,
    ] {
        assert_eq!(ErrorKind::parse(kind.label()), Some(kind));
    }
    assert_eq!(ErrorKind::parse("nonsense"), None);
    // The wire labels are frozen; clients match on them.
    assert_eq!(ErrorKind::Internal.label(), "internal");
    assert_eq!(ErrorKind::UnknownScenario.label(), "unknown_scenario");
    assert_eq!(ErrorKind::BadInstance.label(), "bad_instance");
}

#[test]
fn unknown_request_errors_advertise_metrics() {
    let err = Request::parse(r#"{"type":"teleport"}"#).expect_err("unknown type");
    assert!(
        err.message.contains("metrics"),
        "the expected-type list must include metrics: {}",
        err.message
    );
}
