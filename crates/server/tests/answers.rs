//! Differential test: the precomputed answer table must be byte-identical
//! to the dispatcher over its entire domain — every wire strategy, both
//! closed-form request kinds, every dimension up to the server cap.
//!
//! The table is a serving-path optimization; this test is what makes it
//! safe. If a closed form, an error message, or the wire serialization
//! changes without rebuilding the table logic, the bytes diverge here.

use std::sync::Arc;

use hypersweep_analysis::RunCache;
use hypersweep_server::{Dispatcher, Request, Response, WIRE_STRATEGIES};

const MAX_DIM: u32 = 20;

fn dispatcher() -> Dispatcher {
    Dispatcher::new(Arc::new(RunCache::new()), MAX_DIM)
}

fn closed_form_requests(dims: impl Iterator<Item = u32> + Clone) -> Vec<Request> {
    WIRE_STRATEGIES
        .iter()
        .flat_map(|&strategy| {
            dims.clone().flat_map(move |dim| {
                [
                    Request::Plan { strategy, dim },
                    Request::Predict { strategy, dim },
                ]
            })
        })
        .collect()
}

#[test]
fn table_lines_match_the_dispatcher_byte_for_byte() {
    // Two dispatchers so the comparison cannot be confused by shared
    // accounting: `table` answers from the precomputed tier, `direct`
    // computes every reply.
    let table = dispatcher();
    let direct = dispatcher();
    let requests = closed_form_requests(1..=MAX_DIM);
    assert_eq!(requests.len(), 2 * WIRE_STRATEGIES.len() * MAX_DIM as usize);
    for request in requests {
        let fast = table
            .answer_line(&request)
            .unwrap_or_else(|| panic!("no table answer for {request:?}"))
            .to_string();
        let slow = direct.handle(request).to_line();
        assert_eq!(fast, slow, "table diverges from dispatcher on {request:?}");
    }
    assert_eq!(table.table_hits(), 2 * WIRE_STRATEGIES.len() as u64 * 20);
    // Both serving paths must leave identical request accounting behind:
    // a client cannot tell from `status` which tier answered.
    assert_eq!(table.served(), direct.served());
}

#[test]
fn out_of_range_dimensions_fall_through_to_the_dispatcher() {
    let d = dispatcher();
    for request in closed_form_requests([0, MAX_DIM + 1, 64].into_iter()) {
        assert!(
            d.answer_line(&request).is_none(),
            "{request:?} must miss the table"
        );
        // The dispatcher still produces the structured error reply.
        match d.handle(request) {
            Response::Error(e) => assert_eq!(e.kind, hypersweep_server::ErrorKind::BadDimension),
            other => panic!("{request:?} returned {other:?}"),
        }
    }
    assert_eq!(d.table_hits(), 0);
}

#[test]
fn non_closed_form_requests_never_hit_the_table() {
    let d = dispatcher();
    let requests = [
        Request::Audit {
            strategy: WIRE_STRATEGIES[0],
            dim: 4,
        },
        Request::Status,
        Request::Metrics,
        Request::Shutdown,
    ];
    for request in requests {
        assert!(d.answer_line(&request).is_none(), "{request:?}");
    }
    assert_eq!(d.table_hits(), 0);
}
