//! F1/F3: structural-figure regeneration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hypersweep_topology::{render, BroadcastTree, HeapQueue, Hypercube, Node};

fn f1_broadcast_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_broadcast_tree");
    for &d in &[6u32, 10, 14] {
        group.bench_with_input(
            BenchmarkId::new("heap_queue_isomorphism", d),
            &d,
            |b, &d| {
                let tree = BroadcastTree::new(Hypercube::new(d));
                b.iter(|| {
                    let hq = HeapQueue::build(d);
                    black_box(hq.matches_broadcast_subtree(&tree, Node::ROOT))
                });
            },
        );
    }
    group.bench_function("render_h6", |b| {
        b.iter(|| black_box(render::render_broadcast_tree(Hypercube::new(6))))
    });
    group.bench_function("type_census_h10", |b| {
        b.iter(|| black_box(render::render_type_census(Hypercube::new(10))))
    });
    group.finish();
}

fn f3_msb_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_msb_classes");
    for &d in &[6u32, 12, 18] {
        group.bench_with_input(BenchmarkId::new("enumerate_classes", d), &d, |b, &d| {
            let tree = BroadcastTree::new(Hypercube::new(d));
            b.iter(|| {
                let mut total = 0usize;
                for i in 0..=d {
                    total += tree.msb_class_nodes(i).len();
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(figures, f1_broadcast_tree, f3_msb_classes);
criterion_main!(figures);
