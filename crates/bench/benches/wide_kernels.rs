//! Wide-kernel microbench: the 4-wide word kernels against their retained
//! scalar references, on the word arrays the workspace actually runs —
//! `2^d / 64` words for hypercube dimensions `d ∈ {14, 18}` (override with
//! `BENCH_WIDE_DIMS=12,16`).
//!
//! The audit-throughput bench measures the *end-to-end* event stream,
//! which the incremental connectivity kernel already made query-cheap;
//! the word loops it amortises surface here instead, where each kernel is
//! measured in isolation: bulk or/and-not, population count, the fused
//! flood step (frontier masking + accumulate), and whole-set hypercube
//! neighbour expansion.
//!
//! Results land in `BENCH_wide.json` at the repo root (override with
//! `BENCH_WIDE_OUT`). There is no regression gate — the differential test
//! battery (`crates/topology/tests/wide_differential.rs`) guards
//! correctness, and the audit/check benches gate end-to-end speed.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use hypersweep_topology::{wide, NodeSet};
use serde::{Deserialize, Serialize};

/// One kernel's wide-vs-scalar measurement at one array size.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct KernelEntry {
    kernel: String,
    d: u32,
    words: usize,
    wide_words_per_sec: f64,
    scalar_words_per_sec: f64,
    speedup: f64,
}

/// The committed `BENCH_wide.json` shape.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct WideReport {
    schema: String,
    kernels: Vec<KernelEntry>,
}

/// Deterministic word fill (SplitMix64 mix), same as the differential
/// battery uses.
fn fill(words: &mut [u64], seed: u64) {
    let mut s = seed;
    for w in words.iter_mut() {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *w = z ^ (z >> 31);
    }
}

/// Fastest call within the budget; the minimum is the stable statistic on
/// a shared machine.
fn measure<F: FnMut() -> u64>(mut f: F, budget: Duration) -> Duration {
    let start = Instant::now();
    let mut best = Duration::MAX;
    loop {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed());
        if start.elapsed() >= budget {
            break;
        }
    }
    best
}

/// Repetitions per timed call, scaled down for the bigger arrays so one
/// call stays in the hundreds of microseconds.
fn reps(words: usize) -> usize {
    (1 << 22) / words.max(1)
}

fn bench_dim(d: u32, budget: Duration, out: &mut Vec<KernelEntry>) {
    let n = 1usize << d;
    let words = n / 64;
    let r = reps(words);
    let mut src = vec![0u64; words];
    let mut dst = vec![0u64; words];
    let mut acc = vec![0u64; words];
    fill(&mut src, 1);
    fill(&mut dst, 2);
    fill(&mut acc, 3);

    let rate = |t: Duration| (r * words) as f64 / t.as_secs_f64();
    let mut push = |kernel: &str, wide_t: Duration, scalar_t: Duration| {
        let entry = KernelEntry {
            kernel: kernel.to_string(),
            d,
            words,
            wide_words_per_sec: rate(wide_t),
            scalar_words_per_sec: rate(scalar_t),
            speedup: scalar_t.as_secs_f64() / wide_t.as_secs_f64(),
        };
        println!(
            "wide_kernels/{kernel}/d{d}: {:.3e} words/s wide vs {:.3e} scalar ({:.2}x)",
            entry.wide_words_per_sec, entry.scalar_words_per_sec, entry.speedup
        );
        out.push(entry);
    };

    let or_wide = measure(
        || {
            for _ in 0..r {
                wide::or_assign(&mut dst, &src);
            }
            dst[0]
        },
        budget,
    );
    let or_scalar = measure(
        || {
            for _ in 0..r {
                wide::or_assign_scalar(&mut dst, &src);
            }
            dst[0]
        },
        budget,
    );
    push("or_assign", or_wide, or_scalar);

    let count_wide = measure(
        || {
            let mut total = 0u64;
            for _ in 0..r {
                total = total.wrapping_add(wide::count_ones(std::hint::black_box(&src)) as u64);
            }
            total
        },
        budget,
    );
    let count_scalar = measure(
        || {
            let mut total = 0u64;
            for _ in 0..r {
                total =
                    total.wrapping_add(wide::count_ones_scalar(std::hint::black_box(&src)) as u64);
            }
            total
        },
        budget,
    );
    push("count_ones", count_wide, count_scalar);

    let flood_wide = measure(
        || {
            let mut grew = 0u64;
            for _ in 0..r {
                let mut next = src.clone();
                grew += u64::from(wide::flood_step(&mut next, &mut acc, &dst));
            }
            grew
        },
        budget,
    );
    let flood_scalar = measure(
        || {
            let mut grew = 0u64;
            for _ in 0..r {
                let mut next = src.clone();
                grew += u64::from(wide::flood_step_scalar(&mut next, &mut acc, &dst));
            }
            grew
        },
        budget,
    );
    push("flood_step", flood_wide, flood_scalar);

    // Whole-set neighbour expansion: the chunked shuffle/XOR path against
    // the retained single-word loop. Rate is still words/s of the source
    // set, so the columns stay comparable.
    let er = reps(words).max(1) / 4 + 1;
    let set = {
        let mut s = NodeSet::new(n);
        fill(s.words_mut(), 7);
        s
    };
    let mut expanded = NodeSet::new(n);
    let expand_wide = measure(
        || {
            for _ in 0..er {
                set.hypercube_expand_into(d, &mut expanded);
            }
            expanded.words()[0]
        },
        budget,
    );
    let expand_scalar = measure(
        || {
            for _ in 0..er {
                set.hypercube_expand_into_scalar(d, &mut expanded);
            }
            expanded.words()[0]
        },
        budget,
    );
    let rate_e = |t: Duration| (er * words) as f64 / t.as_secs_f64();
    let entry = KernelEntry {
        kernel: "hypercube_expand".to_string(),
        d,
        words,
        wide_words_per_sec: rate_e(expand_wide),
        scalar_words_per_sec: rate_e(expand_scalar),
        speedup: expand_scalar.as_secs_f64() / expand_wide.as_secs_f64(),
    };
    println!(
        "wide_kernels/hypercube_expand/d{d}: {:.3e} words/s wide vs {:.3e} scalar ({:.2}x)",
        entry.wide_words_per_sec, entry.scalar_words_per_sec, entry.speedup
    );
    out.push(entry);
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_WIDE_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wide.json")
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("BENCH_WIDE_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300),
    );
    let dims: Vec<u32> = std::env::var("BENCH_WIDE_DIMS")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("BENCH_WIDE_DIMS is a dim list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![14, 18]);
    let mut kernels = Vec::new();
    for &d in &dims {
        bench_dim(d, budget, &mut kernels);
    }
    let report = WideReport {
        schema: "hypersweep-wide-bench/v1".into(),
        kernels,
    };
    let path = out_path();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_wide.json");
    println!("wrote {}", path.display());
}
