//! T9/T10: the §5 variants — cloning and synchronous.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hypersweep_bench::{checksum, ENGINE_DIMS, WAVE_DIMS};
use hypersweep_core::{CloningStrategy, SearchStrategy, SynchronousStrategy};
use hypersweep_sim::Policy;
use hypersweep_topology::combinatorics as comb;
use hypersweep_topology::Hypercube;

fn t9_cloning(c: &mut Criterion) {
    let mut group = c.benchmark_group("t9_cloning");
    for &d in WAVE_DIMS {
        group.throughput(Throughput::Elements(comb::cloning_moves(d) as u64));
        group.bench_with_input(BenchmarkId::new("fast", d), &d, |b, &d| {
            let s = CloningStrategy::new(Hypercube::new(d));
            b.iter(|| black_box(checksum(&s.fast(false))));
        });
    }
    group.sample_size(10);
    for &d in ENGINE_DIMS {
        group.bench_with_input(BenchmarkId::new("engine", d), &d, |b, &d| {
            let s = CloningStrategy::new(Hypercube::new(d));
            b.iter(|| {
                let outcome = s.run(Policy::Lifo).expect("completes");
                black_box(checksum(&outcome))
            });
        });
    }
    group.finish();
}

fn t10_synchronous(c: &mut Criterion) {
    let mut group = c.benchmark_group("t10_synchronous_variant");
    group.sample_size(10);
    for &d in ENGINE_DIMS {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let s = SynchronousStrategy::new(Hypercube::new(d));
            b.iter(|| {
                let outcome = s.run(Policy::Synchronous).expect("completes");
                black_box(checksum(&outcome))
            });
        });
    }
    group.finish();
}

criterion_group!(variants, t9_cloning, t10_synchronous);
criterion_main!(variants);
