//! Raw executor throughput: activations/second of the DES engine and the
//! threaded executor (not a paper artifact; an engineering baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hypersweep_sim::{
    threaded::{run_threaded, ThreadedConfig},
    Action, AgentProgram, Ctx, Engine, EngineConfig, Policy, Role,
};
use hypersweep_topology::{Hypercube, Node};

/// Tours all bits set in a target, then terminates (pure movement load).
struct Walker {
    target: Node,
}

impl AgentProgram for Walker {
    type Board = ();
    fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
        let here = ctx.node();
        if here == self.target {
            return Action::Terminate;
        }
        for p in 1..=ctx.cube().dim() {
            if self.target.bit(p) && !here.bit(p) {
                return Action::Move(p);
            }
        }
        Action::Terminate
    }
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_activations");
    for &d in &[10u32, 14] {
        let cube = Hypercube::new(d);
        let walkers = 256u32;
        let moves: u64 = (0..walkers)
            .map(|i| u64::from((i % cube.node_count() as u32).count_ones()))
            .sum();
        group.throughput(Throughput::Elements(moves));
        for policy in [Policy::Fifo, Policy::Lifo, Policy::Random(1)] {
            group.bench_with_input(BenchmarkId::new(policy.name(), d), &d, |b, &d| {
                b.iter(|| {
                    let cube = Hypercube::new(d);
                    let mut eng = Engine::new(
                        cube,
                        EngineConfig {
                            policy,
                            record_events: false,
                            ..EngineConfig::default()
                        },
                    );
                    for i in 0..walkers {
                        eng.spawn(
                            Walker {
                                target: Node(i % cube.node_count() as u32),
                            },
                            Node::ROOT,
                            Role::Worker,
                        );
                    }
                    black_box(eng.run().expect("completes").metrics.worker_moves)
                });
            });
        }
    }
    group.finish();
}

fn threaded_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_executor");
    group.sample_size(10);
    let d = 8u32;
    group.bench_function(BenchmarkId::new("walkers", d), |b| {
        b.iter(|| {
            let cube = Hypercube::new(d);
            let programs: Vec<(Walker, Role)> = (0..64u32)
                .map(|i| {
                    (
                        Walker {
                            target: Node(i % cube.node_count() as u32),
                        },
                        Role::Worker,
                    )
                })
                .collect();
            let cfg = ThreadedConfig {
                record_events: false,
                ..ThreadedConfig::default()
            };
            black_box(
                run_threaded(cube, programs, cfg)
                    .expect("completes")
                    .metrics
                    .worker_moves,
            )
        });
    });
    group.finish();
}

criterion_group!(engine, engine_throughput, threaded_throughput);
criterion_main!(engine);
