//! Audit throughput: events/sec streamed through the online monitor.
//!
//! Replays Algorithm CLEAN's canonical trace for `d ∈ {10, 14, 16, 18}`
//! (override with `BENCH_AUDIT_DIMS=15,16,20`) through three auditor
//! configurations with identical semantics:
//!
//! * **packed stride 1** — the real [`Monitor`] at the harness's default
//!   configuration: per-event contiguity and frontier checks, served by
//!   the incremental clean-region connectivity kernel (`O(1)` per query);
//! * **packed stride 64** — the same monitor sampling the region oracles
//!   every 64 events, kept comparable to the pre-incremental baselines;
//! * **vecbool** — a per-node `Vec<bool>` reference auditor (the layout
//!   the field used before the packed kernel landed), with per-node BFS
//!   contiguity at stride 64. Skipped above d=16, where its per-node BFS
//!   takes hours.
//!
//! Results land in `BENCH_audit.json` at the repo root (override with
//! `BENCH_AUDIT_OUT`); set `BENCH_AUDIT_BASELINE=<path>` to compare
//! against a committed baseline instead — the run exits non-zero if either
//! packed column regresses by more than 25% at any dimension.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use hypersweep_core::CleanStrategy;
use hypersweep_intruder::{Monitor, MonitorConfig};
use hypersweep_sim::{Event, EventKind};
use hypersweep_topology::{Hypercube, Node, Topology};
use serde::{Deserialize, Serialize};

/// Sampled stride kept for comparability with the v1 baselines (which
/// predate the incremental connectivity kernel and could not afford
/// per-event checks above `n = 1024`).
const SAMPLED_STRIDE: u64 = 64;

/// The reference auditor's per-node BFS contiguity is cubically slower
/// than the packed kernels; above this dimension it is skipped.
const VECBOOL_MAX_DIM: u32 = 16;

/// Per-dimension measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchEntry {
    d: u32,
    events: u64,
    /// The default configuration: contiguity/frontier after every event.
    packed_stride1_events_per_sec: f64,
    /// Stride-64 sampling, comparable to the v1 baseline column.
    packed_events_per_sec: f64,
    /// `0.0` when the reference auditor was skipped.
    vecbool_events_per_sec: f64,
    /// Stride-64 packed over vecbool; `0.0` when vecbool was skipped.
    speedup: f64,
}

/// The committed `BENCH_audit.json` shape.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    /// Stride of the *sampled* packed/vecbool columns (the stride-1 column
    /// is, by definition, 1).
    contiguity_every: u64,
    dims: Vec<BenchEntry>,
}

/// The pre-packed-kernel auditor: `Vec<bool>` node predicates, per-node
/// BFS for recontamination spread and contiguity.
struct VecBoolAuditor<'a> {
    cube: &'a Hypercube,
    contaminated: Vec<bool>,
    occupancy: Vec<u32>,
    homebase: Node,
    events_applied: u64,
    recontaminations: u64,
    contiguity_ok: bool,
}

impl<'a> VecBoolAuditor<'a> {
    fn new(cube: &'a Hypercube, homebase: Node) -> Self {
        VecBoolAuditor {
            cube,
            contaminated: vec![true; cube.node_count()],
            occupancy: vec![0; cube.node_count()],
            homebase,
            events_applied: 0,
            recontaminations: 0,
            contiguity_ok: true,
        }
    }

    fn occupy(&mut self, x: Node) {
        self.occupancy[x.index()] += 1;
        self.contaminated[x.index()] = false;
    }

    fn maybe_recontaminate(&mut self, x: Node) {
        if self.contaminated[x.index()] || self.occupancy[x.index()] > 0 {
            return;
        }
        let mut nbrs = Vec::new();
        self.cube.neighbors_into(x, &mut nbrs);
        if !nbrs.iter().any(|&y| self.contaminated[y.index()]) {
            return;
        }
        self.contaminated[x.index()] = true;
        self.recontaminations += 1;
        let mut queue = VecDeque::new();
        queue.push_back(x);
        while let Some(u) = queue.pop_front() {
            self.cube.neighbors_into(u, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated[y.index()] && self.occupancy[y.index()] == 0 {
                    self.contaminated[y.index()] = true;
                    self.recontaminations += 1;
                    queue.push_back(y);
                }
            }
        }
    }

    fn is_contiguous(&self) -> bool {
        let safe_total = self.contaminated.iter().filter(|&&c| !c).count();
        if safe_total == 0 {
            return true;
        }
        if self.contaminated[self.homebase.index()] {
            return false;
        }
        let mut seen = vec![false; self.cube.node_count()];
        let mut queue = VecDeque::new();
        let mut nbrs = Vec::new();
        seen[self.homebase.index()] = true;
        queue.push_back(self.homebase);
        let mut count = 1usize;
        while let Some(x) = queue.pop_front() {
            self.cube.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated[y.index()] && !seen[y.index()] {
                    seen[y.index()] = true;
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        count == safe_total
    }

    fn observe(&mut self, event: &Event) {
        self.events_applied += 1;
        match event.kind {
            EventKind::Spawn { node, .. } => self.occupy(node),
            EventKind::Move { from, to, .. } => {
                self.occupy(to);
                self.occupancy[from.index()] -= 1;
                if self.occupancy[from.index()] == 0 {
                    self.maybe_recontaminate(from);
                }
            }
            EventKind::CloneSpawn { to, .. } => self.occupy(to),
            EventKind::Terminate { .. } => {}
        }
        if self.events_applied % SAMPLED_STRIDE == 0 && !self.is_contiguous() {
            self.contiguity_ok = false;
        }
    }

    fn verdict(&self) -> bool {
        self.recontaminations == 0 && self.contiguity_ok && self.is_contiguous()
    }
}

/// Run `f` repeatedly until the time budget is spent (at least once) and
/// return the fastest call — the minimum is far more stable than the mean
/// on shared machines, which matters for the 25% regression gate.
fn measure<F: FnMut() -> bool>(mut f: F, budget: Duration) -> Duration {
    let start = Instant::now();
    let mut best = Duration::MAX;
    loop {
        let t = Instant::now();
        assert!(std::hint::black_box(f()), "auditor rejected a clean trace");
        best = best.min(t.elapsed());
        if start.elapsed() >= budget {
            break;
        }
    }
    best
}

fn bench_dim(d: u32, budget: Duration, packed_only: bool) -> BenchEntry {
    let cube = Hypercube::new(d);
    let (_, events) = CleanStrategy::new(cube).synthesize(true);
    let events = events.expect("recorded");
    let n_events = events.len() as u64;
    let monitor_cfg = |stride: u64| MonitorConfig {
        contiguity_every: stride,
        intruder_start: None,
        greedy_evader: false,
    };
    let run_packed = |stride: u64| {
        measure(
            || {
                let mut monitor = Monitor::new(&cube, Node::ROOT, monitor_cfg(stride));
                monitor.observe_all(&events);
                monitor.verdict().monotone
            },
            budget,
        )
    };
    let rate = |t: Duration| n_events as f64 / t.as_secs_f64();

    let packed_stride1 = run_packed(1);
    println!(
        "audit_throughput/packed-stride1/d{}: {:.3e} elem/s ({} events)",
        d,
        rate(packed_stride1),
        n_events
    );
    let packed = run_packed(SAMPLED_STRIDE);
    println!(
        "audit_throughput/packed/d{}: {:.3e} elem/s",
        d,
        rate(packed)
    );
    if packed_only || d > VECBOOL_MAX_DIM {
        return BenchEntry {
            d,
            events: n_events,
            packed_stride1_events_per_sec: rate(packed_stride1),
            packed_events_per_sec: rate(packed),
            vecbool_events_per_sec: 0.0,
            speedup: 0.0,
        };
    }

    let vecbool = measure(
        || {
            let mut auditor = VecBoolAuditor::new(&cube, Node::ROOT);
            for e in &events {
                auditor.observe(e);
            }
            auditor.verdict()
        },
        budget,
    );
    let entry = BenchEntry {
        d,
        events: n_events,
        packed_stride1_events_per_sec: rate(packed_stride1),
        packed_events_per_sec: rate(packed),
        vecbool_events_per_sec: rate(vecbool),
        speedup: vecbool.as_secs_f64() / packed.as_secs_f64(),
    };
    println!(
        "audit_throughput/vecbool/d{}: {:.3e} elem/s (speedup {:.2}x)",
        d, entry.vecbool_events_per_sec, entry.speedup
    );
    entry
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_AUDIT_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_audit.json")
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("BENCH_AUDIT_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300),
    );
    // `BENCH_AUDIT_DIMS=15,16,20` overrides the default cube sizes;
    // `BENCH_AUDIT_PACKED_ONLY=1` skips the reference auditor even at the
    // dimensions where it would otherwise run (d > VECBOOL_MAX_DIM skips
    // it regardless — its per-node BFS takes hours on those traces).
    let dims: Vec<u32> = std::env::var("BENCH_AUDIT_DIMS")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("BENCH_AUDIT_DIMS is a dim list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![10, 14, 16, 18]);
    let packed_only = std::env::var("BENCH_AUDIT_PACKED_ONLY").is_ok();
    let report = BenchReport {
        schema: "hypersweep-audit-bench/v2".into(),
        contiguity_every: SAMPLED_STRIDE,
        dims: dims
            .iter()
            .map(|&d| bench_dim(d, budget, packed_only))
            .collect(),
    };

    if let Ok(baseline_path) = std::env::var("BENCH_AUDIT_BASELINE") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline: BenchReport = serde_json::from_str(&text)
            .expect("baseline parses (v1 baselines predate the stride-1 column; regenerate)");
        assert_eq!(
            baseline.schema, report.schema,
            "baseline schema mismatch; regenerate BENCH_audit.json"
        );
        let mut regressed = false;
        for entry in &report.dims {
            let Some(base) = baseline.dims.iter().find(|b| b.d == entry.d) else {
                continue;
            };
            // Gate both packed columns: the sampled column guards the raw
            // event-application kernels, the stride-1 column guards the
            // incremental connectivity queries layered on top.
            let checks = [
                (
                    "stride1",
                    entry.packed_stride1_events_per_sec,
                    base.packed_stride1_events_per_sec,
                ),
                (
                    "sampled",
                    entry.packed_events_per_sec,
                    base.packed_events_per_sec,
                ),
            ];
            for (label, got, expected) in checks {
                let ratio = got / expected;
                println!(
                    "audit_throughput/check/{label}/d{}: {:.2}x of baseline",
                    entry.d, ratio
                );
                if ratio < 0.75 {
                    eprintln!(
                        "REGRESSION ({label}) at d={}: {:.3e} events/s vs baseline {:.3e} \
                         (>25% slower)",
                        entry.d, got, expected
                    );
                    regressed = true;
                }
            }
        }
        if regressed {
            std::process::exit(1);
        }
    } else {
        let path = out_path();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json + "\n").expect("write BENCH_audit.json");
        println!("wrote {}", path.display());
    }
}
