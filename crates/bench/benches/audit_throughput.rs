//! Audit throughput: events/sec streamed through the online monitor.
//!
//! Replays Algorithm CLEAN's canonical trace for `d ∈ {10, 14, 16}`
//! (override with `BENCH_AUDIT_DIMS=15,16,20`) through two auditors with
//! identical semantics:
//!
//! * **packed** — the real [`Monitor`], whose `ContaminationField` keeps
//!   node predicates in packed `u64` bitsets and runs word-parallel
//!   contiguity/spread kernels;
//! * **vecbool** — a per-node `Vec<bool>` reference auditor (the layout the
//!   field used before the packed kernel landed), with per-node BFS
//!   contiguity.
//!
//! Both sample contiguity at the same stride as the harness's default
//! monitor configuration for large cubes. Results land in
//! `BENCH_audit.json` at the repo root (override with `BENCH_AUDIT_OUT`);
//! set `BENCH_AUDIT_BASELINE=<path>` to compare against a committed
//! baseline instead — the run exits non-zero if packed throughput regresses
//! by more than 25% at any dimension.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use hypersweep_core::CleanStrategy;
use hypersweep_intruder::{Monitor, MonitorConfig};
use hypersweep_sim::{Event, EventKind};
use hypersweep_topology::{Hypercube, Node, Topology};
use serde::{Deserialize, Serialize};

/// Contiguity sampling stride for the benchmarked cubes (all have
/// `n > 1024`, where the harness's default monitor samples every 64).
const CONTIGUITY_EVERY: u64 = 64;

/// Per-dimension measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchEntry {
    d: u32,
    events: u64,
    packed_events_per_sec: f64,
    vecbool_events_per_sec: f64,
    speedup: f64,
}

/// The committed `BENCH_audit.json` shape.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    contiguity_every: u64,
    dims: Vec<BenchEntry>,
}

/// The pre-packed-kernel auditor: `Vec<bool>` node predicates, per-node
/// BFS for recontamination spread and contiguity.
struct VecBoolAuditor<'a> {
    cube: &'a Hypercube,
    contaminated: Vec<bool>,
    occupancy: Vec<u32>,
    homebase: Node,
    events_applied: u64,
    recontaminations: u64,
    contiguity_ok: bool,
}

impl<'a> VecBoolAuditor<'a> {
    fn new(cube: &'a Hypercube, homebase: Node) -> Self {
        VecBoolAuditor {
            cube,
            contaminated: vec![true; cube.node_count()],
            occupancy: vec![0; cube.node_count()],
            homebase,
            events_applied: 0,
            recontaminations: 0,
            contiguity_ok: true,
        }
    }

    fn occupy(&mut self, x: Node) {
        self.occupancy[x.index()] += 1;
        self.contaminated[x.index()] = false;
    }

    fn maybe_recontaminate(&mut self, x: Node) {
        if self.contaminated[x.index()] || self.occupancy[x.index()] > 0 {
            return;
        }
        let mut nbrs = Vec::new();
        self.cube.neighbors_into(x, &mut nbrs);
        if !nbrs.iter().any(|&y| self.contaminated[y.index()]) {
            return;
        }
        self.contaminated[x.index()] = true;
        self.recontaminations += 1;
        let mut queue = VecDeque::new();
        queue.push_back(x);
        while let Some(u) = queue.pop_front() {
            self.cube.neighbors_into(u, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated[y.index()] && self.occupancy[y.index()] == 0 {
                    self.contaminated[y.index()] = true;
                    self.recontaminations += 1;
                    queue.push_back(y);
                }
            }
        }
    }

    fn is_contiguous(&self) -> bool {
        let safe_total = self.contaminated.iter().filter(|&&c| !c).count();
        if safe_total == 0 {
            return true;
        }
        if self.contaminated[self.homebase.index()] {
            return false;
        }
        let mut seen = vec![false; self.cube.node_count()];
        let mut queue = VecDeque::new();
        let mut nbrs = Vec::new();
        seen[self.homebase.index()] = true;
        queue.push_back(self.homebase);
        let mut count = 1usize;
        while let Some(x) = queue.pop_front() {
            self.cube.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated[y.index()] && !seen[y.index()] {
                    seen[y.index()] = true;
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        count == safe_total
    }

    fn observe(&mut self, event: &Event) {
        self.events_applied += 1;
        match event.kind {
            EventKind::Spawn { node, .. } => self.occupy(node),
            EventKind::Move { from, to, .. } => {
                self.occupy(to);
                self.occupancy[from.index()] -= 1;
                if self.occupancy[from.index()] == 0 {
                    self.maybe_recontaminate(from);
                }
            }
            EventKind::CloneSpawn { to, .. } => self.occupy(to),
            EventKind::Terminate { .. } => {}
        }
        if self.events_applied % CONTIGUITY_EVERY == 0 && !self.is_contiguous() {
            self.contiguity_ok = false;
        }
    }

    fn verdict(&self) -> bool {
        self.recontaminations == 0 && self.contiguity_ok && self.is_contiguous()
    }
}

/// Run `f` repeatedly until the time budget is spent (at least once) and
/// return the fastest call — the minimum is far more stable than the mean
/// on shared machines, which matters for the 25% regression gate.
fn measure<F: FnMut() -> bool>(mut f: F, budget: Duration) -> Duration {
    let start = Instant::now();
    let mut best = Duration::MAX;
    loop {
        let t = Instant::now();
        assert!(std::hint::black_box(f()), "auditor rejected a clean trace");
        best = best.min(t.elapsed());
        if start.elapsed() >= budget {
            break;
        }
    }
    best
}

fn bench_dim(d: u32, budget: Duration, packed_only: bool) -> BenchEntry {
    let cube = Hypercube::new(d);
    let (_, events) = CleanStrategy::new(cube).synthesize(true);
    let events = events.expect("recorded");
    let n_events = events.len() as u64;
    let cfg = MonitorConfig {
        contiguity_every: CONTIGUITY_EVERY,
        intruder_start: None,
        greedy_evader: false,
    };

    let packed = measure(
        || {
            let mut monitor = Monitor::new(&cube, Node::ROOT, cfg);
            monitor.observe_all(&events);
            monitor.verdict().monotone
        },
        budget,
    );
    let rate = |t: Duration| n_events as f64 / t.as_secs_f64();
    println!(
        "audit_throughput/packed/d{}: {:.3e} elem/s ({} events)",
        d,
        rate(packed),
        n_events
    );
    if packed_only {
        return BenchEntry {
            d,
            events: n_events,
            packed_events_per_sec: rate(packed),
            vecbool_events_per_sec: 0.0,
            speedup: 0.0,
        };
    }

    let vecbool = measure(
        || {
            let mut auditor = VecBoolAuditor::new(&cube, Node::ROOT);
            for e in &events {
                auditor.observe(e);
            }
            auditor.verdict()
        },
        budget,
    );
    let entry = BenchEntry {
        d,
        events: n_events,
        packed_events_per_sec: rate(packed),
        vecbool_events_per_sec: rate(vecbool),
        speedup: vecbool.as_secs_f64() / packed.as_secs_f64(),
    };
    println!(
        "audit_throughput/vecbool/d{}: {:.3e} elem/s (speedup {:.2}x)",
        d, entry.vecbool_events_per_sec, entry.speedup
    );
    entry
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_AUDIT_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_audit.json")
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("BENCH_AUDIT_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300),
    );
    // `BENCH_AUDIT_DIMS=15,16,20` overrides the default cube sizes;
    // `BENCH_AUDIT_PACKED_ONLY=1` skips the reference auditor, whose
    // per-node BFS takes hours on the d > 16 traces.
    let dims: Vec<u32> = std::env::var("BENCH_AUDIT_DIMS")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("BENCH_AUDIT_DIMS is a dim list"))
                .collect()
        })
        .unwrap_or_else(|_| vec![10, 14, 16]);
    let packed_only = std::env::var("BENCH_AUDIT_PACKED_ONLY").is_ok();
    let report = BenchReport {
        schema: "hypersweep-audit-bench/v1".into(),
        contiguity_every: CONTIGUITY_EVERY,
        dims: dims
            .iter()
            .map(|&d| bench_dim(d, budget, packed_only))
            .collect(),
    };

    if let Ok(baseline_path) = std::env::var("BENCH_AUDIT_BASELINE") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline: BenchReport = serde_json::from_str(&text).expect("baseline parses");
        let mut regressed = false;
        for entry in &report.dims {
            let Some(base) = baseline.dims.iter().find(|b| b.d == entry.d) else {
                continue;
            };
            let ratio = entry.packed_events_per_sec / base.packed_events_per_sec;
            println!(
                "audit_throughput/check/d{}: {:.2}x of baseline",
                entry.d, ratio
            );
            if ratio < 0.75 {
                eprintln!(
                    "REGRESSION at d={}: {:.3e} events/s vs baseline {:.3e} (>25% slower)",
                    entry.d, entry.packed_events_per_sec, base.packed_events_per_sec
                );
                regressed = true;
            }
        }
        if regressed {
            std::process::exit(1);
        }
    } else {
        let path = out_path();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json + "\n").expect("write BENCH_audit.json");
        println!("wrote {}", path.display());
    }
}
