//! E11/E12: baselines and comparison experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hypersweep_baselines::tree_search::{tree_search_number, tree_search_plan};
use hypersweep_baselines::{
    boundary_optimum, greedy_plan, isoperimetric_team_lower_bound, FloodStrategy, FrontierStrategy,
};
use hypersweep_bench::checksum;
use hypersweep_core::SearchStrategy;
use hypersweep_core::{CleanStrategy, CloningStrategy, DispatchOrder, NavigationMode};
use hypersweep_sim::Policy;
use hypersweep_topology::graph::AdjGraph;
use hypersweep_topology::{BroadcastTree, Hypercube, Node, Topology};

fn e11_baseline_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_baseline_traces");
    for &d in &[10u32, 14] {
        group.bench_with_input(BenchmarkId::new("flood_fast", d), &d, |b, &d| {
            let s = FloodStrategy::new(Hypercube::new(d));
            b.iter(|| black_box(checksum(&s.fast(false))));
        });
        group.bench_with_input(BenchmarkId::new("frontier_synthesize", d), &d, |b, &d| {
            let s = FrontierStrategy::new(Hypercube::new(d));
            b.iter(|| black_box(s.synthesize(false).0.total_moves()));
        });
    }
    group.finish();
}

fn e12_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_bounds");
    group.sample_size(10);
    group.bench_function("boundary_optimum_h4", |b| {
        let cube = Hypercube::new(4);
        b.iter(|| black_box(boundary_optimum(&cube, Node::ROOT).peak_boundary));
    });
    for &d in &[8u32, 12] {
        group.bench_with_input(BenchmarkId::new("tree_plan_Bd", d), &d, |b, &d| {
            let cube = Hypercube::new(d);
            let tree = BroadcastTree::new(cube);
            let mut g = AdjGraph::with_nodes(Topology::node_count(&cube));
            for x in cube.nodes() {
                for ch in tree.children(x) {
                    g.add_edge(x, ch);
                }
            }
            b.iter(|| {
                let plan = tree_search_plan(&g, Node::ROOT);
                black_box((plan.team, plan.moves))
            });
        });
        group.bench_with_input(BenchmarkId::new("tree_number_Bd", d), &d, |b, &d| {
            let cube = Hypercube::new(d);
            let tree = BroadcastTree::new(cube);
            let mut g = AdjGraph::with_nodes(Topology::node_count(&cube));
            for x in cube.nodes() {
                for ch in tree.children(x) {
                    g.add_edge(x, ch);
                }
            }
            b.iter(|| black_box(tree_search_number(&g, Node::ROOT)));
        });
    }
    group.finish();
}

fn e13_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_ablations");
    for &d in &[10u32, 12] {
        group.bench_with_input(BenchmarkId::new("clean_via_meet", d), &d, |b, &d| {
            let s = CleanStrategy::new(Hypercube::new(d));
            b.iter(|| black_box(checksum(&s.fast(false))));
        });
        group.bench_with_input(BenchmarkId::new("clean_through_root", d), &d, |b, &d| {
            let s = CleanStrategy::with_navigation(Hypercube::new(d), NavigationMode::ThroughRoot);
            b.iter(|| black_box(checksum(&s.fast(false))));
        });
    }
    group.sample_size(10);
    group.bench_function("cloning_smallest_first_engine_d6", |b| {
        let s = CloningStrategy::with_dispatch_order(
            Hypercube::new(6),
            DispatchOrder::SmallestSubtreeFirst,
        );
        b.iter(|| {
            let o = s.run(Policy::Synchronous).expect("completes");
            black_box(o.metrics.ideal_time)
        });
    });
    group.finish();
}

fn e14_planner_and_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_planner");
    group.sample_size(10);
    for &d in &[8u32, 10] {
        group.bench_with_input(BenchmarkId::new("greedy_plan_hypercube", d), &d, |b, &d| {
            let cube = Hypercube::new(d);
            b.iter(|| black_box(greedy_plan(&cube, Node::ROOT).team));
        });
        group.bench_with_input(BenchmarkId::new("isoperimetric_lb", d), &d, |b, &d| {
            b.iter(|| black_box(isoperimetric_team_lower_bound(d)));
        });
    }
    group.finish();
}

criterion_group!(
    compare,
    e11_baseline_traces,
    e12_bounds,
    e13_ablations,
    e14_planner_and_bounds
);
criterion_main!(compare);
