//! T6: monitor/audit throughput — the cost of *checking* Theorems 1 and 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hypersweep_core::VisibilityStrategy;
use hypersweep_intruder::{verify_trace, MonitorConfig};
use hypersweep_topology::{Hypercube, Node};

fn t6_audit_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("t6_monitor_audit");
    for &d in &[8u32, 10, 12] {
        let cube = Hypercube::new(d);
        let (_, events) = VisibilityStrategy::new(cube).synthesize(true);
        let events = events.expect("recorded");
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("monotonicity_only", d),
            &events,
            |b, events| {
                b.iter(|| {
                    let v = verify_trace(
                        &cube,
                        Node::ROOT,
                        events,
                        MonitorConfig::monotonicity_only(),
                    );
                    black_box(v.monotone)
                });
            },
        );
        if d <= 10 {
            group.bench_with_input(
                BenchmarkId::new("full_checks_with_intruder", d),
                &events,
                |b, events| {
                    b.iter(|| {
                        let v = verify_trace(
                            &cube,
                            Node::ROOT,
                            events,
                            MonitorConfig::with_intruder(Node(cube.node_count() as u32 - 1)),
                        );
                        black_box(v.is_complete())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(monotone, t6_audit_throughput);
criterion_main!(monotone);
