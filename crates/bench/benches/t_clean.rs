//! T2/T3/T4: Algorithm CLEAN — team, moves, time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hypersweep_bench::{checksum, ENGINE_DIMS, FAST_DIMS};
use hypersweep_core::{CleanStrategy, SearchStrategy};
use hypersweep_sim::Policy;
use hypersweep_topology::combinatorics as comb;
use hypersweep_topology::Hypercube;

fn t2_t3_clean_fast(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_t3_clean_fast_trace");
    for &d in FAST_DIMS {
        let moves = comb::clean_agent_moves(d) as u64;
        group.throughput(Throughput::Elements(moves));
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let s = CleanStrategy::new(Hypercube::new(d));
            b.iter(|| black_box(checksum(&s.fast(false))));
        });
    }
    group.finish();
}

fn t2_t3_clean_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_t3_clean_engine");
    group.sample_size(10);
    for &d in ENGINE_DIMS {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let s = CleanStrategy::new(Hypercube::new(d));
            b.iter(|| {
                let outcome = s.run(Policy::Fifo).expect("completes");
                black_box(checksum(&outcome))
            });
        });
    }
    group.finish();
}

fn t4_clean_ideal_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_clean_synchronous");
    group.sample_size(10);
    for &d in &[5u32, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let s = CleanStrategy::new(Hypercube::new(d));
            b.iter(|| {
                let outcome = s.run(Policy::Synchronous).expect("completes");
                black_box(outcome.metrics.ideal_time)
            });
        });
    }
    group.finish();
}

criterion_group!(
    clean,
    t2_t3_clean_fast,
    t2_t3_clean_engine,
    t4_clean_ideal_time
);
criterion_main!(clean);
