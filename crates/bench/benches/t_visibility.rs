//! T5/T7/T8: CLEAN WITH VISIBILITY — agents, time, moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hypersweep_bench::{checksum, ENGINE_DIMS, WAVE_DIMS};
use hypersweep_core::{SearchStrategy, VisibilityStrategy};
use hypersweep_sim::Policy;
use hypersweep_topology::combinatorics as comb;
use hypersweep_topology::Hypercube;

fn t5_t7_t8_visibility_fast(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_t7_t8_visibility_fast_trace");
    for &d in WAVE_DIMS {
        group.throughput(Throughput::Elements(comb::visibility_moves(d) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let s = VisibilityStrategy::new(Hypercube::new(d));
            b.iter(|| black_box(checksum(&s.fast(false))));
        });
    }
    group.finish();
}

fn t5_t7_t8_visibility_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_t7_t8_visibility_engine");
    group.sample_size(10);
    for &d in ENGINE_DIMS {
        for policy in [Policy::Fifo, Policy::Synchronous] {
            group.bench_with_input(BenchmarkId::new(policy.name(), d), &d, |b, &d| {
                let s = VisibilityStrategy::new(Hypercube::new(d));
                b.iter(|| {
                    let outcome = s.run(policy).expect("completes");
                    black_box(checksum(&outcome))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    visibility,
    t5_t7_t8_visibility_fast,
    t5_t7_t8_visibility_engine
);
criterion_main!(visibility);
