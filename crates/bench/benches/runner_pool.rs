//! Harness throughput: pooled vs sequential `report all` under the quick
//! configuration (not a paper artifact; measures the tentpole win of the
//! shared run cache + work-stealing pool).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hypersweep_analysis::experiments::ALL_IDS;
use hypersweep_analysis::{default_jobs, run_ids_pooled, ExperimentConfig};

fn report_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("report_all");
    group.sample_size(10);
    let cfg = ExperimentConfig::quick();
    for jobs in [1, default_jobs()] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(run_ids_pooled(ALL_IDS, &cfg, jobs).results.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, report_all);
criterion_main!(benches);
