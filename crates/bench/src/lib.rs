//! Shared helpers for the Criterion benchmark suite.
//!
//! Each bench target regenerates the computation behind one table or figure
//! of the paper (ids match `DESIGN.md` §3) and reports its wall-clock cost;
//! the artifact *content* comes from `hypersweep-analysis`/the CLI, the
//! benches establish that regeneration is cheap and how it scales.

#![forbid(unsafe_code)]

use hypersweep_core::SearchOutcome;

/// Dimensions used for the fast-path scaling benches.
pub const FAST_DIMS: &[u32] = &[8, 10, 12, 14];

/// Dimensions used for the fast-path scaling benches of the cheap (wave)
/// strategies, which comfortably reach larger cubes.
pub const WAVE_DIMS: &[u32] = &[10, 14, 18];

/// Dimensions used for discrete-event engine benches.
pub const ENGINE_DIMS: &[u32] = &[6, 8];

/// Consume an outcome so the optimizer cannot discard the run.
pub fn checksum(outcome: &SearchOutcome) -> u64 {
    outcome
        .metrics
        .total_moves()
        .wrapping_mul(31)
        .wrapping_add(outcome.metrics.team_size)
        .wrapping_add(u64::from(outcome.verdict.monotone))
}
