//! The paper's contribution: contiguous, monotone node-search strategies
//! for the hypercube.
//!
//! * [`CleanStrategy`] — §3's Algorithm `CLEAN`: a *synchronizer* agent
//!   coordinates the team level by level over the broadcast tree, recalling
//!   agents from leaves for reuse. `O(n/ log n)`-scale team (exactly
//!   `max_l [C(d,l+1) + C(d−1,l−1)] + 1`), `O(n log n)` moves and time.
//! * [`VisibilityStrategy`] — §4's Algorithm `CLEAN WITH VISIBILITY`:
//!   fully local rule (agents see neighbour states), `n/2` agents,
//!   `log n` ideal time, `O(n log n)` moves.
//! * [`CloningStrategy`] — §5's cloning variant: one initial agent clones
//!   on dispatch; `n/2` agents, `log n` time, `n − 1` moves.
//! * [`SynchronousStrategy`] — §5's synchronous variant: the visibility
//!   rule's timing replaced by the global clock (`move at t = m(x)`),
//!   no visibility needed.
//!
//! Every strategy runs two ways with identical decision logic: on the
//! `hypersweep-sim` discrete-event engine under any adversarial schedule
//! ([`SearchStrategy::run`]), and through a direct trace generator
//! ([`SearchStrategy::fast`]) used for large dimensions. Both paths feed
//! the `hypersweep-intruder` monitors, so monotonicity, contiguity,
//! coverage and capture are *checked*, never assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clean;
pub mod cloning;
pub mod outcome;
pub mod predictions;
pub mod synchronous;
pub mod visibility;

pub use clean::{CleanStrategy, NavigationMode};
pub use cloning::{CloningStrategy, DispatchOrder};
pub use outcome::{SearchOutcome, SearchStrategy, StrategyError};
pub use synchronous::SynchronousStrategy;
pub use visibility::VisibilityStrategy;
