//! Algorithm 1 — `CLEAN` (§3.2): the synchronizer-coordinated strategy.
//!
//! One agent (the *synchronizer*) coordinates the whole process through
//! whiteboards:
//!
//! 1. **Phase 0** — it guides one distinct agent from the root to each of
//!    the root's `d` children, returning to the root each time.
//! 2. **Phase `l ≥ 1`** — before cleaning from level `l` to `l + 1` it
//!    returns to the root and posts reinforcement *claims*: `k − 1` extra
//!    agents for every level-`l` node of type `T(k)`, `k ≥ 2` (Lemma 3).
//!    Available agents at the root claim an index each and compute their own
//!    destination from `(l, index)` — the whiteboard stores only the pair of
//!    counters, keeping it at `O(log n)` bits. The synchronizer then sweeps
//!    the level-`l` nodes in increasing numeric (= lexicographic, msb-first)
//!    order:
//!    * at a **leaf** (type `T(0)`) it orders the guard back to the root —
//!      safe because, by Lemma 1, every up-neighbour of the leaf is a
//!      broadcast-tree child of an earlier level-`l` node, hence already
//!      guarded;
//!    * at a node of type `T(k)` it waits for the full team of `k` agents,
//!      then escorts one agent down each broadcast-tree edge (down with the
//!      agent, back alone — every tree edge is travelled twice by the
//!      synchronizer, Theorem 3 component 4).
//!
//!    Between consecutive level-`l` nodes it navigates *via the meet*
//!    (`x ∧ y`): first clearing surplus bits, then setting missing ones, so
//!    every intermediate node lies strictly below level `l` in already-clean
//!    territory, and the hop count is at most `2·min(l, d−l)` (Theorem 3
//!    component 3).
//! 3. After sweeping level `d` it returns to the root, posts `done`, and
//!    terminates; pooled agents terminate at the root.

use hypersweep_sim::{
    Action, AgentProgram, Board, Ctx, Engine, EngineConfig, Event, EventKind, EventSink, Metrics,
    NullSink, Policy, Role,
};
use hypersweep_topology::combinatorics as comb;
use hypersweep_topology::{BroadcastTree, Hypercube, Node};

use crate::outcome::{
    audited_outcome, streamed_outcome, synthesized_outcome, SearchOutcome, SearchStrategy,
    StrategyError,
};

/// Whiteboard of Algorithm CLEAN.
///
/// The root's board carries the claim counters and the termination flag;
/// every node's board carries the synchronizer's single-slot order. All
/// fields together are `O(log n)` bits.
#[derive(Clone, Default)]
pub struct CleanBoard {
    /// Level whose reinforcements are currently posted (root only).
    pub phase: u32,
    /// Next reinforcement claim index (root only).
    pub next_claim: u32,
    /// Total reinforcement claims of the current phase (root only).
    pub total_claims: u32,
    /// Set when the search is over; pooled agents terminate (root only).
    pub done: bool,
    /// §3.2's election: the first agent to access the root whiteboard sets
    /// this and becomes the synchronizer (root only; used by
    /// [`CleanAgent::candidate`]).
    pub sync_elected: bool,
    /// "One agent: move through this port" (written by the synchronizer,
    /// consumed atomically by one agent).
    pub order_port: Option<u32>,
    /// "Guard: return to the root" (leaf release).
    pub order_return: bool,
}

impl Board for CleanBoard {
    fn bits_used(&self) -> u32 {
        let counter_bits = |v: u32| 32 - v.leading_zeros();
        counter_bits(self.phase)
            + counter_bits(self.next_claim)
            + counter_bits(self.total_claims)
            + 1 // done
            + 1 // sync_elected
            + 1 // order_return
            + 6 // order_port: Some(1..=d), d ≤ 28 fits in 6 bits with a presence flag
    }
}

/// Successor of `x` among words with the same popcount (Gosper's hack).
/// Returns `None` when the successor would leave the `d`-bit range.
pub fn next_same_level(x: Node, d: u32) -> Option<Node> {
    let v = x.0;
    if v == 0 {
        return None;
    }
    let u = v & v.wrapping_neg();
    let w = v.wrapping_add(u);
    if w == 0 {
        return None;
    }
    let y = w | (((v ^ w) / u) >> 2);
    if u64::from(y) < (1u64 << d) {
        Some(Node(y))
    } else {
        None
    }
}

/// Total reinforcement claims of phase `l` (Lemma 3), as `u32`.
pub fn phase_claims(d: u32, l: u32) -> u32 {
    u32::try_from(comb::lemma3_extra_agents(d, l)).expect("claims fit in u32 for d ≤ 28")
}

/// The destination of reinforcement claim `idx` of phase `l`: level-`l`
/// nodes of type `T(k)`, `k ≥ 2`, each spanning `k − 1` consecutive
/// indices, in increasing numeric order. Agents recompute this locally from
/// the two whiteboard counters — `O(log n)` working memory, `O(n)` time.
pub fn claim_destination(d: u32, l: u32, mut idx: u32) -> Node {
    let mut x = Node((1u32 << l) - 1);
    loop {
        let k = d - x.msb_position();
        if k >= 2 {
            if idx < k - 1 {
                return x;
            }
            idx -= k - 1;
        }
        x = next_same_level(x, d).expect("claim index within Lemma 3 total");
    }
}

/// Worker states. `O(log n)` bits: a tag plus at most one node id.
#[derive(Clone, Debug, PartialEq, Eq)]
enum WorkerState {
    /// At the root, waiting for an escort order, a claim, or `done`.
    Idle,
    /// Ascending the broadcast-tree path to a claimed destination.
    Walking { dest: Node },
    /// Guarding a node, awaiting the synchronizer's orders.
    Guarding,
    /// Descending (clearing the msb each hop) back to the root.
    Returning,
}

/// Escort progress of the synchronizer at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EscortStage {
    /// Order posted; waiting for an agent to consume it (= slide down).
    Posted,
    /// We followed the agent to the child; next we return.
    AtChild,
}

/// Synchronizer states.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SyncState {
    /// Phase 0: escorting one agent to each root child.
    Phase0 {
        next_port: u32,
        escort: Option<(u32, EscortStage)>,
    },
    /// Walking back to the root, then posting phase `next_phase`.
    GoRoot { next_phase: u32 },
    /// At the root: post the claims of phase `l`.
    PostPhase { l: u32 },
    /// Ascending to the first node of level `l`.
    GoFirst { l: u32 },
    /// At a level-`l` node: release a leaf guard or dispatch downwards.
    SweepNode {
        l: u32,
        next_port: u32,
        escort: Option<(u32, EscortStage)>,
        team_checked: bool,
    },
    /// Navigating via the meet to the next level-`l` node.
    Navigate { l: u32, target: Node },
    /// Everything is clean: walk home, post `done`, terminate.
    GoHome,
}

/// The CLEAN agent program: one enum so the synchronizer and the workers
/// share the whiteboard type (they are "identical agents" whose behaviour
/// diverges after the §3.2 election, which we resolve at spawn time).
pub enum CleanAgent {
    /// The coordinator.
    Synchronizer(SyncStateHolder),
    /// A team member.
    Worker(WorkerStateHolder),
    /// An as-yet-undifferentiated agent: §3.2's identical agents before the
    /// whiteboard election ("the first that gains access will become the
    /// synchronizer").
    Candidate,
}

/// Public holder so the enum can be constructed by the strategy only.
pub struct SyncStateHolder {
    state: SyncState,
}

/// Public holder so the enum can be constructed by the strategy only.
pub struct WorkerStateHolder {
    state: WorkerState,
}

impl CleanAgent {
    /// A fresh synchronizer.
    pub fn synchronizer() -> Self {
        CleanAgent::Synchronizer(SyncStateHolder {
            state: SyncState::Phase0 {
                next_port: 1,
                escort: None,
            },
        })
    }

    /// A fresh pooled worker.
    pub fn worker() -> Self {
        CleanAgent::Worker(WorkerStateHolder {
            state: WorkerState::Idle,
        })
    }

    /// A fresh undifferentiated agent that elects its role through the
    /// whiteboard on first activation.
    pub fn candidate() -> Self {
        CleanAgent::Candidate
    }
}

impl AgentProgram for CleanAgent {
    type Board = CleanBoard;

    fn step(&mut self, ctx: &mut Ctx<'_, CleanBoard>) -> Action {
        if let CleanAgent::Candidate = self {
            // The election (§3.2): activation order = whiteboard access
            // order; the first candidate claims the coordinator role.
            debug_assert_eq!(ctx.node(), Node::ROOT, "election happens at the homebase");
            if !ctx.board().sync_elected {
                ctx.board_mut().sync_elected = true;
                *self = CleanAgent::synchronizer();
            } else {
                *self = CleanAgent::worker();
            }
        }
        match self {
            CleanAgent::Worker(w) => worker_step(&mut w.state, ctx),
            CleanAgent::Synchronizer(s) => sync_step(&mut s.state, ctx),
            CleanAgent::Candidate => unreachable!("candidates differentiate above"),
        }
    }

    fn local_bits(&self) -> u32 {
        // A state tag plus at most one node id / port / level.
        8 + 32
    }
}

fn lowest_missing_bit_towards(pos: Node, dest: Node, d: u32) -> u32 {
    (1..=d)
        .find(|&p| dest.bit(p) && !pos.bit(p))
        .expect("pos is a strict subset of dest on the tree path")
}

fn worker_step(state: &mut WorkerState, ctx: &mut Ctx<'_, CleanBoard>) -> Action {
    let d = ctx.cube().dim();
    loop {
        match state.clone() {
            WorkerState::Idle => {
                debug_assert_eq!(ctx.node(), Node::ROOT);
                if let Some(p) = ctx.board().order_port {
                    ctx.board_mut().order_port = None;
                    *state = WorkerState::Guarding;
                    return Action::Move(p);
                }
                let b = ctx.board();
                if b.next_claim < b.total_claims {
                    let l = b.phase;
                    let idx = b.next_claim;
                    ctx.board_mut().next_claim = idx + 1;
                    let dest = claim_destination(d, l, idx);
                    let p = lowest_missing_bit_towards(Node::ROOT, dest, d);
                    *state = if Node::ROOT.flip(p) == dest {
                        WorkerState::Guarding
                    } else {
                        WorkerState::Walking { dest }
                    };
                    return Action::Move(p);
                }
                if ctx.board().done {
                    return Action::Terminate;
                }
                return Action::Wait;
            }
            WorkerState::Walking { dest } => {
                let pos = ctx.node();
                let p = lowest_missing_bit_towards(pos, dest, d);
                if pos.flip(p) == dest {
                    *state = WorkerState::Guarding;
                }
                return Action::Move(p);
            }
            WorkerState::Guarding => {
                if let Some(p) = ctx.board().order_port {
                    ctx.board_mut().order_port = None;
                    // Still guarding — one level deeper.
                    return Action::Move(p);
                }
                if ctx.board().order_return {
                    ctx.board_mut().order_return = false;
                    *state = WorkerState::Returning;
                    continue;
                }
                return Action::Wait;
            }
            WorkerState::Returning => {
                let pos = ctx.node();
                let m = pos.msb_position();
                debug_assert!(m >= 1, "returning worker cannot already be at the root");
                if pos.flip(m) == Node::ROOT {
                    *state = WorkerState::Idle;
                }
                return Action::Move(m);
            }
        }
    }
}

fn sync_step(state: &mut SyncState, ctx: &mut Ctx<'_, CleanBoard>) -> Action {
    let d = ctx.cube().dim();
    loop {
        match state.clone() {
            SyncState::Phase0 { next_port, escort } => {
                match escort {
                    Some((p, EscortStage::Posted)) => {
                        if ctx.board().order_port.is_some() {
                            return Action::Wait; // consumption will wake us
                        }
                        *state = SyncState::Phase0 {
                            next_port,
                            escort: Some((p, EscortStage::AtChild)),
                        };
                        return Action::Move(p); // follow the agent down
                    }
                    Some((p, EscortStage::AtChild)) => {
                        *state = SyncState::Phase0 {
                            next_port: next_port + 1,
                            escort: None,
                        };
                        return Action::Move(p); // back to the root
                    }
                    None => {
                        if next_port > d {
                            *state = SyncState::PostPhase { l: 1 };
                            continue;
                        }
                        ctx.board_mut().order_port = Some(next_port);
                        *state = SyncState::Phase0 {
                            next_port,
                            escort: Some((next_port, EscortStage::Posted)),
                        };
                        return Action::Wait; // the write keeps us runnable once
                    }
                }
            }
            SyncState::GoRoot { next_phase } => {
                let pos = ctx.node();
                if pos == Node::ROOT {
                    *state = SyncState::PostPhase { l: next_phase };
                    continue;
                }
                return Action::Move(pos.msb_position());
            }
            SyncState::PostPhase { l } => {
                debug_assert_eq!(ctx.node(), Node::ROOT);
                let total = phase_claims(d, l);
                let b = ctx.board_mut();
                b.phase = l;
                b.next_claim = 0;
                b.total_claims = total;
                *state = SyncState::GoFirst { l };
                return Action::Wait; // dirty board keeps us runnable
            }
            SyncState::GoFirst { l } => {
                let target = Node((1u32 << l) - 1);
                let pos = ctx.node();
                if pos == target {
                    *state = SyncState::SweepNode {
                        l,
                        next_port: pos.msb_position() + 1,
                        escort: None,
                        team_checked: false,
                    };
                    continue;
                }
                return Action::Move(lowest_missing_bit_towards(pos, target, d));
            }
            SyncState::SweepNode {
                l,
                next_port,
                escort,
                team_checked,
            } => {
                let x = ctx.node();
                let k = d - x.msb_position();
                match escort {
                    Some((p, EscortStage::Posted)) => {
                        if ctx.board().order_port.is_some() {
                            return Action::Wait;
                        }
                        *state = SyncState::SweepNode {
                            l,
                            next_port,
                            escort: Some((p, EscortStage::AtChild)),
                            team_checked,
                        };
                        return Action::Move(p);
                    }
                    Some((p, EscortStage::AtChild)) => {
                        *state = SyncState::SweepNode {
                            l,
                            next_port: p + 1,
                            escort: None,
                            team_checked,
                        };
                        return Action::Move(p);
                    }
                    None => {}
                }
                if k == 0 {
                    // Leaf: release the guard (Lemma 1 makes this safe).
                    ctx.board_mut().order_return = true;
                    *state = after_node(x, l, d);
                    continue;
                }
                if next_port > d {
                    // Dispatch of x complete.
                    *state = after_node(x, l, d);
                    continue;
                }
                if !team_checked {
                    // Step 2.2: wait until the k agents are on the node
                    // (ourselves included makes k + 1).
                    if u64::from(ctx.active_here()) < u64::from(k) + 1 {
                        return Action::Wait; // arrivals wake us
                    }
                    *state = SyncState::SweepNode {
                        l,
                        next_port,
                        escort: None,
                        team_checked: true,
                    };
                    continue;
                }
                ctx.board_mut().order_port = Some(next_port);
                *state = SyncState::SweepNode {
                    l,
                    next_port,
                    escort: Some((next_port, EscortStage::Posted)),
                    team_checked: true,
                };
                return Action::Wait;
            }
            SyncState::Navigate { l, target } => {
                let pos = ctx.node();
                if pos == target {
                    *state = SyncState::SweepNode {
                        l,
                        next_port: pos.msb_position() + 1,
                        escort: None,
                        team_checked: false,
                    };
                    continue;
                }
                // Via-meet: clear surplus bits (highest first), then set
                // missing bits (lowest first) — intermediates stay strictly
                // below level l.
                let surplus = pos.0 & !target.0;
                if surplus != 0 {
                    let p = 32 - surplus.leading_zeros();
                    return Action::Move(p);
                }
                return Action::Move(lowest_missing_bit_towards(pos, target, d));
            }
            SyncState::GoHome => {
                let pos = ctx.node();
                if pos == Node::ROOT {
                    ctx.board_mut().done = true;
                    return Action::Terminate;
                }
                return Action::Move(pos.msb_position());
            }
        }
    }
}

/// Where the synchronizer goes after finishing node `x` of level `l`.
fn after_node(x: Node, l: u32, d: u32) -> SyncState {
    match next_same_level(x, d) {
        Some(y) => SyncState::Navigate { l, target: y },
        None => {
            if l < d {
                SyncState::GoRoot { next_phase: l + 1 }
            } else {
                SyncState::GoHome
            }
        }
    }
}

/// How the synchronizer travels between consecutive level-`l` nodes.
///
/// The paper's strategy navigates *via the meet* (Theorem 3, component 3):
/// at most `2·min(l, d−l)` hops through already-clean lower levels. The
/// naive alternative — returning to the root between nodes — is provided
/// as an ablation to quantify what the trick saves (it turns the
/// navigation term into `Σ 2l·C(d,l) = Θ(n log n)` with a larger constant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NavigationMode {
    /// The paper's route: clear surplus bits, then set missing ones.
    #[default]
    ViaMeet,
    /// Ablation: descend all the way to the root, then ascend to the next
    /// node — correct but wasteful.
    ThroughRoot,
}

/// §3's strategy: Lemma 4's team plus the synchronizer.
#[derive(Clone, Copy, Debug)]
pub struct CleanStrategy {
    cube: Hypercube,
    navigation: NavigationMode,
    elect: bool,
}

impl CleanStrategy {
    /// Build the strategy for `cube` (`d ≥ 1`).
    pub fn new(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        CleanStrategy {
            cube,
            navigation: NavigationMode::ViaMeet,
            elect: false,
        }
    }

    /// §3.2-faithful variant: all agents spawn identical and the
    /// synchronizer is elected through the whiteboard by the first agent to
    /// gain access. Per-role move accounting is then unavailable (the
    /// engine cannot know in advance which agent wins), but totals and
    /// correctness are unchanged.
    pub fn with_election(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        CleanStrategy {
            cube,
            navigation: NavigationMode::ViaMeet,
            elect: true,
        }
    }

    /// Ablation constructor: pick the synchronizer's navigation mode
    /// (affects only its own moves; worker counts and correctness are
    /// unchanged).
    pub fn with_navigation(cube: Hypercube, navigation: NavigationMode) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        CleanStrategy {
            cube,
            navigation,
            elect: false,
        }
    }

    /// Exact team size (Theorem 2 / Lemma 4), synchronizer included.
    pub fn team_size(&self) -> u64 {
        u64::try_from(comb::clean_team_size(self.cube.dim())).expect("team fits in u64")
    }

    /// Synthesize the canonical sequential trace procedurally (no engine),
    /// buffering the events into a `Vec` when `record_events` is set.
    /// Thin wrapper over [`CleanStrategy::synthesize_into`] for callers
    /// that need the materialized trace (figures, `trace` export).
    pub fn synthesize(&self, record_events: bool) -> (Metrics, Option<Vec<Event>>) {
        if record_events {
            let mut events = Vec::new();
            let metrics = self.synthesize_into(&mut events);
            (metrics, Some(events))
        } else {
            (self.synthesize_into(&mut NullSink), None)
        }
    }

    /// Synthesize the canonical sequential trace procedurally (no engine),
    /// streaming every event into `sink` as it is produced.
    ///
    /// The emission order is a legal asynchronous schedule: reinforcements
    /// for a phase walk to their destinations before the sweep visits them,
    /// released guards return to the root immediately, and the synchronizer
    /// acts strictly sequentially.
    pub fn synthesize_into(&self, sink: &mut dyn EventSink) -> Metrics {
        let cube = self.cube;
        let d = cube.dim();
        let tree = BroadcastTree::new(cube);
        let n = cube.node_count();
        let team = self.team_size();
        let mut rec = Recorder::new(sink);

        // Agent bookkeeping: pool of ids at the root; guard id per node.
        let sync_id: u32 = 0;
        let mut pool: Vec<u32> = (1..team as u32).rev().collect(); // pop() yields 1, 2, ...
        let mut guard: Vec<Option<u32>> = vec![None; n];
        let mut staged: Staged = Vec::new();

        rec.emit(EventKind::Spawn {
            agent: sync_id,
            node: Node::ROOT,
            role: Role::Coordinator,
        });
        for id in 1..team as u32 {
            rec.emit(EventKind::Spawn {
                agent: id,
                node: Node::ROOT,
                role: Role::Worker,
            });
        }

        // Phase 0: escort one agent to each root child.
        for p in 1..=d {
            let child = Node::ROOT.flip(p);
            let w = pool.pop().expect("pool suffices (Lemma 4)");
            rec.worker_move(w, Node::ROOT, child);
            guard[child.index()] = Some(w);
            rec.sync_move(child);
            rec.sync_move(Node::ROOT);
        }

        for l in 1..=d {
            // Reinforcements walk to their destinations. (The engine path
            // derives destinations from whiteboard counters through
            // `claim_destination`; here we enumerate them directly — same
            // multiset, O(n) per phase instead of O(n) per claim.)
            let mut sent: u32 = 0;
            let mut cursor = Some(Node((1u32 << l) - 1));
            while let Some(dest) = cursor {
                let k = d - dest.msb_position();
                for _ in 1..k {
                    let w = pool.pop().expect("pool suffices (Lemma 4)");
                    let mut pos = Node::ROOT;
                    for hop in tree.root_path(dest) {
                        rec.worker_move(w, pos, hop);
                        pos = hop;
                    }
                    debug_assert!(guard[dest.index()].is_some());
                    staged_push(&mut staged, dest, w);
                    sent += 1;
                }
                cursor = next_same_level(dest, d);
            }
            debug_assert_eq!(sent, phase_claims(d, l), "Lemma 3 at level {l}");
            let _ = sent;
            // Synchronizer: back to the root, then to the level’s first node.
            for hop in meet_walk(rec.sync_pos, Node::ROOT) {
                rec.sync_move(hop);
            }
            let first = Node((1u32 << l) - 1);
            for hop in meet_walk(rec.sync_pos, first) {
                rec.sync_move(hop);
            }
            let navigation = self.navigation;
            // Sweep.
            let mut cursor = Some(first);
            while let Some(x) = cursor {
                let k = d - x.msb_position();
                if k == 0 {
                    // Release the leaf guard.
                    let w = guard[x.index()].take().expect("leaf is guarded");
                    let mut pos = x;
                    while pos != Node::ROOT {
                        let next = pos.flip(pos.msb_position());
                        rec.worker_move(w, pos, next);
                        pos = next;
                    }
                    pool.push(w);
                } else {
                    // Dispatch one agent per child; the node’s own guard
                    // goes first, staged reinforcements follow.
                    let mut squad = vec![guard[x.index()].take().expect("node is guarded")];
                    squad.extend(staged_take(&mut staged, x));
                    debug_assert_eq!(squad.len() as u32, k);
                    for (i, p) in (x.msb_position() + 1..=d).enumerate() {
                        let child = x.flip(p);
                        let w = squad[i];
                        rec.worker_move(w, x, child);
                        guard[child.index()] = Some(w);
                        rec.sync_move(child);
                        rec.sync_move(x);
                    }
                }
                cursor = next_same_level(x, d);
                if let Some(y) = cursor {
                    match navigation {
                        NavigationMode::ViaMeet => {
                            for hop in meet_walk(rec.sync_pos, y) {
                                rec.sync_move(hop);
                            }
                        }
                        NavigationMode::ThroughRoot => {
                            for hop in meet_walk(rec.sync_pos, Node::ROOT) {
                                rec.sync_move(hop);
                            }
                            for hop in meet_walk(rec.sync_pos, y) {
                                rec.sync_move(hop);
                            }
                        }
                    }
                }
            }
        }
        // Home: the synchronizer returns and everyone terminates.
        for hop in meet_walk(rec.sync_pos, Node::ROOT) {
            rec.sync_move(hop);
        }
        rec.emit(EventKind::Terminate {
            agent: sync_id,
            node: Node::ROOT,
        });
        for &w in &pool {
            rec.emit(EventKind::Terminate {
                agent: w,
                node: Node::ROOT,
            });
        }

        Metrics {
            worker_moves: rec.worker_moves,
            coordinator_moves: rec.sync_moves,
            team_size: team,
            peak_away: rec.peak_away,
            ideal_time: None, // measured by the DES under Policy::Synchronous
            activations: rec.worker_moves + rec.sync_moves,
            peak_board_bits: 0,
            peak_local_bits: 0,
        }
    }
}

/// Move/event recorder for the procedural trace generator: counts moves
/// and streams each event straight into the caller's sink.
struct Recorder<'s> {
    sink: &'s mut dyn EventSink,
    worker_moves: u64,
    sync_moves: u64,
    away: u64,
    peak_away: u64,
    time: u64,
    sync_pos: Node,
}

impl<'s> Recorder<'s> {
    fn new(sink: &'s mut dyn EventSink) -> Self {
        Recorder {
            sink,
            worker_moves: 0,
            sync_moves: 0,
            away: 0,
            peak_away: 0,
            time: 0,
            sync_pos: Node::ROOT,
        }
    }

    fn emit(&mut self, kind: EventKind) {
        self.time += 1;
        self.sink.emit(Event {
            time: self.time,
            kind,
        });
    }

    fn track_away(&mut self, from: Node, to: Node) {
        match (from == Node::ROOT, to == Node::ROOT) {
            (true, false) => {
                self.away += 1;
                self.peak_away = self.peak_away.max(self.away);
            }
            (false, true) => self.away -= 1,
            _ => {}
        }
    }

    fn worker_move(&mut self, id: u32, from: Node, to: Node) {
        self.worker_moves += 1;
        self.track_away(from, to);
        self.emit(EventKind::Move {
            agent: id,
            from,
            to,
            role: Role::Worker,
        });
    }

    fn sync_move(&mut self, to: Node) {
        let from = self.sync_pos;
        self.sync_moves += 1;
        self.track_away(from, to);
        self.emit(EventKind::Move {
            agent: 0,
            from,
            to,
            role: Role::Coordinator,
        });
        self.sync_pos = to;
    }
}

// The synthesize function above needs per-node staging for reinforcement
// ids; a sorted Vec keeps it allocation-light.
type Staged = Vec<(Node, Vec<u32>)>;

fn staged_push(staged: &mut Staged, node: Node, id: u32) {
    match staged.binary_search_by_key(&node, |e| e.0) {
        Ok(i) => staged[i].1.push(id),
        Err(i) => staged.insert(i, (node, vec![id])),
    }
}

fn staged_take(staged: &mut Staged, node: Node) -> Vec<u32> {
    match staged.binary_search_by_key(&node, |e| e.0) {
        Ok(i) => staged.remove(i).1,
        Err(_) => Vec::new(),
    }
}

/// The successive nodes of the via-meet walk from `from` to `to`.
fn meet_walk(from: Node, to: Node) -> Vec<Node> {
    let mut path = Vec::new();
    let mut cur = from;
    while cur != to {
        let surplus = cur.0 & !to.0;
        let next = if surplus != 0 {
            Node(cur.0 ^ (1 << (31 - surplus.leading_zeros())))
        } else {
            let missing = to.0 & !cur.0;
            Node(cur.0 | (missing & missing.wrapping_neg()))
        };
        path.push(next);
        cur = next;
    }
    path
}

impl SearchStrategy for CleanStrategy {
    fn name(&self) -> &'static str {
        "clean"
    }

    fn cube(&self) -> Hypercube {
        self.cube
    }

    fn run(&self, policy: Policy) -> Result<SearchOutcome, StrategyError> {
        let mut engine = Engine::new(
            self.cube,
            EngineConfig {
                policy,
                visibility: false,
                ..EngineConfig::default()
            },
        );
        if self.elect {
            for _ in 0..self.team_size() {
                engine.spawn(CleanAgent::candidate(), Node::ROOT, Role::Worker);
            }
        } else {
            engine.spawn(CleanAgent::synchronizer(), Node::ROOT, Role::Coordinator);
            for _ in 1..self.team_size() {
                engine.spawn(CleanAgent::worker(), Node::ROOT, Role::Worker);
            }
        }
        let report = engine.run()?;
        Ok(audited_outcome(self.cube, &report))
    }

    fn fast(&self, audit: bool) -> SearchOutcome {
        if audit {
            streamed_outcome(self.cube, |sink| self.synthesize_into(sink))
        } else {
            synthesized_outcome(self.cube, self.synthesize_into(&mut NullSink), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictions::clean_prediction;

    #[test]
    fn gosper_enumerates_levels_in_order() {
        let cube = Hypercube::new(7);
        for l in 1..=7 {
            let expect = cube.level_nodes(l);
            let mut got = vec![Node((1u32 << l) - 1)];
            while let Some(y) = next_same_level(*got.last().unwrap(), 7) {
                got.push(y);
            }
            assert_eq!(got, expect, "level {l}");
        }
    }

    #[test]
    fn claim_destinations_cover_lemma3_exactly() {
        for d in 2..=9u32 {
            let cube = Hypercube::new(d);
            let tree = BroadcastTree::new(cube);
            for l in 1..d {
                let total = phase_claims(d, l);
                let mut per_node: std::collections::BTreeMap<Node, u32> = Default::default();
                for idx in 0..total {
                    *per_node.entry(claim_destination(d, l, idx)).or_default() += 1;
                }
                for x in cube.level_nodes(l) {
                    let k = tree.node_type(x);
                    let expect = k.saturating_sub(1);
                    assert_eq!(
                        per_node.get(&x).copied().unwrap_or(0),
                        expect,
                        "d={d} l={l} x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn clean_completes_on_small_cubes_under_all_adversaries() {
        for d in 1..=6 {
            let s = CleanStrategy::new(Hypercube::new(d));
            for policy in Policy::adversaries(3) {
                let outcome = s
                    .run(policy)
                    .unwrap_or_else(|e| panic!("d={d} {policy:?}: {e}"));
                assert!(
                    outcome.is_complete(),
                    "d={d} {policy:?}: {:?}",
                    outcome.verdict.violations
                );
            }
        }
    }

    #[test]
    fn worker_moves_match_theorem_3_exactly() {
        for d in 1..=7 {
            let s = CleanStrategy::new(Hypercube::new(d));
            let outcome = s.run(Policy::Fifo).expect("completes");
            let p = clean_prediction(d);
            assert_eq!(
                u128::from(outcome.metrics.worker_moves),
                p.worker_moves,
                "d={d}: every leaf journey is a root round trip"
            );
        }
    }

    #[test]
    fn synchronizer_escorts_every_tree_edge_twice() {
        // Escort moves are part of the synchronizer total; the exact total
        // also includes navigation, which the fast path reproduces — here
        // we check the engine total matches the fast path exactly.
        for d in 1..=7 {
            let s = CleanStrategy::new(Hypercube::new(d));
            let engine = s.run(Policy::Fifo).expect("completes");
            let fast = s.fast(false);
            assert_eq!(
                engine.metrics.coordinator_moves, fast.metrics.coordinator_moves,
                "d={d}"
            );
            assert_eq!(
                engine.metrics.worker_moves, fast.metrics.worker_moves,
                "d={d}"
            );
        }
    }

    #[test]
    fn fast_trace_is_a_correct_search() {
        for d in 1..=8 {
            let s = CleanStrategy::new(Hypercube::new(d));
            let outcome = s.fast(true);
            assert!(
                outcome.is_complete(),
                "d={d}: {:?}",
                outcome.verdict.violations
            );
        }
    }

    #[test]
    fn through_root_navigation_is_correct_but_costlier() {
        for d in 3..=9u32 {
            let cube = Hypercube::new(d);
            let meet = CleanStrategy::new(cube);
            let naive = CleanStrategy::with_navigation(cube, NavigationMode::ThroughRoot);
            let m = meet.fast(d <= 6);
            let n = naive.fast(d <= 6);
            if d <= 6 {
                assert!(m.is_complete() && n.is_complete(), "d={d}");
            }
            // Identical worker counts, strictly more synchronizer moves.
            assert_eq!(m.metrics.worker_moves, n.metrics.worker_moves);
            assert!(
                n.metrics.coordinator_moves > m.metrics.coordinator_moves,
                "d={d}: naive {} vs via-meet {}",
                n.metrics.coordinator_moves,
                m.metrics.coordinator_moves
            );
        }
        // The gap widens with d (the ablation quantifies Theorem 3's trick).
        let gap = |d: u32| {
            let cube = Hypercube::new(d);
            let a = CleanStrategy::with_navigation(cube, NavigationMode::ThroughRoot)
                .fast(false)
                .metrics
                .coordinator_moves as f64;
            let b = CleanStrategy::new(cube)
                .fast(false)
                .metrics
                .coordinator_moves as f64;
            a / b
        };
        assert!(gap(12) > gap(6), "ratio must grow with d");
    }

    #[test]
    fn whiteboard_election_matches_preassigned_roles() {
        // §3.2: identical agents elect the synchronizer through the
        // whiteboard. Totals (and correctness) must match the preassigned
        // variant under every adversary.
        for d in 1..=6 {
            let cube = Hypercube::new(d);
            for policy in Policy::adversaries(3) {
                let elected = CleanStrategy::with_election(cube)
                    .run(policy)
                    .unwrap_or_else(|e| panic!("d={d} {policy:?}: {e}"));
                assert!(
                    elected.is_complete(),
                    "d={d} {policy:?}: {:?}",
                    elected.verdict.violations
                );
                let assigned = CleanStrategy::new(cube).run(policy).unwrap();
                assert_eq!(
                    elected.metrics.total_moves(),
                    assigned.metrics.total_moves(),
                    "d={d} {policy:?}"
                );
                assert_eq!(elected.metrics.team_size, assigned.metrics.team_size);
            }
        }
    }

    #[test]
    fn team_size_matches_lemma_4() {
        for d in 1..=10 {
            let s = CleanStrategy::new(Hypercube::new(d));
            assert_eq!(u128::from(s.team_size()), comb::clean_team_size(d));
        }
    }

    #[test]
    fn synchronous_schedule_yields_ideal_time() {
        let s = CleanStrategy::new(Hypercube::new(5));
        let outcome = s.run(Policy::Synchronous).expect("completes");
        assert!(outcome.is_complete());
        let t = outcome.metrics.ideal_time.expect("synchronous run");
        // Theorem 4: the time is dominated by the synchronizer's walk.
        assert!(t >= outcome.metrics.coordinator_moves);
    }

    #[test]
    fn whiteboards_and_local_state_stay_logarithmic() {
        let s = CleanStrategy::new(Hypercube::new(6));
        let mut engine = Engine::new(
            Hypercube::new(6),
            EngineConfig {
                policy: Policy::Random(11),
                ..EngineConfig::default()
            },
        );
        engine.spawn(CleanAgent::synchronizer(), Node::ROOT, Role::Coordinator);
        for _ in 1..s.team_size() {
            engine.spawn(CleanAgent::worker(), Node::ROOT, Role::Worker);
        }
        let report = engine.run().expect("completes");
        assert!(report.metrics.peak_board_bits <= 128);
        assert!(report.metrics.peak_local_bits <= 64);
    }
}
