//! Closed-form predictions from the paper's theorems, bundled per strategy.
//!
//! Every quantity here is *exact* (computed in `u128`), not asymptotic; the
//! experiment harness compares measured runs against these and separately
//! fits the asymptotic orders. Where the paper's statement and its own
//! proof disagree (see `DESIGN.md` §4), the proof's quantity is used and
//! the discrepancy is noted.

use hypersweep_topology::combinatorics as comb;

/// Predictions for Algorithm CLEAN (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CleanPrediction {
    /// Exact team size (Lemma 4 + synchronizer):
    /// `1 + max(d, max_l [C(d,l+1) + C(d−1,l−1)])`.
    pub team: u128,
    /// Exact worker moves (Theorem 3): `Σ_l 2l·C(d−1,l−1) = (n/2)(log n+1)`.
    pub worker_moves: u128,
    /// Exact synchronizer escort moves (Theorem 3, component 4): `2(n−1)`.
    pub sync_escort_moves: u128,
    /// Upper bound on all synchronizer moves (Theorem 3's four components).
    pub sync_moves_upper: u128,
    /// The `O(n log n)` scale `n·log n` for asymptotic columns.
    pub n_log_n: u128,
}

/// Compute [`CleanPrediction`] for dimension `d ≥ 1`.
pub fn clean_prediction(d: u32) -> CleanPrediction {
    let n = comb::pow2(d);
    let sync_nav_upper: u128 = (1..d)
        .map(|l| {
            let per_hop = 2 * l.min(d - l) as u128;
            per_hop * comb::nodes_at_level(d, l)
        })
        .sum();
    let trips: u128 = (1..=d as u128).map(|l| 2 * l).sum();
    CleanPrediction {
        team: comb::clean_team_size(d),
        worker_moves: comb::clean_agent_moves(d),
        sync_escort_moves: comb::clean_sync_escort_moves(d),
        sync_moves_upper: comb::clean_sync_escort_moves(d) + sync_nav_upper + trips,
        n_log_n: n * d as u128,
    }
}

/// Per-phase agent accounting for CLEAN: `(guards, extras, workers_peak)`
/// when cleaning from level `l` to `l + 1` (Lemmas 3 and 4).
pub fn clean_phase_accounting(d: u32, l: u32) -> (u128, u128, u128) {
    if l == 0 {
        return (1, d as u128, d as u128);
    }
    let guards = comb::nodes_at_level(d, l);
    let extras = comb::lemma3_extra_agents(d, l);
    (guards, extras, comb::clean_workers_at_phase(d, l))
}

/// Predictions for Algorithm CLEAN WITH VISIBILITY (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VisibilityPrediction {
    /// Theorem 5: exactly `n/2` agents.
    pub agents: u128,
    /// Theorem 7: exactly `log n = d` ideal time units.
    pub ideal_time: u128,
    /// Theorem 8: exactly `Σ_l l·C(d−1,l−1) = (n/4)(log n + 1)` moves.
    pub moves: u128,
}

/// Compute [`VisibilityPrediction`] for dimension `d ≥ 1`.
pub fn visibility_prediction(d: u32) -> VisibilityPrediction {
    VisibilityPrediction {
        agents: comb::visibility_agents(d),
        ideal_time: d as u128,
        moves: comb::visibility_moves(d),
    }
}

/// Predictions for the §5 cloning variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CloningPrediction {
    /// Total agents after all cloning: `n/2`.
    pub agents: u128,
    /// Ideal time: `log n` (with the decreasing-type dispatch order).
    pub ideal_time: u128,
    /// Moves: `n − 1` (every broadcast-tree edge crossed exactly once).
    pub moves: u128,
}

/// Compute [`CloningPrediction`] for dimension `d ≥ 1`.
pub fn cloning_prediction(d: u32) -> CloningPrediction {
    CloningPrediction {
        agents: comb::visibility_agents(d),
        ideal_time: d as u128,
        moves: comb::cloning_moves(d),
    }
}

/// The §5 synchronous variant matches the visibility strategy exactly.
pub fn synchronous_prediction(d: u32) -> VisibilityPrediction {
    visibility_prediction(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_prediction_d6() {
        let p = clean_prediction(6);
        assert_eq!(p.team, 26);
        assert_eq!(p.worker_moves, 224); // (64/2)(6+1)
        assert_eq!(p.sync_escort_moves, 126); // 2(n−1)
        assert!(p.sync_moves_upper >= p.sync_escort_moves);
    }

    #[test]
    fn visibility_prediction_matches_theorems() {
        for d in 2..=20 {
            let p = visibility_prediction(d);
            assert_eq!(p.agents, comb::pow2(d - 1));
            assert_eq!(p.ideal_time, d as u128);
            assert_eq!(p.moves, comb::pow2(d - 2) * (d as u128 + 1));
        }
    }

    #[test]
    fn cloning_prediction_moves_are_n_minus_1() {
        for d in 1..=20 {
            let p = cloning_prediction(d);
            assert_eq!(p.moves, comb::pow2(d) - 1);
            assert_eq!(p.agents, comb::visibility_agents(d));
        }
    }

    #[test]
    fn phase_accounting_sums() {
        // Guards + extras == workers engaged, per phase.
        for d in 2..=12u32 {
            for l in 1..d {
                let (g, e, w) = clean_phase_accounting(d, l);
                assert_eq!(g + e, w, "d={d} l={l}");
            }
        }
    }

    #[test]
    fn clean_moves_dominate_visibility_moves() {
        // CLEAN walks every leaf journey twice (round trips), visibility
        // once: the ratio is exactly 2.
        for d in 2..=16 {
            assert_eq!(
                clean_prediction(d).worker_moves,
                2 * visibility_prediction(d).moves
            );
        }
    }
}
