//! Common strategy interface and verified outcomes.

use hypersweep_intruder::{verify_trace, Monitor, MonitorConfig, Verdict};
use hypersweep_sim::{
    EventSink, MeteredSink, Metrics, Policy, RunError, RunReport, SummarizingSink, TraceSummary,
};
use hypersweep_topology::{Hypercube, Node};

/// Why a strategy could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrategyError {
    /// The underlying executor failed (deadlock, livelock, invalid action).
    Run(RunError),
    /// The strategy does not support the requested schedule (e.g. the §5
    /// synchronous variant under an asynchronous adversary).
    UnsupportedPolicy {
        /// The strategy's name.
        strategy: &'static str,
        /// The rejected policy.
        policy: Policy,
    },
}

impl From<RunError> for StrategyError {
    fn from(e: RunError) -> Self {
        StrategyError::Run(e)
    }
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::Run(e) => write!(f, "{e}"),
            StrategyError::UnsupportedPolicy { strategy, policy } => {
                write!(
                    f,
                    "{strategy} does not support the {} schedule",
                    policy.name()
                )
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// A completed, audited search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Move/team/time counters.
    pub metrics: Metrics,
    /// The monitors' verdict (monotonicity, contiguity, coverage, capture).
    pub verdict: Verdict,
    /// Per-kind event counts of the trace, collected while streaming it
    /// through the auditor. `None` when the run was not streamed (engine
    /// runs, unaudited fast runs).
    pub trace_summary: Option<TraceSummary>,
}

impl SearchOutcome {
    /// Convenience: the search decontaminated everything, monotonically and
    /// contiguously, and captured the intruder.
    pub fn is_complete(&self) -> bool {
        self.verdict.is_complete()
    }
}

/// A contiguous-search strategy on a hypercube.
pub trait SearchStrategy {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// The cube being searched.
    fn cube(&self) -> Hypercube;

    /// Execute on the discrete-event engine under the given schedule and
    /// audit the trace.
    fn run(&self, policy: Policy) -> Result<SearchOutcome, StrategyError>;

    /// Synthesize the canonical run directly (no engine), returning exact
    /// metrics; with `audit` the synthesized trace is also run through the
    /// monitors (costs memory proportional to the number of moves).
    fn fast(&self, audit: bool) -> SearchOutcome;
}

/// Default monitor configuration for a cube: full per-event checks at
/// every dimension, with a greedy evader starting at the far corner `11…1`
/// on small cubes and a lazy evader on large ones (greedy reactions walk
/// the whole contaminated set).
///
/// Contiguity and frontier coverage are checked after *every* event —
/// since the incremental clean-region connectivity kernel both oracles are
/// `O(1)` per query, so there is nothing left to stride-sample.
pub fn default_monitor_config(cube: Hypercube) -> MonitorConfig {
    let n = cube.node_count();
    let far = Node(n as u32 - 1);
    if n <= 1 {
        return MonitorConfig {
            contiguity_every: 1,
            intruder_start: None,
            greedy_evader: false,
        };
    }
    MonitorConfig {
        contiguity_every: 1,
        intruder_start: Some(far),
        greedy_evader: n <= 1024,
    }
}

/// Audit an engine report and bundle it into an outcome.
pub fn audited_outcome(cube: Hypercube, report: &RunReport) -> SearchOutcome {
    let verdict = verify_trace(
        &cube,
        Node::ROOT,
        &report.events,
        default_monitor_config(cube),
    );
    SearchOutcome {
        metrics: report.metrics,
        verdict,
        trace_summary: None,
    }
}

/// Synthesize a run *through* an online monitor: the generator streams
/// each event into the auditor as it is produced, so the full trace is
/// never materialized — run memory is `O(n)` state instead of `O(moves)`.
/// The verdict is identical to buffering the trace and calling
/// [`verify_trace`], because feeding a [`Monitor`] sink *is* the observe
/// loop.
pub fn streamed_outcome<F>(cube: Hypercube, synthesize: F) -> SearchOutcome
where
    F: FnOnce(&mut dyn EventSink) -> Metrics,
{
    let mut monitor = Monitor::new(&cube, Node::ROOT, default_monitor_config(cube));
    // Meter the stream into the `sink.events` counter of the process
    // telemetry registry (no-op unless one is installed), so a daemon can
    // watch a multi-million-event audit advance while it runs.
    let mut tee = MeteredSink::new(SummarizingSink::new(&mut monitor));
    let metrics = synthesize(&mut tee);
    let summary = tee.inner().summary();
    // Flush the metered tail and release the monitor borrow.
    drop(tee);
    SearchOutcome {
        metrics,
        verdict: monitor.verdict(),
        trace_summary: Some(summary),
    }
}

/// Bundle synthesized metrics and (optionally) an audited trace.
pub fn synthesized_outcome(
    cube: Hypercube,
    metrics: Metrics,
    events: Option<&[hypersweep_sim::Event]>,
) -> SearchOutcome {
    let verdict = match events {
        Some(ev) => verify_trace(&cube, Node::ROOT, ev, default_monitor_config(cube)),
        None => {
            // No trace to audit: report the structural facts we know
            // (metrics only); verdict fields reflect "not checked" as
            // vacuous truths except coverage, which the caller guarantees
            // by construction of the generator.
            Verdict {
                monotone: true,
                contiguous: true,
                all_clean: true,
                capture: None,
                violations: Vec::new(),
                events: 0,
            }
        }
    };
    SearchOutcome {
        metrics,
        verdict,
        trace_summary: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_config_checks_contiguity_per_event_at_every_dimension() {
        let small = default_monitor_config(Hypercube::new(6));
        assert_eq!(small.contiguity_every, 1);
        assert!(small.greedy_evader);
        assert_eq!(small.intruder_start, Some(Node(63)));

        let large = default_monitor_config(Hypercube::new(14));
        assert_eq!(
            large.contiguity_every, 1,
            "incremental connectivity makes per-event contiguity affordable at scale"
        );
        assert!(!large.greedy_evader);
    }

    #[test]
    fn streamed_outcome_meters_events_into_the_global_registry() {
        let registry = hypersweep_telemetry::MetricsRegistry::new();
        hypersweep_telemetry::install_global(&registry);
        let cube = Hypercube::new(3);
        let outcome = streamed_outcome(cube, |sink| {
            for t in 0..3u64 {
                sink.emit(hypersweep_sim::Event {
                    time: t,
                    kind: hypersweep_sim::EventKind::Spawn {
                        agent: t as u32,
                        node: Node::ROOT,
                        role: hypersweep_sim::Role::Worker,
                    },
                });
            }
            Metrics::default()
        });
        assert_eq!(outcome.trace_summary.map(|s| s.events), Some(3));
        // The metered tee flushed into `sink.events` on drop. Other tests
        // in this process may also stream through the global registry, so
        // assert a floor, not equality.
        assert!(registry.snapshot().counter("sink.events").unwrap_or(0) >= 3);
    }

    #[test]
    fn strategy_error_displays() {
        let e = StrategyError::UnsupportedPolicy {
            strategy: "synchronous-variant",
            policy: Policy::Fifo,
        };
        assert!(e.to_string().contains("fifo"));
        let r: StrategyError = RunError::ActivationLimit.into();
        assert!(r.to_string().contains("activation"));
    }
}
