//! Algorithm 2 — `CLEAN WITH VISIBILITY` (§4.2).
//!
//! The fully local rule for the agents on a node `x` of type `T(k)`:
//!
//! * if fewer than `2^{k−1}` agents are on `x`, wait;
//! * when `2^{k−1}` agents are on `x` **and** every smaller neighbour of
//!   `x` is clean or guarded: one agent moves to the bigger neighbour of
//!   type `T(0)`, and `2^{i−1}` agents move to each bigger neighbour of
//!   type `T(i)` for `0 < i < k`;
//! * if there are no bigger neighbours (a leaf), terminate — the agent
//!   stays as the leaf's guard.
//!
//! Slot arithmetic: dispatching agents claim consecutive slots `s` from the
//! whiteboard; slot `0` goes to the `T(0)` child, and slot `s ≥ 1` to the
//! `T(msb(s))` child — exactly `2^{i−1}` slots land on `T(i)`. The child of
//! type `T(i)` lies across port `d − i`.

use hypersweep_sim::{
    Action, AgentProgram, Board, Ctx, Engine, EngineConfig, Event, EventKind, EventSink, Metrics,
    NullSink, Policy, Role,
};
use hypersweep_topology::combinatorics as comb;
use hypersweep_topology::{BroadcastTree, Hypercube, Node};

use crate::outcome::{
    audited_outcome, streamed_outcome, synthesized_outcome, SearchOutcome, SearchStrategy,
    StrategyError,
};

/// Whiteboard of the visibility strategy: a dispatch-started flag and the
/// next slot counter — `O(log n)` bits.
#[derive(Clone, Default)]
pub struct VisBoard {
    /// Set by the first agent that validated the dispatch condition.
    pub dispatch_started: bool,
    /// Next dispatch slot to be claimed.
    pub next_slot: u32,
}

impl Board for VisBoard {
    fn bits_used(&self) -> u32 {
        1 + 32 - self.next_slot.leading_zeros()
    }
}

/// Map a dispatch slot to the type of the receiving child: slot `0` → type
/// `0`; slot `s ≥ 1` → type `msb(s)` (so type `i` receives `2^{i−1}`
/// slots).
#[inline]
pub fn slot_child_type(slot: u32) -> u32 {
    if slot == 0 {
        0
    } else {
        32 - slot.leading_zeros()
    }
}

/// The visibility agent program.
pub struct VisibilityAgent;

impl AgentProgram for VisibilityAgent {
    type Board = VisBoard;

    fn step(&mut self, ctx: &mut Ctx<'_, VisBoard>) -> Action {
        let x = ctx.node();
        let d = ctx.cube().dim();
        let k = d - x.msb_position();
        if k == 0 {
            // A leaf: terminate and guard forever.
            return Action::Terminate;
        }
        if !ctx.board().dispatch_started {
            let need = comb::visibility_need(k);
            if u128::from(ctx.active_here()) < need {
                return Action::Wait;
            }
            if !ctx.smaller_neighbors_safe() {
                return Action::Wait;
            }
            ctx.board_mut().dispatch_started = true;
        }
        let slot = ctx.board().next_slot;
        ctx.board_mut().next_slot = slot + 1;
        let child_type = slot_child_type(slot);
        debug_assert!(child_type < k, "slot {slot} exceeds the dispatch of T({k})");
        Action::Move(d - child_type)
    }

    fn local_bits(&self) -> u32 {
        0 // the rule is stateless; everything lives on whiteboards
    }
}

/// §4's strategy: `n/2` identical agents at the homebase, visibility model.
#[derive(Clone, Copy, Debug)]
pub struct VisibilityStrategy {
    cube: Hypercube,
}

impl VisibilityStrategy {
    /// Build the strategy for `cube` (`d ≥ 1`).
    pub fn new(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        VisibilityStrategy { cube }
    }

    /// The team size: `n/2` (Theorem 5).
    pub fn team_size(&self) -> u64 {
        1 << (self.cube.dim() - 1)
    }

    /// Synthesize the canonical synchronous trace, buffering the events
    /// into a `Vec` when `record_events` is set. Thin wrapper over
    /// [`VisibilityStrategy::synthesize_into`].
    pub fn synthesize(&self, record_events: bool) -> (Metrics, Option<Vec<Event>>) {
        if record_events {
            let mut events = Vec::new();
            let metrics = self.synthesize_into(&mut events);
            (metrics, Some(events))
        } else {
            (self.synthesize_into(&mut NullSink), None)
        }
    }

    /// Synthesize the canonical synchronous trace directly, streaming every
    /// event into `sink`: class `C_i` dispatches at round `i + 1`.
    pub fn synthesize_into(&self, sink: &mut dyn EventSink) -> Metrics {
        let cube = self.cube;
        let d = cube.dim();
        let tree = BroadcastTree::new(cube);
        let n = cube.node_count();
        let team = self.team_size();
        // Agent groups stationed per node (ids), populated as waves arrive.
        let mut station: Vec<Vec<u32>> = vec![Vec::new(); n];
        station[Node::ROOT.index()] = (0..team as u32).collect();
        for id in 0..team as u32 {
            sink.emit(Event {
                time: 0,
                kind: EventKind::Spawn {
                    agent: id,
                    node: Node::ROOT,
                    role: Role::Worker,
                },
            });
        }
        let mut worker_moves: u64 = 0;
        // Wavefront: class C_i dispatches in round i+1. Within a class we
        // process nodes in increasing order; each dispatch is atomic per
        // agent, children in slot order.
        for i in 0..=d {
            let class = tree.msb_class_nodes(i);
            for x in class {
                let k = tree.node_type(x);
                if k == 0 {
                    continue; // leaves keep their guard
                }
                let group = std::mem::take(&mut station[x.index()]);
                debug_assert_eq!(group.len() as u128, comb::visibility_need(k));
                for (slot, id) in group.into_iter().enumerate() {
                    let child_type = slot_child_type(slot as u32);
                    let to = x.flip(d - child_type);
                    worker_moves += 1;
                    sink.emit(Event {
                        time: u64::from(i) + 1,
                        kind: EventKind::Move {
                            agent: id,
                            from: x,
                            to,
                            role: Role::Worker,
                        },
                    });
                    station[to.index()].push(id);
                }
            }
        }
        // All survivors sit on leaves; emit terminations.
        for x in tree.leaves() {
            for &id in &station[x.index()] {
                sink.emit(Event {
                    time: u64::from(d) + 1,
                    kind: EventKind::Terminate { agent: id, node: x },
                });
            }
        }
        Metrics {
            worker_moves,
            coordinator_moves: 0,
            team_size: team,
            peak_away: team,
            ideal_time: Some(u64::from(d)),
            activations: worker_moves,
            peak_board_bits: 0,
            peak_local_bits: 0,
        }
    }
}

impl SearchStrategy for VisibilityStrategy {
    fn name(&self) -> &'static str {
        "clean-with-visibility"
    }

    fn cube(&self) -> Hypercube {
        self.cube
    }

    fn run(&self, policy: Policy) -> Result<SearchOutcome, StrategyError> {
        let mut engine = Engine::new(
            self.cube,
            EngineConfig {
                policy,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        for _ in 0..self.team_size() {
            engine.spawn(VisibilityAgent, Node::ROOT, Role::Worker);
        }
        let report = engine.run()?;
        Ok(audited_outcome(self.cube, &report))
    }

    fn fast(&self, audit: bool) -> SearchOutcome {
        if audit {
            streamed_outcome(self.cube, |sink| self.synthesize_into(sink))
        } else {
            synthesized_outcome(self.cube, self.synthesize_into(&mut NullSink), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictions::visibility_prediction;

    #[test]
    fn slot_mapping_gives_each_child_its_share() {
        // For k = 5: slots 0..16 must send 1,1,2,4,8 agents to types
        // 0,1,2,3,4.
        let mut per_type = [0u32; 5];
        for s in 0..16 {
            per_type[slot_child_type(s) as usize] += 1;
        }
        assert_eq!(per_type, [1, 1, 2, 4, 8]);
    }

    #[test]
    fn synchronous_run_matches_theorems_5_7_8() {
        for d in 1..=8 {
            let cube = Hypercube::new(d);
            let s = VisibilityStrategy::new(cube);
            let outcome = s.run(Policy::Synchronous).expect("completes");
            let p = visibility_prediction(d);
            assert!(
                outcome.is_complete(),
                "d={d}: {:?}",
                outcome.verdict.violations
            );
            assert_eq!(u128::from(outcome.metrics.team_size), p.agents, "d={d}");
            assert_eq!(
                outcome.metrics.ideal_time.map(u128::from),
                Some(p.ideal_time),
                "d={d}"
            );
            assert_eq!(u128::from(outcome.metrics.total_moves()), p.moves, "d={d}");
        }
    }

    #[test]
    fn asynchronous_runs_are_correct_under_every_adversary() {
        for policy in Policy::adversaries(4) {
            for d in 1..=7 {
                let cube = Hypercube::new(d);
                let s = VisibilityStrategy::new(cube);
                let outcome = s.run(policy).expect("completes");
                assert!(
                    outcome.is_complete(),
                    "d={d} policy={policy:?}: {:?}",
                    outcome.verdict.violations
                );
                let p = visibility_prediction(d);
                assert_eq!(u128::from(outcome.metrics.total_moves()), p.moves);
                assert_eq!(u128::from(outcome.metrics.team_size), p.agents);
            }
        }
    }

    #[test]
    fn fast_path_matches_engine_metrics() {
        for d in 1..=8 {
            let cube = Hypercube::new(d);
            let s = VisibilityStrategy::new(cube);
            let engine_outcome = s.run(Policy::Synchronous).unwrap();
            let fast_outcome = s.fast(true);
            assert!(fast_outcome.is_complete(), "d={d}");
            assert_eq!(
                fast_outcome.metrics.total_moves(),
                engine_outcome.metrics.total_moves(),
                "d={d}"
            );
            assert_eq!(
                fast_outcome.metrics.ideal_time,
                engine_outcome.metrics.ideal_time
            );
            assert_eq!(
                fast_outcome.metrics.team_size,
                engine_outcome.metrics.team_size
            );
        }
    }

    #[test]
    fn fast_path_scales_to_large_dimensions() {
        let s = VisibilityStrategy::new(Hypercube::new(18));
        let outcome = s.fast(false);
        let p = visibility_prediction(18);
        assert_eq!(u128::from(outcome.metrics.total_moves()), p.moves);
        assert_eq!(u128::from(outcome.metrics.team_size), p.agents);
    }

    #[test]
    fn final_guards_sit_exactly_on_the_leaves() {
        let cube = Hypercube::new(6);
        let s = VisibilityStrategy::new(cube);
        let mut engine = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::Fifo,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        for _ in 0..s.team_size() {
            engine.spawn(VisibilityAgent, Node::ROOT, Role::Worker);
        }
        let report = engine.run().unwrap();
        let tree = BroadcastTree::new(cube);
        for x in cube.nodes() {
            let expect = u32::from(tree.is_leaf(x));
            assert_eq!(report.occupancy[x.index()], expect, "node {x}");
        }
    }

    #[test]
    fn whiteboard_stays_logarithmic() {
        let cube = Hypercube::new(8);
        let s = VisibilityStrategy::new(cube);
        let mut engine = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::Random(7),
                visibility: true,
                ..EngineConfig::default()
            },
        );
        for _ in 0..s.team_size() {
            engine.spawn(VisibilityAgent, Node::ROOT, Role::Worker);
        }
        let report = engine.run().unwrap();
        // next_slot ≤ n/2 → at most 1 + log2(n/2) bits.
        assert!(report.metrics.peak_board_bits <= 1 + 8);
    }
}
