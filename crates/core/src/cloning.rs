//! The §5 cloning variant of the visibility strategy.
//!
//! One agent starts at the homebase. On a node `x` of type `T(k)` whose
//! smaller neighbours are all clean or guarded, the agent clones itself
//! towards the children of types `T(k−1), …, T(1)` (one clone each — the
//! clone subsequently clones further down its own subtree) and finally
//! moves itself to the `T(0)` child, where it terminates as the leaf's
//! guard. Every broadcast-tree edge is crossed exactly once, so the total
//! number of moves is `n − 1`; the team still grows to `n/2` agents
//! (§5: "cloning … the number of moves performed by the agents is reduced
//! to `n − 1`").
//!
//! Dispatch order matters for the `log n` time bound: cloning towards the
//! *largest* subtree first keeps every chain advancing one level per time
//! unit (the completion time recursion `g(k) = max_i (k−i) + g(i)` solves
//! to `g(k) = k` only for the decreasing-type order).

use hypersweep_sim::{
    Action, AgentProgram, Ctx, Engine, EngineConfig, Event, EventKind, EventSink, Metrics,
    NullSink, Policy, Role,
};
use hypersweep_topology::{BroadcastTree, Hypercube, Node};

use crate::outcome::{
    audited_outcome, streamed_outcome, synthesized_outcome, SearchOutcome, SearchStrategy,
    StrategyError,
};
use crate::visibility::VisBoard;

/// Which child a dispatching agent serves first.
///
/// §5's `log n` bound needs the *largest* subtree first: the completion
/// recursion `g(k) = max_i (k−i) + g(i)` solves to `g(k) = k` in that
/// order. Smallest-first is provided as an ablation — still correct and
/// still `n − 1` moves, but the critical path degrades to
/// `g'(k) = max_i (i+1) + g'(i) = Θ(k²)`, i.e. `Θ(log² n)` time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DispatchOrder {
    /// The §5 order: types `T(k−1), …, T(1)` cloned first, the agent
    /// finishes on the `T(0)` child.
    #[default]
    LargestSubtreeFirst,
    /// Ablation: `T(0)` cloned first, the agent finishes on the `T(k−1)`
    /// child.
    SmallestSubtreeFirst,
}

/// The cloning agent. Local state: the next child port to clone towards
/// (`0` = dispatch not started) — `O(log n)` bits.
#[derive(Clone)]
pub struct CloningAgent {
    next_port: u32,
    order: DispatchOrder,
}

impl CloningAgent {
    /// A fresh agent (as spawned at the homebase or materialized by a
    /// clone).
    pub fn new() -> Self {
        CloningAgent {
            next_port: 0,
            order: DispatchOrder::LargestSubtreeFirst,
        }
    }

    /// A fresh agent using the given dispatch order.
    pub fn with_order(order: DispatchOrder) -> Self {
        CloningAgent {
            next_port: 0,
            order,
        }
    }
}

impl Default for CloningAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl AgentProgram for CloningAgent {
    type Board = VisBoard;

    fn step(&mut self, ctx: &mut Ctx<'_, VisBoard>) -> Action {
        let x = ctx.node();
        let d = ctx.cube().dim();
        let m = x.msb_position();
        if m == d {
            // Type T(0): a leaf. Guard forever.
            return Action::Terminate;
        }
        if self.next_port == 0 {
            if !ctx.smaller_neighbors_safe() {
                return Action::Wait;
            }
            // Children sit across ports m+1..=d with types k−1..0.
            self.next_port = match self.order {
                DispatchOrder::LargestSubtreeFirst => m + 1,
                DispatchOrder::SmallestSubtreeFirst => d,
            };
        }
        let port = self.next_port;
        match self.order {
            DispatchOrder::LargestSubtreeFirst => {
                // Clone towards increasing ports (decreasing subtree type),
                // then move to the T(0) child across port d.
                if port == d {
                    self.next_port = 0;
                    Action::Move(port)
                } else {
                    self.next_port = port + 1;
                    Action::Clone(port)
                }
            }
            DispatchOrder::SmallestSubtreeFirst => {
                // Clone towards decreasing ports, then move to the T(k−1)
                // child across port m+1.
                if port == m + 1 {
                    self.next_port = 0;
                    Action::Move(port)
                } else {
                    self.next_port = port - 1;
                    Action::Clone(port)
                }
            }
        }
    }

    fn clone_program(&self) -> Self {
        CloningAgent::with_order(self.order)
    }

    fn local_bits(&self) -> u32 {
        32 - self.next_port.leading_zeros()
    }
}

/// The cloning strategy: a single seed agent, `n − 1` total moves.
///
/// ```
/// use hypersweep_core::{CloningStrategy, SearchStrategy};
/// use hypersweep_sim::Policy;
/// use hypersweep_topology::Hypercube;
///
/// let outcome = CloningStrategy::new(Hypercube::new(5))
///     .run(Policy::Fifo)
///     .unwrap();
/// assert!(outcome.is_complete());
/// assert_eq!(outcome.metrics.total_moves(), 31); // n − 1
/// assert_eq!(outcome.metrics.team_size, 16);     // n/2 after cloning
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CloningStrategy {
    cube: Hypercube,
    order: DispatchOrder,
}

impl CloningStrategy {
    /// Build the strategy for `cube` (`d ≥ 1`).
    pub fn new(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        CloningStrategy {
            cube,
            order: DispatchOrder::LargestSubtreeFirst,
        }
    }

    /// Ablation constructor: pick the dispatch order (see
    /// [`DispatchOrder`]).
    pub fn with_dispatch_order(cube: Hypercube, order: DispatchOrder) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        CloningStrategy { cube, order }
    }

    /// Synthesize the canonical trace, buffering the events into a `Vec`
    /// when `record_events` is set. Thin wrapper over
    /// [`CloningStrategy::synthesize_into`].
    pub fn synthesize(&self, record_events: bool) -> (Metrics, Option<Vec<Event>>) {
        if record_events {
            let mut events = Vec::new();
            let metrics = self.synthesize_into(&mut events);
            (metrics, Some(events))
        } else {
            (self.synthesize_into(&mut NullSink), None)
        }
    }

    /// Synthesize the canonical trace, streaming every event into `sink`:
    /// node `x` dispatches at round `m(x) + 1`; clone `j` of the dispatch
    /// materializes in that round.
    pub fn synthesize_into(&self, sink: &mut dyn EventSink) -> Metrics {
        let cube = self.cube;
        let d = cube.dim();
        let tree = BroadcastTree::new(cube);
        let n = cube.node_count();
        let mut agent_at: Vec<Option<u32>> = vec![None; n];
        agent_at[Node::ROOT.index()] = Some(0);
        let mut next_agent: u32 = 1;
        sink.emit(Event {
            time: 0,
            kind: EventKind::Spawn {
                agent: 0,
                node: Node::ROOT,
                role: Role::Worker,
            },
        });
        let mut moves: u64 = 0;
        for i in 0..=d {
            for x in tree.msb_class_nodes(i) {
                let k = tree.node_type(x);
                if k == 0 {
                    continue;
                }
                let id = agent_at[x.index()].expect("dispatching node is guarded");
                let m = x.msb_position();
                for port in m + 1..=d {
                    let to = x.flip(port);
                    moves += 1;
                    if port == d {
                        // The original moves to the T(0) child.
                        sink.emit(Event {
                            time: u64::from(i) + 1,
                            kind: EventKind::Move {
                                agent: id,
                                from: x,
                                to,
                                role: Role::Worker,
                            },
                        });
                        agent_at[x.index()] = None;
                        agent_at[to.index()] = Some(id);
                    } else {
                        let child = next_agent;
                        next_agent += 1;
                        sink.emit(Event {
                            time: u64::from(i) + 1,
                            kind: EventKind::CloneSpawn {
                                parent: id,
                                child,
                                from: x,
                                to,
                            },
                        });
                        agent_at[to.index()] = Some(child);
                    }
                }
            }
        }
        for x in tree.leaves() {
            if let Some(id) = agent_at[x.index()] {
                sink.emit(Event {
                    time: u64::from(d) + 1,
                    kind: EventKind::Terminate { agent: id, node: x },
                });
            }
        }
        Metrics {
            worker_moves: moves,
            coordinator_moves: 0,
            team_size: u64::from(next_agent),
            peak_away: u64::from(next_agent), // every agent ends away from the root
            ideal_time: Some(u64::from(d)),
            activations: moves,
            peak_board_bits: 0,
            peak_local_bits: 32 - (d.leading_zeros()),
        }
    }
}

impl SearchStrategy for CloningStrategy {
    fn name(&self) -> &'static str {
        "cloning"
    }

    fn cube(&self) -> Hypercube {
        self.cube
    }

    fn run(&self, policy: Policy) -> Result<SearchOutcome, StrategyError> {
        let mut engine = Engine::new(
            self.cube,
            EngineConfig {
                policy,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        engine.spawn(
            CloningAgent::with_order(self.order),
            Node::ROOT,
            Role::Worker,
        );
        let report = engine.run()?;
        Ok(audited_outcome(self.cube, &report))
    }

    fn fast(&self, audit: bool) -> SearchOutcome {
        if audit {
            streamed_outcome(self.cube, |sink| self.synthesize_into(sink))
        } else {
            synthesized_outcome(self.cube, self.synthesize_into(&mut NullSink), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictions::cloning_prediction;
    use hypersweep_topology::combinatorics as comb;

    #[test]
    fn cloning_uses_n_minus_1_moves_and_n_half_agents() {
        for d in 1..=8 {
            let cube = Hypercube::new(d);
            let s = CloningStrategy::new(cube);
            for policy in [
                Policy::Fifo,
                Policy::Lifo,
                Policy::Random(3),
                Policy::Synchronous,
            ] {
                let outcome = s.run(policy).expect("completes");
                assert!(
                    outcome.is_complete(),
                    "d={d} {policy:?}: {:?}",
                    outcome.verdict.violations
                );
                let p = cloning_prediction(d);
                assert_eq!(u128::from(outcome.metrics.total_moves()), p.moves, "d={d}");
                assert_eq!(u128::from(outcome.metrics.team_size), p.agents, "d={d}");
            }
        }
    }

    #[test]
    fn cloning_ideal_time_is_log_n() {
        for d in 1..=9 {
            let s = CloningStrategy::new(Hypercube::new(d));
            let outcome = s.run(Policy::Synchronous).unwrap();
            assert_eq!(outcome.metrics.ideal_time, Some(u64::from(d)), "d={d}");
        }
    }

    #[test]
    fn dispatch_order_ablation_time_is_exactly_triangular() {
        // Largest-first: g(d) = d. Smallest-first: g'(d) = d(d+1)/2 —
        // measured exactly by the lock-step engine, validating the
        // completion recursion that justifies §5's dispatch order.
        for d in 2..=9u32 {
            let cube = Hypercube::new(d);
            let fast = CloningStrategy::new(cube).run(Policy::Synchronous).unwrap();
            assert_eq!(fast.metrics.ideal_time, Some(u64::from(d)));
            let slow =
                CloningStrategy::with_dispatch_order(cube, DispatchOrder::SmallestSubtreeFirst)
                    .run(Policy::Synchronous)
                    .unwrap();
            assert!(slow.is_complete(), "the ablation stays correct");
            assert_eq!(
                slow.metrics.ideal_time,
                Some(u64::from(d) * (u64::from(d) + 1) / 2),
                "d={d}"
            );
            // Moves are unchanged: n − 1 either way.
            assert_eq!(slow.metrics.total_moves(), fast.metrics.total_moves());
        }
    }

    #[test]
    fn fast_path_agrees_with_engine() {
        for d in 1..=8 {
            let s = CloningStrategy::new(Hypercube::new(d));
            let fast = s.fast(true);
            let engine = s.run(Policy::Synchronous).unwrap();
            assert!(fast.is_complete(), "d={d}");
            assert_eq!(fast.metrics.total_moves(), engine.metrics.total_moves());
            assert_eq!(fast.metrics.team_size, engine.metrics.team_size);
            assert_eq!(fast.metrics.ideal_time, engine.metrics.ideal_time);
        }
    }

    #[test]
    fn fast_path_large_dimension_closed_forms() {
        let s = CloningStrategy::new(Hypercube::new(20));
        let o = s.fast(false);
        assert_eq!(u128::from(o.metrics.total_moves()), comb::pow2(20) - 1);
        assert_eq!(u128::from(o.metrics.team_size), comb::pow2(19));
    }

    #[test]
    fn every_leaf_ends_guarded_by_exactly_one_agent() {
        let cube = Hypercube::new(7);
        let mut engine = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::RoundRobin,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        engine.spawn(CloningAgent::new(), Node::ROOT, Role::Worker);
        let report = engine.run().unwrap();
        let tree = BroadcastTree::new(cube);
        for x in cube.nodes() {
            assert_eq!(
                report.occupancy[x.index()],
                u32::from(tree.is_leaf(x)),
                "node {x}"
            );
        }
    }
}
