//! The §5 synchronous variant: visibility replaced by the global clock.
//!
//! "Instead of waiting for all smaller neighbors to become clean or
//! guarded, the agents on a node wait for the appropriate time to move …
//! in the synchronous model, the agents on `x` can move when time
//! `t = m(x)`. … when they move to the bigger neighbors according to the
//! rule: one agent is sent to the bigger neighbor of type `T(0)`, and
//! `2^{i−1}` agents are sent to the bigger neighbor of type `T(i)`, no
//! re-contamination can occur."
//!
//! The agents need **no visibility** and **no waiting on counts**; the
//! round number alone certifies that the smaller neighbours are safe
//! (because the whole class `C_t` moves at time `t` — Theorem 7's wavefront
//! argument). The strategy is only defined under the synchronous schedule;
//! requesting an asynchronous adversary is an error.

use hypersweep_sim::{
    Action, AgentProgram, Ctx, Engine, EngineConfig, Event, EventSink, Metrics, NullSink, Policy,
    Role,
};
use hypersweep_topology::Hypercube;
use hypersweep_topology::Node;

use crate::outcome::{
    audited_outcome, streamed_outcome, synthesized_outcome, SearchOutcome, SearchStrategy,
    StrategyError,
};
use crate::visibility::{slot_child_type, VisBoard, VisibilityStrategy};

/// The synchronous agent: moves exactly at round `m(x) + 1` (the paper's
/// time `t = m(x)`, with our rounds numbered from 1).
pub struct SynchronousAgent;

impl AgentProgram for SynchronousAgent {
    type Board = VisBoard;

    fn step(&mut self, ctx: &mut Ctx<'_, VisBoard>) -> Action {
        let round = ctx
            .round()
            .expect("the synchronous variant requires the synchronous schedule");
        let x = ctx.node();
        let d = ctx.cube().dim();
        let m = x.msb_position();
        if m == d {
            return Action::Terminate; // leaf guard
        }
        if round != u64::from(m) + 1 {
            return Action::Wait;
        }
        // Our time has come; claim a dispatch slot. No visibility check —
        // synchrony certifies safety.
        let slot = ctx.board().next_slot;
        ctx.board_mut().next_slot = slot + 1;
        let child_type = slot_child_type(slot);
        Action::Move(d - child_type)
    }
}

/// The §5 synchronous strategy: `n/2` agents, no visibility, lock-step.
#[derive(Clone, Copy, Debug)]
pub struct SynchronousStrategy {
    cube: Hypercube,
}

impl SynchronousStrategy {
    /// Build the strategy for `cube` (`d ≥ 1`).
    pub fn new(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        SynchronousStrategy { cube }
    }

    /// Team size: `n/2`, as for the visibility strategy.
    pub fn team_size(&self) -> u64 {
        1 << (self.cube.dim() - 1)
    }

    /// The canonical trace is identical to the visibility strategy's: the
    /// wavefront `C_t` dispatches at time `t` either way.
    pub fn synthesize(&self, record_events: bool) -> (Metrics, Option<Vec<Event>>) {
        VisibilityStrategy::new(self.cube).synthesize(record_events)
    }

    /// Streaming form of [`SynchronousStrategy::synthesize`].
    pub fn synthesize_into(&self, sink: &mut dyn EventSink) -> Metrics {
        VisibilityStrategy::new(self.cube).synthesize_into(sink)
    }
}

impl SearchStrategy for SynchronousStrategy {
    fn name(&self) -> &'static str {
        "synchronous-variant"
    }

    fn cube(&self) -> Hypercube {
        self.cube
    }

    fn run(&self, policy: Policy) -> Result<SearchOutcome, StrategyError> {
        if !policy.is_synchronous() {
            return Err(StrategyError::UnsupportedPolicy {
                strategy: self.name(),
                policy,
            });
        }
        let mut engine = Engine::new(
            self.cube,
            EngineConfig {
                policy,
                visibility: false, // the whole point: no visibility needed
                ..EngineConfig::default()
            },
        );
        for _ in 0..self.team_size() {
            engine.spawn(SynchronousAgent, Node::ROOT, Role::Worker);
        }
        let report = engine.run()?;
        Ok(audited_outcome(self.cube, &report))
    }

    fn fast(&self, audit: bool) -> SearchOutcome {
        if audit {
            streamed_outcome(self.cube, |sink| self.synthesize_into(sink))
        } else {
            synthesized_outcome(self.cube, self.synthesize_into(&mut NullSink), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictions::synchronous_prediction;

    #[test]
    fn synchronous_variant_matches_visibility_complexities() {
        for d in 1..=8 {
            let s = SynchronousStrategy::new(Hypercube::new(d));
            let outcome = s.run(Policy::Synchronous).expect("completes");
            assert!(
                outcome.is_complete(),
                "d={d}: {:?}",
                outcome.verdict.violations
            );
            let p = synchronous_prediction(d);
            assert_eq!(u128::from(outcome.metrics.team_size), p.agents);
            assert_eq!(
                outcome.metrics.ideal_time.map(u128::from),
                Some(p.ideal_time)
            );
            assert_eq!(u128::from(outcome.metrics.total_moves()), p.moves);
        }
    }

    #[test]
    fn asynchronous_schedules_are_rejected() {
        let s = SynchronousStrategy::new(Hypercube::new(4));
        for policy in Policy::adversaries(2) {
            match s.run(policy) {
                Err(StrategyError::UnsupportedPolicy { .. }) => {}
                other => panic!("expected UnsupportedPolicy, got {other:?}"),
            }
        }
    }

    #[test]
    fn agrees_with_visibility_strategy_outcome() {
        for d in 2..=7 {
            let cube = Hypercube::new(d);
            let a = SynchronousStrategy::new(cube)
                .run(Policy::Synchronous)
                .unwrap();
            let b = crate::VisibilityStrategy::new(cube)
                .run(Policy::Synchronous)
                .unwrap();
            assert_eq!(a.metrics.total_moves(), b.metrics.total_moves());
            assert_eq!(a.metrics.team_size, b.metrics.team_size);
            assert_eq!(a.metrics.ideal_time, b.metrics.ideal_time);
        }
    }

    #[test]
    fn fast_path_is_the_visibility_trace() {
        let s = SynchronousStrategy::new(Hypercube::new(6));
        let o = s.fast(true);
        assert!(o.is_complete());
        assert_eq!(o.metrics.total_moves(), 112);
    }
}
