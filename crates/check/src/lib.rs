//! `hypersweep-check`: a deterministic schedule-exploration checker.
//!
//! The paper proves monotonicity, contiguity and capture against an
//! *arbitrarily fast* intruder and *asynchronous* agents, but an engine run
//! only ever executes one interleaving per `(strategy, dim, policy)` — the
//! exact gap where asynchronous-model bugs hide. This crate closes it
//! FoundationDB-style: a seeded deterministic scheduler drives each
//! strategy step-by-step through the engine's step-granular hooks
//! ([`hypersweep_sim::Engine::runnable_agents`] /
//! [`hypersweep_sim::Engine::step_agent`]), choosing the activation order
//! adversarially and checking invariant oracles after *every* step:
//!
//! * **monotone clean set** — no recontamination, ever;
//! * **contiguous clean region** — connected and containing the homebase;
//! * **guard coverage of the frontier** — every clean node bordering
//!   contamination is guarded;
//! * **eventual capture** — at termination the worst-case reachability
//!   intruder embodied by [`hypersweep_intruder::ContaminationField`] has
//!   nowhere left to hide.
//!
//! A schedule is reified as a *decision trace*: at step `t` the adversary
//! picks an index into the ascending list of runnable agents. Failing
//! schedules are [shrunk](shrink()) to a minimal trace (greedy
//! canonicalization towards decision `0` plus tail truncation) and
//! serialized as a [`ReplayFile`] that reproduces the violation
//! byte-for-byte, independent of the adversary that found it.
//!
//! Like `hypersweep-telemetry`, the crate is std-only: the only
//! dependencies beyond the workspace's own crates are the vendored
//! `serde`/`serde_json` stand-ins used for replay files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod explore;
mod mutant;
mod oracle;
mod replay;
mod shrink;

pub use adversary::{Adversary, AdversaryKind};
pub use explore::{
    explore_schedule, explore_schedule_in, run_with_adversary, run_with_adversary_in,
    run_with_trace, run_with_trace_in, CheckArena, CheckConfig, CheckStrategy, ScheduleRun,
};
pub use mutant::EagerVisibilityAgent;
pub use oracle::{StepOracle, ViolationKind, ViolationReport};
pub use replay::{
    shrunk_replay, shrunk_replay_with_budget, ReplayError, ReplayFile, REPLAY_VERSION,
};
pub use shrink::{shrink, ShrinkStats};

/// Explore schedules `0..schedules` serially and return the first
/// counterexample as a *shrunk* replay file, plus aggregate statistics.
/// The parallel campaign lives in `hypersweep-analysis`, which fans the
/// schedule range out on its worker pool and calls [`explore_schedule`] /
/// [`shrink`] per range.
pub fn find_counterexample(
    cfg: &CheckConfig,
    seed: u64,
    schedules: u64,
) -> (Option<ReplayFile>, u64, u64) {
    let mut steps = 0;
    let mut events = 0;
    let mut arena = CheckArena::new();
    for schedule in 0..schedules {
        let run = explore_schedule_in(cfg, seed, schedule, &mut arena);
        steps += run.steps;
        events += run.events;
        if run.violation.is_some() {
            return (
                Some(replay::shrunk_replay(cfg, seed, schedule, run)),
                steps,
                events,
            );
        }
    }
    (None, steps, events)
}
