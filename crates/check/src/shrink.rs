//! Counterexample minimization.
//!
//! The vendored proptest stand-in has no shrinking, so the checker rolls
//! its own, exploiting the decision-trace encoding: decision `0` (the
//! lowest-id runnable agent) is the canonical choice and replays pad
//! exhausted traces with it, so a minimal counterexample is one with as
//! few non-canonical decisions as possible, then as short as possible.
//!
//! The pass is a greedy fixpoint: for each non-zero decision, try zeroing
//! it and re-executing; keep the candidate if *any* violation still
//! occurs (re-runs are deterministic, so acceptance is stable). Each
//! acceptance strictly decreases the non-zero count — the decisions before
//! the changed index are untouched, so the run's prefix is identical and
//! recorded decisions can only lose non-zeros — hence termination without
//! a fuel parameter, though a budget caps pathological cases anyway.

use crate::explore::{run_with_trace_in, CheckArena, CheckConfig, ScheduleRun};

/// What the shrinker did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate re-executions attempted.
    pub attempts: u64,
    /// Candidates accepted (each one removed at least one non-canonical
    /// decision).
    pub accepted: u64,
}

/// Shrink a violating run to a minimal decision trace. `run` must carry a
/// violation; the returned run is the shrunk execution (still violating),
/// with trailing canonical decisions trimmed. `budget` caps candidate
/// re-executions.
pub fn shrink(cfg: &CheckConfig, run: ScheduleRun, budget: u64) -> (ScheduleRun, ShrinkStats) {
    assert!(run.violation.is_some(), "only violating runs can be shrunk");
    let mut best = run;
    let mut stats = ShrinkStats::default();
    // Candidate re-executions recycle one arena: the shrinker re-runs the
    // trace up to `budget` times, so per-run `O(n)` allocations would
    // dominate small-dimension shrinks.
    let mut arena = CheckArena::new();
    'outer: loop {
        for i in 0..best.decisions.len() {
            if best.decisions[i] == 0 {
                continue;
            }
            if stats.attempts >= budget {
                break 'outer;
            }
            let mut candidate = best.decisions.clone();
            candidate[i] = 0;
            stats.attempts += 1;
            let result = run_with_trace_in(cfg, &candidate, &mut arena);
            if result.violation.is_some() {
                best = result;
                stats.accepted += 1;
                // The trace may have shortened; restart the scan.
                continue 'outer;
            }
        }
        // A full scan with no acceptance: fixpoint reached.
        break;
    }
    // Trimming trailing canonical decisions is free: replays pad exhausted
    // traces with 0, so the execution is unchanged. Re-execute once to
    // normalize the run's recorded steps/events, then trim again (the
    // re-execution records the padding it was fed).
    while best.decisions.last() == Some(&0) {
        best.decisions.pop();
    }
    let mut normalized = run_with_trace_in(cfg, &best.decisions, &mut arena);
    while normalized.decisions.last() == Some(&0) {
        normalized.decisions.pop();
    }
    (normalized, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_schedule, CheckStrategy};

    fn find_violating_run(cfg: &CheckConfig) -> ScheduleRun {
        for schedule in 0..400 {
            let run = explore_schedule(cfg, 11, schedule);
            if run.violation.is_some() {
                return run;
            }
        }
        panic!("mutant not caught in 400 schedules");
    }

    #[test]
    fn shrunk_traces_still_violate_and_lose_nonzeros() {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, 4);
        let run = find_violating_run(&cfg);
        let nonzeros_before = run.decisions.iter().filter(|&&d| d != 0).count();
        let (shrunk, stats) = shrink(&cfg, run, 2_000);
        assert!(shrunk.violation.is_some());
        let nonzeros_after = shrunk.decisions.iter().filter(|&&d| d != 0).count();
        assert!(nonzeros_after <= nonzeros_before);
        assert!(stats.attempts >= stats.accepted);
        assert_ne!(shrunk.decisions.last(), Some(&0), "tail is trimmed");
        // The shrunk trace is self-reproducing: padding restores the
        // trimmed zeros, so the re-execution hits the same violation at
        // the same step and event.
        let rerun = crate::explore::run_with_trace(&cfg, &shrunk.decisions);
        assert_eq!(rerun.violation, shrunk.violation);
        assert_eq!(rerun.steps, shrunk.steps);
        assert_eq!(rerun.events, shrunk.events);
    }
}
