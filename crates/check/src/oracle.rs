//! Per-step invariant oracles over the ground-truth contamination state.

use hypersweep_intruder::{ContaminationField, FieldScratch};
use hypersweep_sim::Event;
use hypersweep_topology::{Hypercube, Node, Topology};
use serde::{Deserialize, Serialize};

/// What went wrong, exactly. Serialized into replay files, so variants
/// carry plain integers rather than domain types.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A clean node was recontaminated — monotonicity broken.
    Recontamination {
        /// The recontaminated node (first of the flood).
        node: u32,
    },
    /// The decontaminated region split or lost the homebase.
    ContiguityBroken,
    /// A clean, unguarded node borders contamination — the frontier guard
    /// coverage failed.
    UnguardedFrontier {
        /// The exposed node.
        node: u32,
    },
    /// All agents terminated but the reachability intruder still has
    /// somewhere to hide.
    CaptureEscaped {
        /// Contaminated nodes remaining at termination.
        contaminated: u64,
    },
    /// No agent was runnable while some had not terminated.
    Deadlock {
        /// Agents still alive.
        waiting: u64,
    },
    /// The engine rejected an action (bad port, activation cap, …).
    EngineError {
        /// The engine's message.
        message: String,
    },
    /// The schedule exceeded the step budget without completing.
    StepLimit,
}

/// A violation pinned to the decision step and event index where the
/// oracle first saw it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationReport {
    /// Decision step (index into the decision trace) at which the
    /// violating state was produced.
    pub step: u64,
    /// Events applied to the contamination field when the oracle fired.
    pub event: u64,
    /// What the oracle saw.
    pub kind: ViolationKind,
}

impl std::fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {} event {}: ", self.step, self.event)?;
        match &self.kind {
            ViolationKind::Recontamination { node } => {
                write!(f, "recontamination at node {node}")
            }
            ViolationKind::ContiguityBroken => write!(f, "clean region no longer contiguous"),
            ViolationKind::UnguardedFrontier { node } => {
                write!(f, "unguarded frontier node {node}")
            }
            ViolationKind::CaptureEscaped { contaminated } => {
                write!(
                    f,
                    "intruder escaped: {contaminated} nodes still contaminated"
                )
            }
            ViolationKind::Deadlock { waiting } => {
                write!(f, "deadlock with {waiting} agents alive")
            }
            ViolationKind::EngineError { message } => write!(f, "engine error: {message}"),
            ViolationKind::StepLimit => write!(f, "step budget exhausted"),
        }
    }
}

/// The invariant oracles, folded over the event stream as the scheduler
/// produces it. Wraps the adversarial-semantics [`ContaminationField`]
/// (contamination spreads the instant a guard lifts), so the checked
/// invariants are exactly the paper's.
///
/// Generic over the topology so scenario checkers (partial grids,
/// dynamic graphs) run the same oracles; the default keeps every
/// hypercube call site spelling `StepOracle<'a>`.
pub struct StepOracle<'a, T: Topology + ?Sized = Hypercube> {
    field: ContaminationField<'a, T>,
    /// Check the (word-parallel but linear-ish) contiguity and frontier
    /// oracles every `stride` events; the monotonicity oracle is O(1) and
    /// always on.
    stride: u64,
    recontaminations_seen: usize,
}

impl<'a, T: Topology + ?Sized> StepOracle<'a, T> {
    /// A fresh oracle for a search of `topo` starting at `homebase`.
    /// `stride` ≥ 1 samples the region oracles (1 = after every event —
    /// the default everywhere, since the incremental connectivity kernel
    /// makes them `O(1)` per query).
    pub fn new(topo: &'a T, homebase: Node, stride: u64) -> Self {
        Self::new_in(topo, homebase, stride, FieldScratch::default())
    }

    /// Like [`StepOracle::new`], but reusing the allocations of a previous
    /// oracle's field (see [`StepOracle::into_scratch`]). Campaign drivers
    /// exploring thousands of schedules recycle one scratch per worker
    /// instead of reallocating `O(n)` buffers per schedule.
    pub fn new_in(topo: &'a T, homebase: Node, stride: u64, scratch: FieldScratch) -> Self {
        StepOracle {
            field: ContaminationField::new_in(topo, homebase, scratch),
            stride: stride.max(1),
            recontaminations_seen: 0,
        }
    }

    /// Wrap an already-built field — the dynamic-graph scenario restores
    /// a mid-search snapshot onto a mutated topology (see
    /// [`ContaminationField::with_state`]) and then re-verifies the
    /// region invariants across the mutation via [`StepOracle::verify_region`].
    pub fn from_field(field: ContaminationField<'a, T>, stride: u64) -> Self {
        let recontaminations_seen = field.recontaminations().len();
        StepOracle {
            field,
            stride: stride.max(1),
            recontaminations_seen,
        }
    }

    /// Dismantle the oracle into its field's reusable allocations.
    pub fn into_scratch(self) -> FieldScratch {
        self.field.into_scratch()
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.field.events_applied()
    }

    /// Apply one engine event and check the per-step invariants. `step` is
    /// the current decision step, recorded into any violation.
    pub fn observe(&mut self, event: &Event, step: u64) -> Result<(), ViolationReport> {
        self.field.apply(event);
        let at_event = self.field.events_applied();
        let recon = self.field.recontaminations();
        if recon.len() > self.recontaminations_seen {
            let node = recon[self.recontaminations_seen].1;
            self.recontaminations_seen = recon.len();
            return Err(ViolationReport {
                step,
                event: at_event,
                kind: ViolationKind::Recontamination { node: node.0 },
            });
        }
        if at_event % self.stride == 0 {
            self.check_region(step)?;
        }
        Ok(())
    }

    /// Run the region oracles right now, regardless of stride. The
    /// dynamic-graph scenario calls this immediately after a topology
    /// mutation: the clean region must stay contiguous and guarded under
    /// the new adjacency even before any agent moves.
    pub fn verify_region(&mut self, step: u64) -> Result<(), ViolationReport> {
        self.check_region(step)
    }

    /// The sampled region oracles: contiguity and frontier guard coverage.
    fn check_region(&mut self, step: u64) -> Result<(), ViolationReport> {
        let at_event = self.field.events_applied();
        if !self.field.is_contiguous() {
            return Err(ViolationReport {
                step,
                event: at_event,
                kind: ViolationKind::ContiguityBroken,
            });
        }
        if let Some(node) = self.field.unguarded_frontier() {
            return Err(ViolationReport {
                step,
                event: at_event,
                kind: ViolationKind::UnguardedFrontier { node: node.0 },
            });
        }
        Ok(())
    }

    /// Final oracles once every agent has terminated: the region checks
    /// regardless of stride, then capture — the worst-case reachability
    /// intruder can be anywhere still contaminated, so capture is exactly
    /// "nothing is".
    pub fn finish(&mut self, step: u64) -> Result<(), ViolationReport> {
        self.check_region(step)?;
        if !self.field.all_clean() {
            return Err(ViolationReport {
                step,
                event: self.field.events_applied(),
                kind: ViolationKind::CaptureEscaped {
                    contaminated: self.field.contaminated_count() as u64,
                },
            });
        }
        Ok(())
    }

    /// Read access to the wrapped field (tests inspect it).
    pub fn field(&self) -> &ContaminationField<'a, T> {
        &self.field
    }
}
