//! Deliberately broken strategies — negative controls for the oracles.
//!
//! A checker whose oracles never fire proves nothing; these mutants carry
//! a known asynchronous-model bug that a sufficiently adversarial schedule
//! must expose, giving the campaign a sensitivity baseline.

use hypersweep_core::visibility::VisBoard;
use hypersweep_sim::{Action, AgentProgram, Ctx};
use hypersweep_topology::combinatorics as comb;

/// A visibility agent that releases its guard one step early.
///
/// The correct rule (§4.2) dispatches from `x` only once **every** smaller
/// neighbour is clean or guarded. This mutant treats the port-1 neighbour
/// as already safe: it departs one step before that neighbour's guard
/// actually arrives. The port-1 neighbour is often a node of the *same*
/// wavefront class whose own wave an adversarial schedule can delay
/// arbitrarily, so the early release lets contamination flood back into
/// the vacated node. Under the canonical synchronous schedule the whole
/// class dispatches at once and the bug is invisible — exactly the class
/// of error the schedule explorer exists to catch.
pub struct EagerVisibilityAgent;

impl AgentProgram for EagerVisibilityAgent {
    type Board = VisBoard;

    fn step(&mut self, ctx: &mut Ctx<'_, VisBoard>) -> Action {
        let x = ctx.node();
        let d = ctx.cube().dim();
        let m = x.msb_position();
        let k = d - m;
        if k == 0 {
            return Action::Terminate;
        }
        if !ctx.board().dispatch_started {
            let need = comb::visibility_need(k);
            if u128::from(ctx.active_here()) < need {
                return Action::Wait;
            }
            // BUG (deliberate): ports 2..=m checked, port 1 assumed safe.
            if !(2..=m).all(|p| ctx.neighbor_state(p).is_safe()) {
                return Action::Wait;
            }
            ctx.board_mut().dispatch_started = true;
        }
        let slot = ctx.board().next_slot;
        ctx.board_mut().next_slot = slot + 1;
        let child_type = hypersweep_core::visibility::slot_child_type(slot);
        Action::Move(d - child_type)
    }

    fn local_bits(&self) -> u32 {
        0
    }
}
