//! Adversarial activation-order policies.
//!
//! An adversary is a deterministic function from (seed, decision history)
//! to an index into the current runnable set. Five families are explored,
//! round-robin across the schedule index, so a campaign of `N` schedules
//! exercises each family `N/5` times with distinct seeds:
//!
//! * **seeded-random** — uniform choice from a splitmix64 stream;
//! * **round-robin-skew** — a rotating cursor that periodically sticks,
//!   so one agent gets activated twice in a row while another starves;
//! * **laggard-agent** — one seed-chosen agent is starved: it only runs
//!   when it is the sole runnable agent;
//! * **delayed-wakeup** — a freshly woken agent has its first activation
//!   withheld for a seed-chosen window, modelling a late wake-up delivery;
//! * **stalled-synchronizer** — agent 0 (the CLEAN synchronizer, or the
//!   seed agent of the cloning variant) is starved like a laggard.

use hypersweep_sim::AgentId;

/// The adversary families (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Uniform seeded-random choice.
    SeededRandom,
    /// Rotating cursor with periodic sticking.
    RoundRobinSkew,
    /// Starve one seed-chosen agent.
    Laggard,
    /// Withhold freshly runnable agents for a window of decisions.
    DelayedWakeup,
    /// Starve agent 0 — the coordinator/seed agent.
    StalledSynchronizer,
}

impl AdversaryKind {
    /// All families, in campaign rotation order.
    pub const ALL: [AdversaryKind; 5] = [
        AdversaryKind::SeededRandom,
        AdversaryKind::RoundRobinSkew,
        AdversaryKind::Laggard,
        AdversaryKind::DelayedWakeup,
        AdversaryKind::StalledSynchronizer,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::SeededRandom => "seeded-random",
            AdversaryKind::RoundRobinSkew => "round-robin-skew",
            AdversaryKind::Laggard => "laggard-agent",
            AdversaryKind::DelayedWakeup => "delayed-wakeup",
            AdversaryKind::StalledSynchronizer => "stalled-synchronizer",
        }
    }
}

/// splitmix64 — tiny, seedable, dependency-free. Used only to *generate*
/// schedules; replays never consult an RNG (the decision trace is the
/// schedule).
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

/// A stateful adversary: one per explored schedule.
#[derive(Clone, Debug)]
pub struct Adversary {
    kind: AdversaryKind,
    rng: SplitMix64,
    /// Round-robin cursor (RoundRobinSkew).
    cursor: usize,
    /// The starved agent (Laggard / StalledSynchronizer).
    laggard: AgentId,
    /// Delayed-wakeup state: the withheld agent and how many more
    /// decisions to withhold it for.
    delayed: Option<(AgentId, u64)>,
}

impl Adversary {
    /// Build an adversary of `kind` from a raw seed.
    pub fn new(kind: AdversaryKind, seed: u64) -> Self {
        let mut rng = SplitMix64(seed ^ 0xA076_1D64_78BD_642F);
        let laggard = match kind {
            AdversaryKind::StalledSynchronizer => 0,
            // Starve a small id: early agents carry the coordination load,
            // so starving one of them stresses the most wait conditions.
            _ => (rng.below(8)) as AgentId,
        };
        Adversary {
            kind,
            rng,
            cursor: 0,
            laggard,
            delayed: None,
        }
    }

    /// The adversary used for schedule number `schedule` of a campaign
    /// seeded with `seed`: families rotate with the schedule index and the
    /// per-schedule RNG stream is derived from both.
    pub fn for_schedule(seed: u64, schedule: u64) -> Self {
        let kind = AdversaryKind::ALL[(schedule % AdversaryKind::ALL.len() as u64) as usize];
        Adversary::new(kind, seed.wrapping_mul(0x9E37_79B9).wrapping_add(schedule))
    }

    /// The family this adversary belongs to.
    pub fn kind(&self) -> AdversaryKind {
        self.kind
    }

    /// Pick an index into `runnable` (ascending agent ids, non-empty).
    pub fn choose(&mut self, runnable: &[AgentId], step: u64) -> u32 {
        let len = runnable.len();
        debug_assert!(len > 0);
        if len == 1 {
            return 0;
        }
        match self.kind {
            AdversaryKind::SeededRandom => self.rng.below(len as u64) as u32,
            AdversaryKind::RoundRobinSkew => {
                let idx = self.cursor % len;
                // Stick every third decision: the same index is chosen
                // again next time while the rest of the queue ages.
                if step % 3 != 0 {
                    self.cursor += 1;
                }
                idx as u32
            }
            AdversaryKind::Laggard | AdversaryKind::StalledSynchronizer => {
                let others: Vec<u32> = runnable
                    .iter()
                    .enumerate()
                    .filter(|(_, &id)| id != self.laggard)
                    .map(|(i, _)| i as u32)
                    .collect();
                if others.is_empty() {
                    0
                } else {
                    others[self.rng.below(others.len() as u64) as usize]
                }
            }
            AdversaryKind::DelayedWakeup => {
                // Withhold one agent for a window; everything else is
                // seeded-random. When the window closes, pick a new victim.
                match self.delayed {
                    Some((id, left)) if left > 0 => {
                        self.delayed = Some((id, left - 1));
                        let others: Vec<u32> = runnable
                            .iter()
                            .enumerate()
                            .filter(|(_, &r)| r != id)
                            .map(|(i, _)| i as u32)
                            .collect();
                        if others.is_empty() {
                            0
                        } else {
                            others[self.rng.below(others.len() as u64) as usize]
                        }
                    }
                    _ => {
                        let victim = runnable[self.rng.below(len as u64) as usize];
                        let window = 4 + self.rng.below(28);
                        self.delayed = Some((victim, window));
                        self.rng.below(len as u64) as u32
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        for kind in AdversaryKind::ALL {
            let runnable: Vec<AgentId> = (0..6).collect();
            let mut a = Adversary::new(kind, 42);
            let mut b = Adversary::new(kind, 42);
            for step in 0..100 {
                assert_eq!(a.choose(&runnable, step), b.choose(&runnable, step));
            }
        }
    }

    #[test]
    fn choices_are_in_range() {
        for kind in AdversaryKind::ALL {
            let mut a = Adversary::new(kind, 7);
            for step in 0..200 {
                let len = 1 + (step as usize % 5);
                let runnable: Vec<AgentId> = (0..len as AgentId).collect();
                let idx = a.choose(&runnable, step);
                assert!((idx as usize) < len, "{kind:?} step {step}");
            }
        }
    }

    #[test]
    fn stalled_synchronizer_never_picks_agent_zero_unless_alone() {
        let mut a = Adversary::new(AdversaryKind::StalledSynchronizer, 3);
        let runnable: Vec<AgentId> = vec![0, 2, 5];
        for step in 0..100 {
            let idx = a.choose(&runnable, step);
            assert_ne!(runnable[idx as usize], 0);
        }
        assert_eq!(a.choose(&[0], 0), 0);
    }
}
