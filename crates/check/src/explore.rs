//! The schedule driver: builds an engine per strategy, lets a decision
//! source pick every activation, and folds the oracles over the resulting
//! event stream under a virtual clock (the decision step counter).

use hypersweep_core::clean::CleanAgent;
use hypersweep_core::cloning::CloningAgent;
use hypersweep_core::synchronous::SynchronousAgent;
use hypersweep_core::visibility::VisibilityAgent;
use hypersweep_core::CleanStrategy;
use hypersweep_intruder::FieldScratch;
use hypersweep_sim::{AgentProgram, Engine, EngineConfig, Policy, Role};
use hypersweep_topology::{Hypercube, Node};

use crate::adversary::Adversary;
use crate::mutant::EagerVisibilityAgent;
use crate::oracle::{StepOracle, ViolationKind, ViolationReport};

/// Which strategy the checker drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckStrategy {
    /// §3's CLEAN (synchronizer + workers, whiteboards only).
    Clean,
    /// §4's CLEAN WITH VISIBILITY (`n/2` local agents).
    Visibility,
    /// §5's cloning variant (one seed agent).
    Cloning,
    /// §5's synchronous variant (lock-step rounds).
    Synchronous,
    /// Negative control: the visibility mutant that releases its guard one
    /// step early (see [`EagerVisibilityAgent`]).
    MutantEagerGuard,
}

impl CheckStrategy {
    /// The four paper strategies (no mutants).
    pub const PAPER: [CheckStrategy; 4] = [
        CheckStrategy::Clean,
        CheckStrategy::Visibility,
        CheckStrategy::Cloning,
        CheckStrategy::Synchronous,
    ];

    /// Stable name, as accepted by [`CheckStrategy::parse`].
    pub fn name(self) -> &'static str {
        match self {
            CheckStrategy::Clean => "clean",
            CheckStrategy::Visibility => "visibility",
            CheckStrategy::Cloning => "cloning",
            CheckStrategy::Synchronous => "synchronous",
            CheckStrategy::MutantEagerGuard => "mutant-eager-guard",
        }
    }

    /// Parse a strategy name.
    pub fn parse(name: &str) -> Option<CheckStrategy> {
        match name {
            "clean" => Some(CheckStrategy::Clean),
            "visibility" => Some(CheckStrategy::Visibility),
            "cloning" => Some(CheckStrategy::Cloning),
            "synchronous" => Some(CheckStrategy::Synchronous),
            "mutant-eager-guard" => Some(CheckStrategy::MutantEagerGuard),
            _ => None,
        }
    }

    /// Whether schedules are explored per lock-step round rather than per
    /// activation (the synchronous variant has a single canonical
    /// schedule; the oracles still check every round).
    pub fn is_synchronous(self) -> bool {
        matches!(self, CheckStrategy::Synchronous)
    }
}

/// One checking problem: a strategy on `H_dim` plus exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// The strategy under check.
    pub strategy: CheckStrategy,
    /// Hypercube dimension (`1..=16`; team sizes are exponential in it).
    pub dim: u32,
    /// Step budget per schedule; `0` derives a generous default from the
    /// dimension.
    pub max_steps: u64,
    /// Run the contiguity/frontier oracles every `stride` events; `0`
    /// derives the default, which is 1 at every dimension — the oracles
    /// are served from incrementally maintained state, so per-event
    /// checking costs `O(1)` per query. Strides > 1 remain available for
    /// experiments but no longer buy meaningful throughput.
    pub stride: u64,
}

impl CheckConfig {
    /// A config with derived bounds.
    pub fn new(strategy: CheckStrategy, dim: u32) -> Self {
        CheckConfig {
            strategy,
            dim,
            max_steps: 0,
            stride: 0,
        }
    }

    /// Validate the dimension range.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=16).contains(&self.dim) {
            return Err(format!(
                "check supports dimensions 1..=16, got {} (team sizes grow as 2^d)",
                self.dim
            ));
        }
        Ok(())
    }

    fn effective_max_steps(&self) -> u64 {
        if self.max_steps > 0 {
            return self.max_steps;
        }
        let n = 1u64 << self.dim;
        // Every step either emits an event (bounded by O(n log n) moves)
        // or parks an agent; 200·n·d dominates both with a wide margin.
        200 * n * u64::from(self.dim) + 10_000
    }

    fn effective_stride(&self) -> u64 {
        if self.stride > 0 {
            return self.stride;
        }
        1
    }
}

/// The outcome of one explored schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleRun {
    /// The decision trace actually executed (index into the runnable set
    /// per step, already reduced modulo its size). Empty for the
    /// synchronous variant, whose schedule is canonical.
    pub decisions: Vec<u32>,
    /// Decision steps executed (rounds, for the synchronous variant).
    pub steps: u64,
    /// Events applied to the oracle.
    pub events: u64,
    /// The first invariant violation, if any.
    pub violation: Option<ViolationReport>,
}

/// Where the next decision comes from.
enum Source<'s> {
    /// Generative: an adversary invents the schedule.
    Adversary(&'s mut Adversary),
    /// Replay: a recorded trace, padded with `0` (lowest runnable id) once
    /// exhausted.
    Trace(&'s [u32]),
}

/// Reusable per-schedule allocations for the drivers: the oracle field's
/// buffers (bitsets, counters, the connectivity forest) survive from one
/// explored schedule to the next instead of being reallocated `O(n)`-sized
/// per run. One arena per campaign worker; schedules on the same worker
/// recycle it.
#[derive(Default)]
pub struct CheckArena {
    field: Option<FieldScratch>,
}

impl CheckArena {
    /// An empty arena (first use allocates, later uses recycle).
    pub fn new() -> Self {
        CheckArena::default()
    }

    fn take_field(&mut self) -> FieldScratch {
        self.field.take().unwrap_or_default()
    }

    fn put_field(&mut self, scratch: FieldScratch) {
        self.field = Some(scratch);
    }
}

/// Explore one schedule with `adversary` inventing the decisions.
pub fn run_with_adversary(cfg: &CheckConfig, adversary: &mut Adversary) -> ScheduleRun {
    run_with_adversary_in(cfg, adversary, &mut CheckArena::new())
}

/// [`run_with_adversary`] with arena reuse.
pub fn run_with_adversary_in(
    cfg: &CheckConfig,
    adversary: &mut Adversary,
    arena: &mut CheckArena,
) -> ScheduleRun {
    run_impl(cfg, Source::Adversary(adversary), arena)
}

/// Deterministically re-execute a recorded decision trace. Decisions are
/// reduced modulo the runnable-set size and the trace is padded with `0`
/// once exhausted, so shrunk (shortened) traces stay executable.
pub fn run_with_trace(cfg: &CheckConfig, trace: &[u32]) -> ScheduleRun {
    run_with_trace_in(cfg, trace, &mut CheckArena::new())
}

/// [`run_with_trace`] with arena reuse (the shrinker re-executes a trace
/// hundreds of times against one arena).
pub fn run_with_trace_in(cfg: &CheckConfig, trace: &[u32], arena: &mut CheckArena) -> ScheduleRun {
    run_impl(cfg, Source::Trace(trace), arena)
}

/// Explore schedule number `schedule` of the campaign seeded with `seed`
/// (see [`Adversary::for_schedule`] for the family rotation).
pub fn explore_schedule(cfg: &CheckConfig, seed: u64, schedule: u64) -> ScheduleRun {
    explore_schedule_in(cfg, seed, schedule, &mut CheckArena::new())
}

/// [`explore_schedule`] with arena reuse across schedules.
pub fn explore_schedule_in(
    cfg: &CheckConfig,
    seed: u64,
    schedule: u64,
    arena: &mut CheckArena,
) -> ScheduleRun {
    let mut adversary = Adversary::for_schedule(seed, schedule);
    run_with_adversary_in(cfg, &mut adversary, arena)
}

fn run_impl(cfg: &CheckConfig, source: Source<'_>, arena: &mut CheckArena) -> ScheduleRun {
    let cube = Hypercube::new(cfg.dim);
    let engine_cfg = |visibility: bool, policy: Policy| EngineConfig {
        policy,
        visibility,
        record_events: true,
        ..EngineConfig::default()
    };
    match cfg.strategy {
        CheckStrategy::Clean => {
            let mut engine = Engine::new(cube, engine_cfg(false, Policy::Fifo));
            let team = CleanStrategy::new(cube).team_size();
            engine.spawn(CleanAgent::synchronizer(), Node::ROOT, Role::Coordinator);
            for _ in 1..team {
                engine.spawn(CleanAgent::worker(), Node::ROOT, Role::Worker);
            }
            drive_async(engine, cube, cfg, source, arena)
        }
        CheckStrategy::Visibility => {
            let mut engine = Engine::new(cube, engine_cfg(true, Policy::Fifo));
            for _ in 0..1u64 << (cfg.dim - 1) {
                engine.spawn(VisibilityAgent, Node::ROOT, Role::Worker);
            }
            drive_async(engine, cube, cfg, source, arena)
        }
        CheckStrategy::Cloning => {
            let mut engine = Engine::new(cube, engine_cfg(true, Policy::Fifo));
            engine.spawn(CloningAgent::new(), Node::ROOT, Role::Worker);
            drive_async(engine, cube, cfg, source, arena)
        }
        CheckStrategy::MutantEagerGuard => {
            let mut engine = Engine::new(cube, engine_cfg(true, Policy::Fifo));
            for _ in 0..1u64 << (cfg.dim - 1) {
                engine.spawn(EagerVisibilityAgent, Node::ROOT, Role::Worker);
            }
            drive_async(engine, cube, cfg, source, arena)
        }
        CheckStrategy::Synchronous => {
            let mut engine = Engine::new(cube, engine_cfg(false, Policy::Synchronous));
            for _ in 0..1u64 << (cfg.dim - 1) {
                engine.spawn(SynchronousAgent, Node::ROOT, Role::Worker);
            }
            drive_sync(engine, cube, cfg, arena)
        }
    }
}

/// Asynchronous driver: one decision per activation.
fn drive_async<P: AgentProgram>(
    mut engine: Engine<P>,
    cube: Hypercube,
    cfg: &CheckConfig,
    mut source: Source<'_>,
    arena: &mut CheckArena,
) -> ScheduleRun {
    let mut oracle = StepOracle::new_in(
        &cube,
        Node::ROOT,
        cfg.effective_stride(),
        arena.take_field(),
    );
    let max_steps = cfg.effective_max_steps();
    let mut decisions: Vec<u32> = Vec::new();
    let mut seen = 0usize;
    let mut step: u64 = 0;
    let violation = loop {
        if engine.all_terminated() {
            break oracle.finish(step).err();
        }
        let runnable = engine.runnable_agents();
        if runnable.is_empty() {
            break Some(ViolationReport {
                step,
                event: oracle.events_applied(),
                kind: ViolationKind::Deadlock {
                    waiting: engine.live_agents() as u64,
                },
            });
        }
        if step >= max_steps {
            break Some(ViolationReport {
                step,
                event: oracle.events_applied(),
                kind: ViolationKind::StepLimit,
            });
        }
        let raw = match &mut source {
            Source::Adversary(a) => a.choose(&runnable, step),
            Source::Trace(t) => t.get(step as usize).copied().unwrap_or(0),
        };
        let idx = (raw as usize) % runnable.len();
        decisions.push(idx as u32);
        if let Err(e) = engine.step_agent(runnable[idx]) {
            break Some(ViolationReport {
                step,
                event: oracle.events_applied(),
                kind: ViolationKind::EngineError {
                    message: e.to_string(),
                },
            });
        }
        match feed_oracle(&engine, &mut oracle, &mut seen, step) {
            Some(v) => break Some(v),
            None => step += 1,
        }
    };
    let events = oracle.events_applied();
    arena.put_field(oracle.into_scratch());
    ScheduleRun {
        decisions,
        steps: step,
        events,
        violation,
    }
}

/// Synchronous driver: one decision step per lock-step round. There is
/// nothing for an adversary to choose (the round schedule is canonical),
/// but every round still passes through the oracles.
fn drive_sync<P: AgentProgram>(
    mut engine: Engine<P>,
    cube: Hypercube,
    cfg: &CheckConfig,
    arena: &mut CheckArena,
) -> ScheduleRun {
    let mut oracle = StepOracle::new_in(
        &cube,
        Node::ROOT,
        cfg.effective_stride(),
        arena.take_field(),
    );
    let max_steps = cfg.effective_max_steps();
    let mut seen = 0usize;
    let mut step: u64 = 0;
    let violation = loop {
        if step >= max_steps {
            break Some(ViolationReport {
                step,
                event: oracle.events_applied(),
                kind: ViolationKind::StepLimit,
            });
        }
        let outcome = match engine.step_round() {
            Ok(o) => o,
            Err(e) => {
                break Some(ViolationReport {
                    step,
                    event: oracle.events_applied(),
                    kind: ViolationKind::EngineError {
                        message: e.to_string(),
                    },
                });
            }
        };
        if let Some(v) = feed_oracle(&engine, &mut oracle, &mut seen, step) {
            break Some(v);
        }
        if outcome.done {
            break oracle.finish(step).err();
        }
        if !outcome.acted && !outcome.wrote {
            break Some(ViolationReport {
                step,
                event: oracle.events_applied(),
                kind: ViolationKind::Deadlock {
                    waiting: engine.live_agents() as u64,
                },
            });
        }
        step += 1;
    };
    let events = oracle.events_applied();
    arena.put_field(oracle.into_scratch());
    ScheduleRun {
        decisions: Vec::new(),
        steps: step,
        events,
        violation,
    }
}

/// Apply all events newer than `*seen` to the oracle; first violation wins.
fn feed_oracle<P: AgentProgram>(
    engine: &Engine<P>,
    oracle: &mut StepOracle<'_>,
    seen: &mut usize,
    step: u64,
) -> Option<ViolationReport> {
    let events = engine.events();
    while *seen < events.len() {
        let ev = events[*seen];
        *seen += 1;
        if let Err(v) = oracle.observe(&ev, step) {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversaryKind;

    #[test]
    fn all_paper_strategies_pass_a_small_campaign() {
        for strategy in CheckStrategy::PAPER {
            let cfg = CheckConfig::new(strategy, 4);
            for schedule in 0..25 {
                let run = explore_schedule(&cfg, 0xC0FFEE, schedule);
                assert_eq!(
                    run.violation,
                    None,
                    "{} schedule {schedule}: {:?}",
                    strategy.name(),
                    run.violation
                );
                assert!(run.events > 0);
            }
        }
    }

    #[test]
    fn schedules_are_deterministic() {
        let cfg = CheckConfig::new(CheckStrategy::Clean, 4);
        let a = explore_schedule(&cfg, 7, 3);
        let b = explore_schedule(&cfg, 7, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_trace_replays_to_the_same_run() {
        for strategy in [CheckStrategy::Clean, CheckStrategy::Visibility] {
            let cfg = CheckConfig::new(strategy, 4);
            for schedule in 0..10 {
                let run = explore_schedule(&cfg, 99, schedule);
                let replayed = run_with_trace(&cfg, &run.decisions);
                assert_eq!(run, replayed, "{} schedule {schedule}", strategy.name());
            }
        }
    }

    #[test]
    fn mutant_is_caught_by_some_adversary() {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, 4);
        let caught = (0..200).any(|s| explore_schedule(&cfg, 1, s).violation.is_some());
        assert!(
            caught,
            "the eager-guard mutant must be caught within 200 schedules"
        );
    }

    #[test]
    fn adversary_families_rotate_with_the_schedule_index() {
        for (s, kind) in AdversaryKind::ALL.iter().enumerate() {
            assert_eq!(Adversary::for_schedule(5, s as u64).kind(), *kind);
        }
    }
}
