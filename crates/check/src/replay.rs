//! Serialized counterexamples: found once, reproducible forever.

use serde::{Deserialize, Serialize};

use crate::adversary::Adversary;
use crate::explore::{run_with_trace, CheckConfig, CheckStrategy, ScheduleRun};
use crate::oracle::ViolationReport;
use crate::shrink::shrink;

/// Current replay-file format version.
pub const REPLAY_VERSION: u32 = 1;

/// Re-execution budget used when shrinking a fresh counterexample.
pub(crate) const SHRINK_BUDGET: u64 = 2_000;

/// A shrunk counterexample on disk: everything needed to re-execute the
/// violating schedule deterministically, plus provenance (which campaign
/// and adversary found it) and the violation the replay must reproduce.
#[derive(Clone, Debug, PartialEq, Deserialize)]
pub struct ReplayFile {
    /// Format version ([`REPLAY_VERSION`]).
    pub version: u32,
    /// Strategy name (see [`CheckStrategy::parse`]).
    pub strategy: String,
    /// Hypercube dimension.
    pub dim: u32,
    /// Campaign seed that found the violation.
    pub campaign_seed: u64,
    /// Schedule index within the campaign.
    pub schedule: u64,
    /// Adversary family that produced the original schedule.
    pub adversary: String,
    /// The shrunk decision trace.
    pub decisions: Vec<u32>,
    /// Step budget the violation was found under (`None` = the strategy
    /// default). A `StepLimit` violation found under `--max-steps` — or a
    /// planted drill's 1-step budget — only reproduces under the same
    /// budget, so the replay records it. Absent in older files, which all
    /// ran at the default.
    pub max_steps: Option<u64>,
    /// The violation the trace must reproduce, step-exact.
    pub violation: ViolationReport,
}

/// Why a replay failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// The file did not parse.
    Parse(String),
    /// Unknown format version.
    UnsupportedVersion(u32),
    /// Unknown strategy name.
    UnknownStrategy(String),
    /// The re-execution did not reproduce the recorded violation.
    Diverged {
        /// The recorded violation.
        expected: ViolationReport,
        /// What the re-execution produced instead.
        actual: Option<ViolationReport>,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Parse(m) => write!(f, "replay file did not parse: {m}"),
            ReplayError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported replay version {v} (this build reads {REPLAY_VERSION})"
                )
            }
            ReplayError::UnknownStrategy(s) => write!(f, "unknown strategy {s:?}"),
            ReplayError::Diverged { expected, actual } => match actual {
                Some(a) => write!(f, "replay diverged: expected [{expected}], got [{a}]"),
                None => write!(
                    f,
                    "replay diverged: expected [{expected}], got no violation"
                ),
            },
        }
    }
}

impl std::error::Error for ReplayError {}

// Hand-written so a default-budget replay (`max_steps: None`) serializes
// without the key at all: corpus files written before the field existed
// stay in canonical form (parse → serialize is the identity on them).
impl Serialize for ReplayFile {
    fn serialize_value(&self) -> serde::Value {
        let mut fields = vec![
            ("version".to_string(), self.version.serialize_value()),
            ("strategy".to_string(), self.strategy.serialize_value()),
            ("dim".to_string(), self.dim.serialize_value()),
            (
                "campaign_seed".to_string(),
                self.campaign_seed.serialize_value(),
            ),
            ("schedule".to_string(), self.schedule.serialize_value()),
            ("adversary".to_string(), self.adversary.serialize_value()),
            ("decisions".to_string(), self.decisions.serialize_value()),
        ];
        if let Some(budget) = self.max_steps {
            fields.push(("max_steps".to_string(), budget.serialize_value()));
        }
        fields.push(("violation".to_string(), self.violation.serialize_value()));
        serde::Value::Object(fields)
    }
}

impl ReplayFile {
    /// Serialize as pretty JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("replay files always serialize")
    }

    /// Parse from JSON, validating version and strategy.
    pub fn from_json(text: &str) -> Result<ReplayFile, ReplayError> {
        let file: ReplayFile =
            serde_json::from_str(text).map_err(|e| ReplayError::Parse(e.to_string()))?;
        if file.version != REPLAY_VERSION {
            return Err(ReplayError::UnsupportedVersion(file.version));
        }
        file.check_config()?;
        Ok(file)
    }

    /// The checking problem this replay belongs to.
    pub fn check_config(&self) -> Result<CheckConfig, ReplayError> {
        let strategy = CheckStrategy::parse(&self.strategy)
            .ok_or_else(|| ReplayError::UnknownStrategy(self.strategy.clone()))?;
        let mut cfg = CheckConfig::new(strategy, self.dim);
        cfg.max_steps = self.max_steps.unwrap_or(0);
        Ok(cfg)
    }

    /// Re-execute the recorded trace.
    pub fn replay(&self) -> Result<ScheduleRun, ReplayError> {
        Ok(run_with_trace(&self.check_config()?, &self.decisions))
    }

    /// Re-execute and demand the recorded violation, step-exact.
    pub fn verify(&self) -> Result<ScheduleRun, ReplayError> {
        let run = self.replay()?;
        if run.violation.as_ref() != Some(&self.violation) {
            return Err(ReplayError::Diverged {
                expected: self.violation.clone(),
                actual: run.violation,
            });
        }
        Ok(run)
    }
}

/// Shrink a violating run (found as schedule number `schedule` of the
/// campaign seeded with `seed`) and wrap it as a replay file.
pub fn shrunk_replay(cfg: &CheckConfig, seed: u64, schedule: u64, run: ScheduleRun) -> ReplayFile {
    shrunk_replay_with_budget(cfg, seed, schedule, run, SHRINK_BUDGET)
}

/// [`shrunk_replay`] with an explicit shrink budget (cap on candidate
/// re-executions). Large dimensions re-execute thousands of steps per
/// candidate, so scale tests shrink with a small budget — the replay is
/// just as valid, only less minimal.
pub fn shrunk_replay_with_budget(
    cfg: &CheckConfig,
    seed: u64,
    schedule: u64,
    run: ScheduleRun,
    budget: u64,
) -> ReplayFile {
    let (shrunk, _stats) = shrink(cfg, run, budget);
    let violation = shrunk
        .violation
        .clone()
        .expect("shrinking preserves the violation");
    ReplayFile {
        version: REPLAY_VERSION,
        strategy: cfg.strategy.name().to_string(),
        dim: cfg.dim,
        campaign_seed: seed,
        schedule,
        adversary: Adversary::for_schedule(seed, schedule)
            .kind()
            .name()
            .to_string(),
        decisions: shrunk.decisions,
        max_steps: (cfg.max_steps > 0).then_some(cfg.max_steps),
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_counterexample;

    #[test]
    fn counterexample_roundtrips_and_verifies() {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, 4);
        let (replay, _, _) = find_counterexample(&cfg, 2, 400);
        let replay = replay.expect("mutant caught");
        let json = replay.to_json();
        let parsed = ReplayFile::from_json(&json).expect("parses");
        assert_eq!(parsed, replay);
        parsed.verify().expect("reproduces the violation");
        // Byte-identical round-trip: serialize → parse → serialize.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn step_budget_violations_record_their_budget_and_verify() {
        // A 1-step budget manufactures a StepLimit violation on any
        // schedule (this is how planted campaign drills work). The replay
        // must carry that budget or re-execution finds no violation.
        let mut cfg = CheckConfig::new(CheckStrategy::Cloning, 4);
        cfg.max_steps = 1;
        let run = crate::explore_schedule(&cfg, 7, 0);
        assert!(run.violation.is_some(), "1-step budget must trip StepLimit");
        let replay = shrunk_replay(&cfg, 7, 0, run);
        assert_eq!(replay.max_steps, Some(1));
        let parsed = ReplayFile::from_json(&replay.to_json()).expect("parses");
        parsed.verify().expect("budget-limited replay reproduces");
    }

    #[test]
    fn replays_without_a_recorded_budget_still_parse() {
        // Files written before `max_steps` existed omit the key entirely;
        // they must keep parsing (as the strategy-default budget).
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, 4);
        let (replay, _, _) = find_counterexample(&cfg, 2, 400);
        let replay = replay.expect("mutant caught");
        let json = replay.to_json();
        let stripped: String = json
            .lines()
            .filter(|l| !l.contains("\"max_steps\""))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = ReplayFile::from_json(&stripped).expect("legacy file parses");
        assert_eq!(parsed.max_steps, None);
        parsed.verify().expect("legacy replay still reproduces");
    }

    #[test]
    fn tampered_violation_is_flagged_as_divergence() {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, 4);
        let (replay, _, _) = find_counterexample(&cfg, 2, 400);
        let mut replay = replay.expect("mutant caught");
        replay.violation.step += 1;
        assert!(matches!(replay.verify(), Err(ReplayError::Diverged { .. })));
    }

    #[test]
    fn version_and_strategy_are_validated() {
        let cfg = CheckConfig::new(CheckStrategy::MutantEagerGuard, 4);
        let (replay, _, _) = find_counterexample(&cfg, 2, 400);
        let replay = replay.expect("mutant caught");

        let mut bad_version = replay.clone();
        bad_version.version = 99;
        assert!(matches!(
            ReplayFile::from_json(&bad_version.to_json()),
            Err(ReplayError::UnsupportedVersion(99))
        ));

        let mut bad_strategy = replay;
        bad_strategy.strategy = "warp-drive".to_string();
        assert!(matches!(
            ReplayFile::from_json(&bad_strategy.to_json()),
            Err(ReplayError::UnknownStrategy(_))
        ));
    }
}
