//! Shared fixtures for the integration test suites.
//!
//! Used as a dev-dependency only; nothing here ships in release builds.
//! The helpers were promoted out of `crates/server/tests/serve.rs`,
//! `tests/cross_engine.rs`, and `tests/pool_determinism.rs`, where each
//! suite kept a private near-identical copy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hypersweep_analysis::{RunCache, StrategyKind};
use hypersweep_intruder::{verify_trace, MonitorConfig, Verdict};
use hypersweep_server::{Request, Server, ServerLimits, ServerStats};
use hypersweep_sim::{Event, EventKind, Role};
use hypersweep_topology::{Hypercube, Node};

/// A shutdown trigger for a spawned daemon; call it to begin draining.
pub type Shutdown = Arc<dyn Fn() + Send + Sync>;

/// Spawn a daemon on an ephemeral port over an explicit run cache; returns
/// its address, a shutdown trigger, and the join handle yielding the final
/// stats.
pub fn spawn_server(
    limits: ServerLimits,
    cache: Arc<RunCache>,
) -> (String, Shutdown, JoinHandle<ServerStats>) {
    let server = Server::with_cache("127.0.0.1:0", limits, cache).expect("bind");
    finish_spawn(server)
}

/// Spawn a daemon on an ephemeral port through [`Server::bind`], the path
/// `hypersweep serve` takes (the run cache accounts into the daemon's own
/// telemetry registry).
pub fn spawn_bound_server(limits: ServerLimits) -> (String, Shutdown, JoinHandle<ServerStats>) {
    let server = Server::bind("127.0.0.1:0", limits).expect("bind");
    finish_spawn(server)
}

fn finish_spawn(server: Server) -> (String, Shutdown, JoinHandle<ServerStats>) {
    let addr = server.local_addr().expect("addr").to_string();
    let flag = server.shutdown_flag();
    let shutdown: Shutdown = Arc::new(move || flag());
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, shutdown, handle)
}

/// Default limits with a test-friendly 10s request timeout.
pub fn quick_limits() -> ServerLimits {
    ServerLimits {
        request_timeout: Duration::from_secs(10),
        ..ServerLimits::default()
    }
}

/// The standard mixed request stream used by the determinism suites:
/// plan/predict/audit across all four paper strategies, plus a frontier
/// audit.
pub fn standard_workload() -> Vec<Request> {
    let mut w = Vec::new();
    for strategy in [
        StrategyKind::Clean,
        StrategyKind::Visibility,
        StrategyKind::Cloning,
        StrategyKind::Synchronous,
    ] {
        w.push(Request::Plan { strategy, dim: 6 });
        w.push(Request::Predict { strategy, dim: 8 });
        w.push(Request::Audit { strategy, dim: 6 });
    }
    w.push(Request::Audit {
        strategy: StrategyKind::Frontier,
        dim: 5,
    });
    w
}

/// Audit a trace against the full monitor stack with the worst-case
/// intruder seeded at the far corner (the node furthest from the
/// homebase).
pub fn audit_far_corner(cube: Hypercube, events: &[Event]) -> Verdict {
    verify_trace(
        &cube,
        Node::ROOT,
        events,
        MonitorConfig::with_intruder(Node(cube.node_count() as u32 - 1)),
    )
}

/// A hand-built spawn event at the homebase (worker role, time 0).
pub fn spawn_event(agent: u32) -> Event {
    Event {
        time: 0,
        kind: EventKind::Spawn {
            agent,
            node: Node::ROOT,
            role: Role::Worker,
        },
    }
}

/// A hand-built move event (worker role, time 0) for trace fragments.
pub fn move_event(agent: u32, from: u32, to: u32) -> Event {
    Event {
        time: 0,
        kind: EventKind::Move {
            agent,
            from: Node(from),
            to: Node(to),
            role: Role::Worker,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_covers_every_paper_strategy() {
        let w = standard_workload();
        assert_eq!(w.len(), 13);
    }

    #[test]
    fn far_corner_audit_accepts_a_synthesized_clean_trace() {
        let cube = Hypercube::new(4);
        let (_, ev) = hypersweep_core::CleanStrategy::new(cube).synthesize(true);
        let verdict = audit_far_corner(cube, &ev.unwrap());
        assert!(verdict.is_complete(), "{:?}", verdict.violations);
    }
}
