//! The true contamination state, maintained event by event.

use std::collections::VecDeque;

use hypersweep_topology::{wide, Node, NodeSet, Topology};

use hypersweep_sim::{Event, EventKind};

use crate::connectivity::SafeForest;

/// The reusable allocations of a [`ContaminationField`]: every per-node
/// buffer, traversal scratch, and the incremental connectivity forest.
///
/// A field is built *in* a scratch ([`ContaminationField::new_in`]) and can
/// be dismantled back into one ([`ContaminationField::into_scratch`]), so a
/// caller auditing many runs in a row — the checker explores thousands of
/// schedules per campaign — pays the `O(n)` allocations once instead of
/// once per run.
#[derive(Default)]
pub struct FieldScratch {
    contaminated: NodeSet,
    occupancy: Vec<u32>,
    guarded: NodeSet,
    visited: NodeSet,
    ever_safe: NodeSet,
    recontaminations: Vec<(u64, Node)>,
    forest: Option<SafeForest>,
    safe_nbrs: Vec<u32>,
    degree: Vec<u32>,
    frontier: NodeSet,
    scratch_frontier: NodeSet,
    scratch_next: NodeSet,
    scratch_reached: NodeSet,
    scratch_nbrs: Vec<Node>,
    scratch_adj: Vec<Node>,
    scratch_queue: VecDeque<Node>,
}

/// Reset `set` to the empty set over `0..n`, reusing its words when the
/// universe matches.
fn reset_set(set: &mut NodeSet, n: usize) {
    if set.universe() == n {
        set.clear();
    } else {
        *set = NodeSet::new(n);
    }
}

/// Ground-truth node states during a search.
///
/// Unlike the executors' optimistic view (which assumes monotonicity), this
/// structure implements the adversarial semantics faithfully: contamination
/// spreads through any unguarded path the instant a guard is lifted.
///
/// Node predicates are packed [`NodeSet`] bitsets. On the hypercube (any
/// topology reporting [`Topology::hypercube_dim`]) the recontamination
/// flood runs word-parallel — whole 64-node frontier words are expanded per
/// step via the cube's XOR structure — and all traversal scratch lives in
/// the field, so applying events allocates nothing.
///
/// The paper's *region* invariants are maintained incrementally rather than
/// re-derived by scanning:
///
/// * **Contiguity** — a [`SafeForest`] tracks the connected components of
///   the decontaminated region as nodes are cleaned (union-find insertion,
///   `O(α · Δ)` per event) so [`ContaminationField::is_contiguous`] is two
///   integer comparisons. Recontamination (a deletion, which only happens
///   on monotonicity violations) marks the forest dirty; the next query
///   rebuilds it from the contamination bitset — word-parallel floods on
///   the hypercube, per-node BFS elsewhere.
/// * **Frontier guard coverage** — per-node counts of safe neighbours feed
///   a maintained frontier bitset, so
///   [`ContaminationField::unguarded_frontier`] is an `O(1)` counter check
///   instead of a whole-field expand-and-mask scan.
///
/// The pre-incremental whole-field oracles are retained as
/// [`ContaminationField::is_contiguous_bfs`] and
/// [`ContaminationField::unguarded_frontier_scan`]; the differential test
/// suite holds the incremental answers equal to them on every sampled event
/// stream.
///
/// Complexity: applying an event is `O(Δ)` unless the event vacates a node
/// next to contamination, in which case the spread flood costs up to
/// `O(d · n/64)` words plus `O(Δ)` per recontaminated node; monotone
/// strategies never trigger the spread, so auditing a full run of any
/// correct strategy costs `O(moves · Δ)` where `Δ` is the maximum degree —
/// *including* per-event contiguity and frontier checks.
pub struct ContaminationField<'a, T: Topology + ?Sized> {
    topo: &'a T,
    /// `Some(d)` when `topo` is `H_d`: enables the word-parallel kernels.
    hyper_dim: Option<u32>,
    contaminated: NodeSet,
    occupancy: Vec<u32>,
    /// Nodes with `occupancy > 0`, as a bitset (mirrors `occupancy`).
    guarded: NodeSet,
    visited: NodeSet,
    /// Nodes that have been decontaminated at least once.
    ever_safe: NodeSet,
    /// Count of contaminated nodes (for O(1) "all clean" checks).
    dirty_count: usize,
    /// Recontamination incidents: (event index, node).
    recontaminations: Vec<(u64, Node)>,
    events_applied: u64,
    homebase: Node,
    /// Incrementally maintained connectivity over the safe region.
    forest: SafeForest,
    /// Per-node count of currently-safe neighbours (maintained for every
    /// node, safe or not). A node borders contamination iff
    /// `safe_nbrs < degree`.
    safe_nbrs: Vec<u32>,
    /// Per-node degree — only materialized for non-hypercube fabrics (on
    /// `H_d` every degree is `d`).
    degree: Vec<u32>,
    /// Maintained frontier: clean (safe, unguarded) nodes bordering
    /// contamination. Under instant-spread semantics this set returns to
    /// empty after every fully-applied event.
    frontier: NodeSet,
    frontier_count: usize,
    // Reusable traversal scratch (word-parallel frontiers and the
    // per-node fallback queues).
    scratch_frontier: NodeSet,
    scratch_next: NodeSet,
    scratch_reached: NodeSet,
    scratch_nbrs: Vec<Node>,
    /// Dedicated adjacency scratch for the incremental-connectivity hooks,
    /// which run while `scratch_nbrs` is checked out by a flood.
    scratch_adj: Vec<Node>,
    scratch_queue: VecDeque<Node>,
}

impl<'a, T: Topology + ?Sized> ContaminationField<'a, T> {
    /// Start a search on `topo`: every node contaminated except nothing —
    /// even the homebase counts as contaminated until the first agent
    /// spawns on it.
    pub fn new(topo: &'a T, homebase: Node) -> Self {
        Self::new_in(topo, homebase, FieldScratch::default())
    }

    /// Like [`ContaminationField::new`], but reusing the allocations of a
    /// previous field (see [`FieldScratch`]).
    pub fn new_in(topo: &'a T, homebase: Node, mut s: FieldScratch) -> Self {
        let n = topo.node_count();
        let hyper_dim = topo.hypercube_dim();
        reset_set(&mut s.contaminated, n);
        s.contaminated.insert_all();
        s.occupancy.clear();
        s.occupancy.resize(n, 0);
        reset_set(&mut s.guarded, n);
        reset_set(&mut s.visited, n);
        reset_set(&mut s.ever_safe, n);
        s.recontaminations.clear();
        let mut forest = s.forest.take().unwrap_or_else(|| SafeForest::new(0, false));
        forest.reset(n, hyper_dim.is_some());
        s.safe_nbrs.clear();
        s.safe_nbrs.resize(n, 0);
        s.degree.clear();
        if hyper_dim.is_none() {
            s.degree.reserve(n);
            for i in 0..n {
                topo.neighbors_into(Node(i as u32), &mut s.scratch_nbrs);
                s.degree.push(s.scratch_nbrs.len() as u32);
            }
        }
        reset_set(&mut s.frontier, n);
        reset_set(&mut s.scratch_frontier, n);
        reset_set(&mut s.scratch_next, n);
        reset_set(&mut s.scratch_reached, n);
        s.scratch_nbrs.clear();
        s.scratch_adj.clear();
        s.scratch_queue.clear();
        ContaminationField {
            topo,
            hyper_dim,
            contaminated: s.contaminated,
            occupancy: s.occupancy,
            guarded: s.guarded,
            visited: s.visited,
            ever_safe: s.ever_safe,
            dirty_count: n,
            recontaminations: s.recontaminations,
            events_applied: 0,
            homebase,
            forest,
            safe_nbrs: s.safe_nbrs,
            degree: s.degree,
            frontier: s.frontier,
            frontier_count: 0,
            scratch_frontier: s.scratch_frontier,
            scratch_next: s.scratch_next,
            scratch_reached: s.scratch_reached,
            scratch_nbrs: s.scratch_nbrs,
            scratch_adj: s.scratch_adj,
            scratch_queue: s.scratch_queue,
        }
    }

    /// Rebuild a field from an externally-held snapshot: the set of safe
    /// (decontaminated) nodes and the per-node occupancy. Occupied nodes
    /// are made safe whether or not the snapshot lists them.
    ///
    /// The dynamic-graph scenario snapshots `(safe, occupancy)` between
    /// rounds, mutates the topology, and restores the search state onto
    /// the new adjacency — replaying the event log would bake in the old
    /// graph's spread semantics. The restored field re-derives the
    /// connectivity forest, safe-neighbour counts, and maintained
    /// frontier from the *new* adjacency, so the region oracles
    /// immediately reflect the mutation: a safe unguarded node that the
    /// mutation pushed onto the contamination boundary shows up in
    /// [`ContaminationField::unguarded_frontier`].
    pub fn with_state(topo: &'a T, homebase: Node, safe: &NodeSet, occupancy: &[u32]) -> Self {
        Self::with_state_in(topo, homebase, safe, occupancy, FieldScratch::default())
    }

    /// Like [`ContaminationField::with_state`], but reusing a scratch.
    pub fn with_state_in(
        topo: &'a T,
        homebase: Node,
        safe: &NodeSet,
        occupancy: &[u32],
        scratch: FieldScratch,
    ) -> Self {
        let n = topo.node_count();
        assert_eq!(safe.universe(), n, "safe set universe mismatch");
        assert_eq!(occupancy.len(), n, "occupancy length mismatch");
        let mut field = Self::new_in(topo, homebase, scratch);
        for x in safe.iter() {
            field.decontaminate(x);
        }
        for (i, &occ) in occupancy.iter().enumerate() {
            if occ > 0 {
                let x = Node(i as u32);
                field.decontaminate(x);
                field.occupancy[i] = occ;
                field.guarded.insert(x);
                field.visited.insert(x);
                field.refresh_frontier(x);
            }
        }
        field
    }

    /// Dismantle the field into its reusable allocations.
    pub fn into_scratch(self) -> FieldScratch {
        FieldScratch {
            contaminated: self.contaminated,
            occupancy: self.occupancy,
            guarded: self.guarded,
            visited: self.visited,
            ever_safe: self.ever_safe,
            recontaminations: self.recontaminations,
            forest: Some(self.forest),
            safe_nbrs: self.safe_nbrs,
            degree: self.degree,
            frontier: self.frontier,
            scratch_frontier: self.scratch_frontier,
            scratch_next: self.scratch_next,
            scratch_reached: self.scratch_reached,
            scratch_nbrs: self.scratch_nbrs,
            scratch_adj: self.scratch_adj,
            scratch_queue: self.scratch_queue,
        }
    }

    /// The homebase node.
    pub fn homebase(&self) -> Node {
        self.homebase
    }

    /// Whether `x` is currently contaminated.
    pub fn is_contaminated(&self, x: Node) -> bool {
        self.contaminated.contains(x)
    }

    /// Whether `x` is currently guarded (occupied by at least one agent,
    /// terminated guards included).
    pub fn is_guarded(&self, x: Node) -> bool {
        self.occupancy[x.index()] > 0
    }

    /// Whether `x` is clean: visited, unguarded, not contaminated.
    pub fn is_clean(&self, x: Node) -> bool {
        !self.contaminated.contains(x) && self.occupancy[x.index()] == 0
    }

    /// Number of currently contaminated nodes.
    pub fn contaminated_count(&self) -> usize {
        self.dirty_count
    }

    /// Whether the whole graph is decontaminated.
    pub fn all_clean(&self) -> bool {
        self.dirty_count == 0
    }

    /// Recontamination incidents observed so far (each one is a
    /// monotonicity violation).
    pub fn recontaminations(&self) -> &[(u64, Node)] {
        &self.recontaminations
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Degree of `x` in the underlying topology.
    #[inline]
    fn degree_of(&self, x: Node) -> u32 {
        match self.hyper_dim {
            Some(d) => d,
            None => self.degree[x.index()],
        }
    }

    /// Whether the decontaminated region (guarded ∪ clean) is connected and
    /// contains the homebase — the *contiguity* requirement. An entirely
    /// contaminated graph trivially satisfies it.
    ///
    /// Served from the incrementally maintained [`SafeForest`]: `O(1)`
    /// unless a recontamination dirtied the forest since the last query, in
    /// which case the components are rebuilt from the contamination bitset
    /// first. Takes `&mut self` only for the rebuild path and find-path
    /// compression; the logical state is untouched.
    pub fn is_contiguous(&mut self) -> bool {
        let n = self.topo.node_count();
        let safe_total = n - self.dirty_count;
        if safe_total == 0 {
            return true;
        }
        if self.contaminated.contains(self.homebase) {
            return false;
        }
        if self.forest.is_dirty() {
            self.rebuild_forest();
        }
        self.forest.components() == 1
    }

    /// Number of connected components of the decontaminated region (`0`
    /// when everything is contaminated). Rebuilds the forest if dirty.
    pub fn clean_components(&mut self) -> usize {
        if self.dirty_count == self.topo.node_count() {
            return 0;
        }
        if self.forest.is_dirty() {
            self.rebuild_forest();
        }
        self.forest.components()
    }

    /// The hypercube attachment port of `x` (see
    /// [`SafeForest::attach_port`]): `None` if `x` is contaminated or the
    /// fabric is not a hypercube, `Some(0)` for attachment roots,
    /// `Some(1..=d)` for the port over which `x` first touched the safe
    /// region. Only meaningful when the forest is not dirty.
    pub fn attachment_port(&self, x: Node) -> Option<u32> {
        self.forest.attach_port(x)
    }

    /// The retained whole-field contiguity oracle: word-parallel BFS over
    /// the safe region from the homebase (per-node BFS on non-hypercube
    /// fabrics). Semantically identical to
    /// [`ContaminationField::is_contiguous`]; kept as the reference
    /// implementation for the differential test suite and for
    /// belt-and-braces audits.
    ///
    /// Takes `&mut self` only to reuse the field's traversal scratch; the
    /// logical state is untouched.
    pub fn is_contiguous_bfs(&mut self) -> bool {
        let n = self.topo.node_count();
        let safe_total = n - self.dirty_count;
        if safe_total == 0 {
            return true;
        }
        if self.contaminated.contains(self.homebase) {
            return false;
        }
        match self.hyper_dim {
            Some(d) => self.is_contiguous_hyper(d, safe_total),
            None => self.is_contiguous_generic(safe_total),
        }
    }

    /// Word-parallel reachability: expand whole frontier words through the
    /// non-contaminated region until a fixpoint.
    fn is_contiguous_hyper(&mut self, d: u32, safe_total: usize) -> bool {
        let mut reached = std::mem::take(&mut self.scratch_reached);
        let mut frontier = std::mem::take(&mut self.scratch_frontier);
        let mut next = std::mem::take(&mut self.scratch_next);
        reached.clear();
        frontier.clear();
        reached.insert(self.homebase);
        frontier.insert(self.homebase);
        loop {
            frontier.hypercube_expand_into(d, &mut next);
            let grew = wide::flood_step(
                next.words_mut(),
                reached.words_mut(),
                self.contaminated.words(),
            );
            if !grew {
                break;
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        let ok = reached.count_ones() == safe_total;
        self.scratch_reached = reached;
        self.scratch_frontier = frontier;
        self.scratch_next = next;
        ok
    }

    /// Per-node BFS over decontaminated nodes from the homebase, for
    /// non-hypercube topologies.
    fn is_contiguous_generic(&mut self, safe_total: usize) -> bool {
        let mut reached = std::mem::take(&mut self.scratch_reached);
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
        reached.clear();
        queue.clear();
        reached.insert(self.homebase);
        queue.push_back(self.homebase);
        let mut count = 1usize;
        while let Some(x) = queue.pop_front() {
            self.topo.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated.contains(y) && reached.insert(y) {
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        self.scratch_reached = reached;
        self.scratch_queue = queue;
        self.scratch_nbrs = nbrs;
        count == safe_total
    }

    /// Rebuild the [`SafeForest`] from the contamination bitset after a
    /// deletion: one flood per safe component, each member adopted directly
    /// under its component's seed (so post-rebuild finds are one hop).
    fn rebuild_forest(&mut self) {
        self.forest.begin_rebuild();
        match self.hyper_dim {
            Some(d) => self.rebuild_forest_hyper(d),
            None => self.rebuild_forest_generic(),
        }
    }

    /// Word-parallel rebuild: flood each component 64 nodes per word
    /// operation; attachment ports are recovered by scanning each new
    /// node's ports against the previously reached set, which keeps the
    /// port record acyclic (every parent lies in a strictly earlier wave).
    fn rebuild_forest_hyper(&mut self, d: u32) {
        let mut reached = std::mem::take(&mut self.scratch_reached);
        let mut frontier = std::mem::take(&mut self.scratch_frontier);
        let mut next = std::mem::take(&mut self.scratch_next);
        reached.clear();
        let n = self.topo.node_count();
        let words = self.contaminated.words().len();
        for wi in 0..words {
            loop {
                let mut unseen = !self.contaminated.words()[wi] & !reached.words()[wi];
                if (wi + 1) * 64 > n {
                    unseen &= (1u64 << (n & 63)) - 1;
                }
                if unseen == 0 {
                    break;
                }
                let seed = Node((wi as u32) << 6 | unseen.trailing_zeros());
                self.forest.add_node(seed);
                reached.insert(seed);
                frontier.clear();
                frontier.insert(seed);
                loop {
                    frontier.hypercube_expand_into(d, &mut next);
                    let grew = wide::mask_clear2(
                        next.words_mut(),
                        self.contaminated.words(),
                        reached.words(),
                    );
                    if !grew {
                        break;
                    }
                    for y in next.iter() {
                        let port = (1..=d)
                            .find(|&p| reached.contains(y.flip(p)))
                            .expect("every flooded node borders the reached set");
                        self.forest.adopt(y, seed, port as u8);
                    }
                    wide::or_assign(reached.words_mut(), next.words());
                    std::mem::swap(&mut frontier, &mut next);
                }
            }
        }
        self.scratch_reached = reached;
        self.scratch_frontier = frontier;
        self.scratch_next = next;
    }

    /// Per-node rebuild for non-hypercube fabrics.
    fn rebuild_forest_generic(&mut self) {
        let mut reached = std::mem::take(&mut self.scratch_reached);
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
        reached.clear();
        queue.clear();
        for i in 0..self.topo.node_count() as u32 {
            let seed = Node(i);
            if self.contaminated.contains(seed) || reached.contains(seed) {
                continue;
            }
            self.forest.add_node(seed);
            reached.insert(seed);
            queue.push_back(seed);
            while let Some(x) = queue.pop_front() {
                self.topo.neighbors_into(x, &mut nbrs);
                for &y in &nbrs {
                    if !self.contaminated.contains(y) && reached.insert(y) {
                        self.forest.adopt(y, seed, 0);
                        queue.push_back(y);
                    }
                }
            }
        }
        self.scratch_reached = reached;
        self.scratch_queue = queue;
        self.scratch_nbrs = nbrs;
    }

    /// Frontier guard-coverage oracle: every decontaminated node adjacent
    /// to the contaminated region must be guarded, else the intruder walks
    /// straight in. Returns a witness — some clean (visited, unguarded)
    /// node with a contaminated neighbour — or `None` when the frontier is
    /// fully covered.
    ///
    /// Under this field's instant-spread semantics the invariant holds by
    /// construction after every applied event, so the oracle is a
    /// self-consistency check: a `Some` means the field itself (or a
    /// hand-mutated trace) broke the adversarial semantics. Served from the
    /// maintained frontier set — an `O(1)` counter check per call.
    pub fn unguarded_frontier(&self) -> Option<Node> {
        if self.frontier_count == 0 {
            return None;
        }
        self.frontier.iter().next()
    }

    /// The retained whole-field frontier scan (word-parallel expand plus
    /// three masks per word on the hypercube, per-node adjacency walk
    /// elsewhere). Semantically identical to
    /// [`ContaminationField::unguarded_frontier`] up to witness choice;
    /// kept as the reference implementation for the differential tests.
    ///
    /// Takes `&mut self` only to reuse the field's traversal scratch; the
    /// logical state is untouched.
    pub fn unguarded_frontier_scan(&mut self) -> Option<Node> {
        match self.hyper_dim {
            Some(d) => {
                let mut next = std::mem::take(&mut self.scratch_next);
                self.contaminated.hypercube_expand_into(d, &mut next);
                wide::mask_clear2(
                    next.words_mut(),
                    self.contaminated.words(),
                    self.guarded.words(),
                );
                let hit = next.iter().next();
                self.scratch_next = next;
                hit
            }
            None => {
                let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
                let mut hit = None;
                'outer: for x in self.contaminated.iter() {
                    self.topo.neighbors_into(x, &mut nbrs);
                    for &y in &nbrs {
                        if !self.contaminated.contains(y) && self.occupancy[y.index()] == 0 {
                            hit = Some(y);
                            break 'outer;
                        }
                    }
                }
                self.scratch_nbrs = nbrs;
                hit
            }
        }
    }

    /// Recompute `x`'s membership in the maintained frontier set from its
    /// current state (safe? unguarded? bordering contamination?).
    #[inline]
    fn refresh_frontier(&mut self, x: Node) {
        let member = !self.contaminated.contains(x)
            && self.occupancy[x.index()] == 0
            && self.safe_nbrs[x.index()] < self.degree_of(x);
        if member {
            if self.frontier.insert(x) {
                self.frontier_count += 1;
            }
        } else if self.frontier.remove(x) {
            self.frontier_count -= 1;
        }
    }

    /// `x` just flipped contaminated → safe: register it with the forest,
    /// union it with every already-safe neighbour (recording the hypercube
    /// attachment port), and propagate the safe-neighbour counts.
    fn connect_safe(&mut self, x: Node) {
        self.forest.add_node(x);
        match self.hyper_dim {
            Some(d) => {
                for p in 1..=d {
                    let y = x.flip(p);
                    self.safe_nbrs[y.index()] += 1;
                    if !self.contaminated.contains(y) {
                        self.forest.set_attach_port(x, p);
                        self.forest.union(x, y);
                    }
                    self.refresh_frontier(y);
                }
            }
            None => {
                let mut adj = std::mem::take(&mut self.scratch_adj);
                self.topo.neighbors_into(x, &mut adj);
                for &y in &adj {
                    self.safe_nbrs[y.index()] += 1;
                    if !self.contaminated.contains(y) {
                        self.forest.union(x, y);
                    }
                    self.refresh_frontier(y);
                }
                self.scratch_adj = adj;
            }
        }
        self.refresh_frontier(x);
    }

    /// `x` just flipped safe → contaminated: the forest may have split
    /// (mark it dirty) and the neighbours lost a safe neighbour — which may
    /// push them onto the frontier.
    fn disconnect_safe(&mut self, x: Node) {
        self.forest.mark_dirty();
        match self.hyper_dim {
            Some(d) => {
                for p in 1..=d {
                    let y = x.flip(p);
                    self.safe_nbrs[y.index()] -= 1;
                    self.refresh_frontier(y);
                }
            }
            None => {
                let mut adj = std::mem::take(&mut self.scratch_adj);
                self.topo.neighbors_into(x, &mut adj);
                for &y in &adj {
                    self.safe_nbrs[y.index()] -= 1;
                    self.refresh_frontier(y);
                }
                self.scratch_adj = adj;
            }
        }
        self.refresh_frontier(x);
    }

    fn decontaminate(&mut self, x: Node) {
        if self.contaminated.remove(x) {
            self.dirty_count -= 1;
            self.connect_safe(x);
        }
        self.ever_safe.insert(x);
    }

    fn occupy(&mut self, x: Node) {
        self.occupancy[x.index()] += 1;
        self.guarded.insert(x);
        self.visited.insert(x);
        self.decontaminate(x);
        self.refresh_frontier(x);
    }

    /// Contamination floods into `x` (just vacated) if a contaminated
    /// neighbour exists, then cascades through unguarded nodes.
    fn maybe_recontaminate(&mut self, x: Node) {
        if self.contaminated.contains(x) || self.occupancy[x.index()] > 0 {
            return;
        }
        if self.safe_nbrs[x.index()] == self.degree_of(x) {
            return;
        }
        self.contaminated.insert(x);
        self.dirty_count += 1;
        self.recontaminations.push((self.events_applied, x));
        self.disconnect_safe(x);
        match self.hyper_dim {
            Some(d) => self.spread_hyper(d, x),
            None => self.spread_generic(x),
        }
    }

    /// Word-parallel spread: each wave contaminates every unguarded safe
    /// neighbour of the previous wave, 64 nodes per word operation.
    fn spread_hyper(&mut self, d: u32, x: Node) {
        let mut frontier = std::mem::take(&mut self.scratch_frontier);
        let mut next = std::mem::take(&mut self.scratch_next);
        frontier.clear();
        frontier.insert(x);
        loop {
            frontier.hypercube_expand_into(d, &mut next);
            let grew = wide::flood_step(
                next.words_mut(),
                self.contaminated.words_mut(),
                self.guarded.words(),
            );
            if !grew {
                break;
            }
            self.dirty_count += next.count_ones();
            for y in next.iter() {
                self.recontaminations.push((self.events_applied, y));
                self.disconnect_safe(y);
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        self.scratch_frontier = frontier;
        self.scratch_next = next;
    }

    /// Per-node spread BFS through unguarded, currently-safe nodes.
    fn spread_generic(&mut self, x: Node) {
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
        queue.clear();
        queue.push_back(x);
        while let Some(u) = queue.pop_front() {
            self.topo.neighbors_into(u, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated.contains(y) && self.occupancy[y.index()] == 0 {
                    self.contaminated.insert(y);
                    self.dirty_count += 1;
                    self.recontaminations.push((self.events_applied, y));
                    self.disconnect_safe(y);
                    queue.push_back(y);
                }
            }
        }
        self.scratch_queue = queue;
        self.scratch_nbrs = nbrs;
    }

    /// Apply one event.
    pub fn apply(&mut self, event: &Event) {
        self.events_applied += 1;
        match event.kind {
            EventKind::Spawn { node, .. } => {
                self.occupy(node);
            }
            EventKind::Move { from, to, .. } => {
                self.occupy(to);
                self.occupancy[from.index()] -= 1;
                if self.occupancy[from.index()] == 0 {
                    self.guarded.remove(from);
                    self.refresh_frontier(from);
                    self.maybe_recontaminate(from);
                }
            }
            EventKind::CloneSpawn { to, .. } => {
                self.occupy(to);
            }
            EventKind::Terminate { .. } => {
                // The agent remains as a guard; nothing changes.
            }
        }
    }

    /// Occupancy of each node.
    pub fn occupancy(&self) -> &[u32] {
        &self.occupancy
    }

    /// The currently contaminated nodes, as a packed set.
    pub fn contaminated_set(&self) -> &NodeSet {
        &self.contaminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_sim::Role;
    use hypersweep_topology::Hypercube;

    fn ev(kind: EventKind) -> Event {
        Event { time: 0, kind }
    }

    fn spawn(agent: u32, node: u32) -> Event {
        ev(EventKind::Spawn {
            agent,
            node: Node(node),
            role: Role::Worker,
        })
    }

    fn mv(agent: u32, from: u32, to: u32) -> Event {
        ev(EventKind::Move {
            agent,
            from: Node(from),
            to: Node(to),
            role: Role::Worker,
        })
    }

    #[test]
    fn initial_state_fully_contaminated() {
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        assert_eq!(f.contaminated_count(), 8);
        assert!(
            f.is_contiguous(),
            "empty safe region is trivially contiguous"
        );
        assert_eq!(f.clean_components(), 0);
    }

    #[test]
    fn spawn_decontaminates_the_homebase() {
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        assert!(!f.is_contaminated(Node::ROOT));
        assert!(f.is_guarded(Node::ROOT));
        assert_eq!(f.contaminated_count(), 7);
        assert_eq!(f.clean_components(), 1);
        assert_eq!(f.attachment_port(Node::ROOT), Some(0), "attachment root");
    }

    #[test]
    fn vacating_into_contamination_recontaminates() {
        // H_2: agent spawns at 00, moves to 01. 00 is vacated with
        // contaminated neighbour 10 → 00 is recontaminated.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&mv(0, 0, 1));
        assert!(f.is_contaminated(Node(0)), "00 must be recontaminated");
        assert_eq!(f.recontaminations().len(), 1);
        assert!(!f.is_contaminated(Node(1)));
    }

    #[test]
    fn unguarded_frontier_agrees_with_instant_spread_semantics() {
        // Under the field's instant-spread rule a clean unguarded node
        // bordering contamination can never persist (it is recontaminated
        // the moment it arises), so the frontier oracle must stay empty
        // through a well-guarded sweep — on both the word-parallel
        // hypercube path and the generic-graph path.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        assert_eq!(f.unguarded_frontier(), None, "fully contaminated start");
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        assert_eq!(f.unguarded_frontier(), None, "both clean nodes guarded");
        f.apply(&mv(1, 1, 3));
        f.apply(&mv(1, 3, 2));
        assert!(f.all_clean());
        assert_eq!(f.unguarded_frontier(), None, "no contamination left");

        let g =
            hypersweep_topology::graph::AdjGraph::from_edges(4, &[(0, 1), (1, 3), (3, 2), (2, 0)]);
        let mut f = ContaminationField::new(&g, Node(0));
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        assert_eq!(f.unguarded_frontier(), None, "generic path agrees");
    }

    #[test]
    fn maintained_frontier_matches_the_scan() {
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        let trace = [
            spawn(0, 0),
            spawn(1, 0),
            mv(1, 0, 1),
            mv(1, 1, 3),
            mv(1, 3, 2),
        ];
        for e in &trace {
            f.apply(e);
            assert_eq!(
                f.unguarded_frontier().is_some(),
                f.unguarded_frontier_scan().is_some()
            );
        }
    }

    #[test]
    fn guard_blocks_recontamination() {
        // H_2 with two agents: one holds 00, the other tours. No
        // recontamination can occur while 00 stays guarded and the tour
        // only leaves nodes whose neighbours are safe.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1)); // 00 still guarded by agent 0
        f.apply(&mv(1, 1, 3)); // 01 vacated; neighbours 00 (guarded), 11 (now guarded) — but 11 only now occupied…
                               // Applying the move: 11 becomes occupied first, then 01 is vacated,
                               // so 01's neighbours are 00 (guarded, safe) and 11 (guarded):
                               // no recontamination.
        assert!(f.recontaminations().is_empty());
        assert!(f.is_clean(Node(1)));
        f.apply(&mv(1, 3, 2)); // 11 vacated; neighbours 01 (clean), 10 (now guarded)
        assert!(f.recontaminations().is_empty());
        assert!(f.all_clean());
    }

    #[test]
    fn cascade_spreads_through_unguarded_region() {
        // Path 0-1-2-3: guard at 1 separates {0} from {2,3}. Clean 0, then
        // lift the guard at 1 while 2 is contaminated: contamination floods
        // 1 and 0.
        let p = hypersweep_topology::graph::Path::new(4);
        let mut f = ContaminationField::new(&p, Node(0));
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        assert_eq!(f.contaminated_count(), 2); // 2 and 3
        f.apply(&mv(0, 0, 1)); // both agents at 1; 0 vacated but neighbour 1 is guarded
        assert!(!f.is_contaminated(Node(0)));
        f.apply(&mv(0, 1, 0));
        f.apply(&mv(1, 1, 0)); // 1 vacated: neighbour 2 contaminated → 1 catches, spreads to nothing else (0 guarded)
        assert!(f.is_contaminated(Node(1)));
        assert!(!f.is_contaminated(Node(0)));
        assert_eq!(f.contaminated_count(), 3);
    }

    #[test]
    fn hypercube_cascade_floods_the_unguarded_region() {
        // H_3: build a clean unguarded chain 000–010–011 behind guards,
        // then vacate 001 next to contaminated 101 — the flood must cascade
        // through the whole chain (two waves) via the word-parallel spread.
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        for a in 0..4 {
            f.apply(&spawn(a, 0));
        }
        f.apply(&mv(1, 0b000, 0b001));
        f.apply(&mv(2, 0b000, 0b001));
        f.apply(&mv(2, 0b001, 0b011));
        f.apply(&mv(3, 0b000, 0b010));
        f.apply(&mv(0, 0b000, 0b100)); // 000 clean, unguarded; no spread
        f.apply(&mv(3, 0b010, 0b110)); // 010 clean, unguarded; no spread
        f.apply(&mv(2, 0b011, 0b111)); // 011 clean, unguarded; no spread
        assert!(f.recontaminations().is_empty());
        assert_eq!(f.contaminated_count(), 1); // only 101 left

        // 001 is vacated while 101 is contaminated: 001 catches, then the
        // flood runs 001 → 011 → 010 (000 stays guarded).
        f.apply(&mv(1, 0b001, 0b000));
        assert_eq!(f.recontaminations().len(), 3);
        assert!(f.is_contaminated(Node(0b001)));
        assert!(f.is_contaminated(Node(0b011)));
        assert!(f.is_contaminated(Node(0b010)));
        assert!(!f.is_contaminated(Node(0b000)));
        assert_eq!(f.contaminated_count(), 4);
        // The forest went dirty on the cascade; the next query rebuilds it
        // and must agree with the reference oracle.
        assert_eq!(f.is_contiguous(), f.is_contiguous_bfs());
    }

    #[test]
    fn contiguity_detects_split_regions() {
        // Ring of 6: clean nodes 0 and 3 without connecting them.
        let r = hypersweep_topology::graph::Ring::new(6);
        let mut f = ContaminationField::new(&r, Node(0));
        f.apply(&spawn(0, 0));
        assert!(f.is_contiguous());
        // Illegal teleport-style trace (only possible in a hand-written
        // trace — engines forbid it): an agent "spawns" at 3.
        f.apply(&spawn(1, 3));
        assert!(!f.is_contiguous(), "two islands must be flagged");
        assert_eq!(f.clean_components(), 2);
    }

    #[test]
    fn hypercube_contiguity_detects_split_regions() {
        // H_3: clean 000 and the far corner 111 without connecting them.
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        assert!(f.is_contiguous());
        f.apply(&spawn(1, 0b111));
        assert!(!f.is_contiguous(), "two islands must be flagged");
        assert_eq!(f.clean_components(), 2);
        // Bridging the islands merges the components incrementally.
        f.apply(&spawn(2, 0b001));
        f.apply(&spawn(3, 0b011));
        assert!(f.is_contiguous(), "bridge 000-001-011-111 reconnects");
        assert_eq!(f.clean_components(), 1);
    }

    #[test]
    fn terminate_keeps_the_guard() {
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&ev(EventKind::Terminate {
            agent: 0,
            node: Node(0),
        }));
        assert!(f.is_guarded(Node::ROOT));
        assert!(!f.is_contaminated(Node::ROOT));
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        // Run a trace, recycle the scratch into a new field (same and then
        // different universe), and demand identical behaviour.
        let trace = [spawn(0, 0), spawn(1, 0), mv(1, 0, 1), mv(1, 1, 3)];
        let h = Hypercube::new(2);
        let mut fresh = ContaminationField::new(&h, Node::ROOT);
        for e in &trace {
            fresh.apply(e);
        }
        let scratch = fresh.into_scratch();
        let mut reused = ContaminationField::new_in(&h, Node::ROOT, scratch);
        let mut fresh2 = ContaminationField::new(&h, Node::ROOT);
        for e in &trace {
            reused.apply(e);
            fresh2.apply(e);
            assert_eq!(reused.contaminated_count(), fresh2.contaminated_count());
            assert_eq!(reused.is_contiguous(), fresh2.is_contiguous());
            assert_eq!(reused.unguarded_frontier(), fresh2.unguarded_frontier());
        }
        // And across universes: H_2 scratch reused on H_3.
        let h3 = Hypercube::new(3);
        let mut grown = ContaminationField::new_in(&h3, Node::ROOT, reused.into_scratch());
        grown.apply(&spawn(0, 0));
        assert_eq!(grown.contaminated_count(), 7);
        assert!(grown.is_contiguous());
    }

    /// `(safe set, occupancy)` snapshot of a field, as the dynamic-graph
    /// scenario takes between rounds.
    fn snapshot<T: Topology + ?Sized>(f: &ContaminationField<'_, T>) -> (NodeSet, Vec<u32>) {
        let n = f.occupancy().len();
        let mut safe = NodeSet::new(n);
        for i in 0..n as u32 {
            if !f.is_contaminated(Node(i)) {
                safe.insert(Node(i));
            }
        }
        (safe, f.occupancy().to_vec())
    }

    #[test]
    fn with_state_restores_a_snapshot_onto_the_same_adjacency() {
        use hypersweep_topology::graph::AdjGraph;
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut f = ContaminationField::new(&g, Node(0));
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1)); // 0 guarded by agent 0, 1 guarded by agent 1
        let (safe, occupancy) = snapshot(&f);

        let mut same = ContaminationField::with_state(&g, Node(0), &safe, &occupancy);
        assert_eq!(same.contaminated_count(), f.contaminated_count());
        assert_eq!(same.is_contiguous(), f.is_contiguous());
        assert_eq!(same.unguarded_frontier(), f.unguarded_frontier());
        assert!(same.is_guarded(Node(1)));
        assert_eq!(same.clean_components(), 1);
    }

    #[test]
    fn with_state_sees_mutation_exposed_frontier() {
        // Path 0-1-2-3: after the sweep reaches 2, node 1 is safe,
        // unguarded, and interior. An adversarial edge insertion 1-3
        // puts contaminated 3 next to it — the restored field must
        // surface node 1 as an unguarded frontier immediately.
        use hypersweep_topology::graph::AdjGraph;
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut f = ContaminationField::new(&g, Node(0));
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        f.apply(&mv(1, 1, 2)); // 1 vacated: nbrs 0 (guarded), 2 (now guarded)
        assert!(f.recontaminations().is_empty());
        let (safe, occupancy) = snapshot(&f);
        assert_eq!(f.unguarded_frontier(), None, "1 is interior");

        let mut mutated = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        mutated.add_edge(Node(1), Node(3));
        let restored = ContaminationField::with_state(&mutated, Node(0), &safe, &occupancy);
        assert_eq!(
            restored.unguarded_frontier(),
            Some(Node(1)),
            "the inserted edge 1-3 must expose node 1"
        );
    }

    #[test]
    fn attachment_ports_certify_safe_paths() {
        // After a guarded sweep of H_3, every safe node's attachment-port
        // walk must stay safe and terminate at an attachment root.
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        for a in 0..5 {
            f.apply(&spawn(a, 0));
        }
        f.apply(&mv(1, 0b000, 0b001));
        f.apply(&mv(2, 0b000, 0b010));
        f.apply(&mv(3, 0b000, 0b100));
        f.apply(&mv(4, 0b000, 0b001)); // doubles the guard on 001…
        f.apply(&mv(4, 0b001, 0b011)); // …so this vacate leaves 001 guarded
        assert!(f.recontaminations().is_empty());
        for x in [0b000u32, 0b001, 0b010, 0b100, 0b011] {
            let mut cur = Node(x);
            let mut hops = 0;
            loop {
                assert!(!f.is_contaminated(cur), "walk left the safe region");
                match f.attachment_port(cur) {
                    Some(0) => break,
                    Some(p) => cur = cur.flip(p),
                    None => panic!("safe node {cur:?} has no attachment"),
                }
                hops += 1;
                assert!(hops <= 8, "attachment walk must terminate");
            }
        }
    }
}
