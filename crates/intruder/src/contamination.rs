//! The true contamination state, maintained event by event.

use std::collections::VecDeque;

use hypersweep_topology::{Node, NodeSet, Topology};

use hypersweep_sim::{Event, EventKind};

/// Ground-truth node states during a search.
///
/// Unlike the executors' optimistic view (which assumes monotonicity), this
/// structure implements the adversarial semantics faithfully: contamination
/// spreads through any unguarded path the instant a guard is lifted.
///
/// Node predicates are packed [`NodeSet`] bitsets. On the hypercube (any
/// topology reporting [`Topology::hypercube_dim`]) the recontamination
/// flood and the contiguity BFS run word-parallel — whole 64-node frontier
/// words are expanded per step via the cube's XOR structure — and all
/// traversal scratch lives in the field, so applying events allocates
/// nothing.
///
/// Complexity: applying an event is `O(d)` unless the event vacates a node
/// next to contamination, in which case the spread flood costs up to
/// `O(d · n/64)` words; monotone strategies never trigger the spread, so
/// auditing a full run of any correct strategy costs `O(moves · Δ)` where
/// `Δ` is the maximum degree.
pub struct ContaminationField<'a, T: Topology + ?Sized> {
    topo: &'a T,
    /// `Some(d)` when `topo` is `H_d`: enables the word-parallel kernels.
    hyper_dim: Option<u32>,
    contaminated: NodeSet,
    occupancy: Vec<u32>,
    /// Nodes with `occupancy > 0`, as a bitset (mirrors `occupancy`).
    guarded: NodeSet,
    visited: NodeSet,
    /// Nodes that have been decontaminated at least once.
    ever_safe: NodeSet,
    /// Count of contaminated nodes (for O(1) "all clean" checks).
    dirty_count: usize,
    /// Recontamination incidents: (event index, node).
    recontaminations: Vec<(u64, Node)>,
    events_applied: u64,
    homebase: Node,
    // Reusable traversal scratch (word-parallel frontiers and the
    // per-node fallback queue).
    scratch_frontier: NodeSet,
    scratch_next: NodeSet,
    scratch_reached: NodeSet,
    scratch_nbrs: Vec<Node>,
    scratch_queue: VecDeque<Node>,
}

impl<'a, T: Topology + ?Sized> ContaminationField<'a, T> {
    /// Start a search on `topo`: every node contaminated except nothing —
    /// even the homebase counts as contaminated until the first agent
    /// spawns on it.
    pub fn new(topo: &'a T, homebase: Node) -> Self {
        let n = topo.node_count();
        ContaminationField {
            topo,
            hyper_dim: topo.hypercube_dim(),
            contaminated: NodeSet::full(n),
            occupancy: vec![0; n],
            guarded: NodeSet::new(n),
            visited: NodeSet::new(n),
            ever_safe: NodeSet::new(n),
            dirty_count: n,
            recontaminations: Vec::new(),
            events_applied: 0,
            homebase,
            scratch_frontier: NodeSet::new(n),
            scratch_next: NodeSet::new(n),
            scratch_reached: NodeSet::new(n),
            scratch_nbrs: Vec::new(),
            scratch_queue: VecDeque::new(),
        }
    }

    /// The homebase node.
    pub fn homebase(&self) -> Node {
        self.homebase
    }

    /// Whether `x` is currently contaminated.
    pub fn is_contaminated(&self, x: Node) -> bool {
        self.contaminated.contains(x)
    }

    /// Whether `x` is currently guarded (occupied by at least one agent,
    /// terminated guards included).
    pub fn is_guarded(&self, x: Node) -> bool {
        self.occupancy[x.index()] > 0
    }

    /// Whether `x` is clean: visited, unguarded, not contaminated.
    pub fn is_clean(&self, x: Node) -> bool {
        !self.contaminated.contains(x) && self.occupancy[x.index()] == 0
    }

    /// Number of currently contaminated nodes.
    pub fn contaminated_count(&self) -> usize {
        self.dirty_count
    }

    /// Whether the whole graph is decontaminated.
    pub fn all_clean(&self) -> bool {
        self.dirty_count == 0
    }

    /// Recontamination incidents observed so far (each one is a
    /// monotonicity violation).
    pub fn recontaminations(&self) -> &[(u64, Node)] {
        &self.recontaminations
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Whether the decontaminated region (guarded ∪ clean) is connected and
    /// contains the homebase — the *contiguity* requirement. An entirely
    /// contaminated graph trivially satisfies it.
    ///
    /// Takes `&mut self` only to reuse the field's traversal scratch; the
    /// logical state is untouched.
    pub fn is_contiguous(&mut self) -> bool {
        let n = self.topo.node_count();
        let safe_total = n - self.dirty_count;
        if safe_total == 0 {
            return true;
        }
        if self.contaminated.contains(self.homebase) {
            return false;
        }
        match self.hyper_dim {
            Some(d) => self.is_contiguous_hyper(d, safe_total),
            None => self.is_contiguous_generic(safe_total),
        }
    }

    /// Word-parallel reachability: expand whole frontier words through the
    /// non-contaminated region until a fixpoint.
    fn is_contiguous_hyper(&mut self, d: u32, safe_total: usize) -> bool {
        let mut reached = std::mem::take(&mut self.scratch_reached);
        let mut frontier = std::mem::take(&mut self.scratch_frontier);
        let mut next = std::mem::take(&mut self.scratch_next);
        reached.clear();
        frontier.clear();
        reached.insert(self.homebase);
        frontier.insert(self.homebase);
        loop {
            frontier.hypercube_expand_into(d, &mut next);
            let mut grew = false;
            for ((nw, rw), cw) in next
                .words_mut()
                .iter_mut()
                .zip(reached.words_mut())
                .zip(self.contaminated.words())
            {
                *nw &= !*cw & !*rw;
                *rw |= *nw;
                grew |= *nw != 0;
            }
            if !grew {
                break;
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        let ok = reached.count_ones() == safe_total;
        self.scratch_reached = reached;
        self.scratch_frontier = frontier;
        self.scratch_next = next;
        ok
    }

    /// Per-node BFS over decontaminated nodes from the homebase, for
    /// non-hypercube topologies.
    fn is_contiguous_generic(&mut self, safe_total: usize) -> bool {
        let mut reached = std::mem::take(&mut self.scratch_reached);
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
        reached.clear();
        queue.clear();
        reached.insert(self.homebase);
        queue.push_back(self.homebase);
        let mut count = 1usize;
        while let Some(x) = queue.pop_front() {
            self.topo.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated.contains(y) && reached.insert(y) {
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        self.scratch_reached = reached;
        self.scratch_queue = queue;
        self.scratch_nbrs = nbrs;
        count == safe_total
    }

    /// Frontier guard-coverage oracle: every decontaminated node adjacent
    /// to the contaminated region must be guarded, else the intruder walks
    /// straight in. Returns a witness — some clean (visited, unguarded)
    /// node with a contaminated neighbour — or `None` when the frontier is
    /// fully covered.
    ///
    /// Under this field's instant-spread semantics the invariant holds by
    /// construction after every applied event, so the oracle is a
    /// self-consistency check: a `Some` means the field itself (or a
    /// hand-mutated trace) broke the adversarial semantics. On the
    /// hypercube the scan is word-parallel (one expand plus three masks per
    /// word).
    ///
    /// Takes `&mut self` only to reuse the field's traversal scratch; the
    /// logical state is untouched.
    pub fn unguarded_frontier(&mut self) -> Option<Node> {
        match self.hyper_dim {
            Some(d) => {
                let mut next = std::mem::take(&mut self.scratch_next);
                self.contaminated.hypercube_expand_into(d, &mut next);
                for (nw, (cw, gw)) in next
                    .words_mut()
                    .iter_mut()
                    .zip(self.contaminated.words().iter().zip(self.guarded.words()))
                {
                    *nw &= !(*cw | *gw);
                }
                let hit = next.iter().next();
                self.scratch_next = next;
                hit
            }
            None => {
                let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
                let mut hit = None;
                'outer: for x in self.contaminated.iter() {
                    self.topo.neighbors_into(x, &mut nbrs);
                    for &y in &nbrs {
                        if !self.contaminated.contains(y) && self.occupancy[y.index()] == 0 {
                            hit = Some(y);
                            break 'outer;
                        }
                    }
                }
                self.scratch_nbrs = nbrs;
                hit
            }
        }
    }

    fn decontaminate(&mut self, x: Node) {
        if self.contaminated.remove(x) {
            self.dirty_count -= 1;
        }
        self.ever_safe.insert(x);
    }

    fn occupy(&mut self, x: Node) {
        self.occupancy[x.index()] += 1;
        self.guarded.insert(x);
        self.visited.insert(x);
        self.decontaminate(x);
    }

    /// Contamination floods into `x` (just vacated) if a contaminated
    /// neighbour exists, then cascades through unguarded nodes.
    fn maybe_recontaminate(&mut self, x: Node) {
        if self.contaminated.contains(x) || self.occupancy[x.index()] > 0 {
            return;
        }
        let exposed = match self.hyper_dim {
            Some(d) => (1..=d).any(|p| self.contaminated.contains(x.flip(p))),
            None => {
                let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
                self.topo.neighbors_into(x, &mut nbrs);
                let any = nbrs.iter().any(|&y| self.contaminated.contains(y));
                self.scratch_nbrs = nbrs;
                any
            }
        };
        if !exposed {
            return;
        }
        self.contaminated.insert(x);
        self.dirty_count += 1;
        self.recontaminations.push((self.events_applied, x));
        match self.hyper_dim {
            Some(d) => self.spread_hyper(d, x),
            None => self.spread_generic(x),
        }
    }

    /// Word-parallel spread: each wave contaminates every unguarded safe
    /// neighbour of the previous wave, 64 nodes per word operation.
    fn spread_hyper(&mut self, d: u32, x: Node) {
        let mut frontier = std::mem::take(&mut self.scratch_frontier);
        let mut next = std::mem::take(&mut self.scratch_next);
        frontier.clear();
        frontier.insert(x);
        loop {
            frontier.hypercube_expand_into(d, &mut next);
            let mut grew = false;
            for ((nw, cw), gw) in next
                .words_mut()
                .iter_mut()
                .zip(self.contaminated.words_mut())
                .zip(self.guarded.words())
            {
                *nw &= !(*cw | *gw);
                *cw |= *nw;
                grew |= *nw != 0;
            }
            if !grew {
                break;
            }
            self.dirty_count += next.count_ones();
            for y in next.iter() {
                self.recontaminations.push((self.events_applied, y));
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        self.scratch_frontier = frontier;
        self.scratch_next = next;
    }

    /// Per-node spread BFS through unguarded, currently-safe nodes.
    fn spread_generic(&mut self, x: Node) {
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut nbrs = std::mem::take(&mut self.scratch_nbrs);
        queue.clear();
        queue.push_back(x);
        while let Some(u) = queue.pop_front() {
            self.topo.neighbors_into(u, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated.contains(y) && self.occupancy[y.index()] == 0 {
                    self.contaminated.insert(y);
                    self.dirty_count += 1;
                    self.recontaminations.push((self.events_applied, y));
                    queue.push_back(y);
                }
            }
        }
        self.scratch_queue = queue;
        self.scratch_nbrs = nbrs;
    }

    /// Apply one event.
    pub fn apply(&mut self, event: &Event) {
        self.events_applied += 1;
        match event.kind {
            EventKind::Spawn { node, .. } => {
                self.occupy(node);
            }
            EventKind::Move { from, to, .. } => {
                self.occupy(to);
                self.occupancy[from.index()] -= 1;
                if self.occupancy[from.index()] == 0 {
                    self.guarded.remove(from);
                    self.maybe_recontaminate(from);
                }
            }
            EventKind::CloneSpawn { to, .. } => {
                self.occupy(to);
            }
            EventKind::Terminate { .. } => {
                // The agent remains as a guard; nothing changes.
            }
        }
    }

    /// Occupancy of each node.
    pub fn occupancy(&self) -> &[u32] {
        &self.occupancy
    }

    /// The currently contaminated nodes, as a packed set.
    pub fn contaminated_set(&self) -> &NodeSet {
        &self.contaminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_sim::Role;
    use hypersweep_topology::Hypercube;

    fn ev(kind: EventKind) -> Event {
        Event { time: 0, kind }
    }

    fn spawn(agent: u32, node: u32) -> Event {
        ev(EventKind::Spawn {
            agent,
            node: Node(node),
            role: Role::Worker,
        })
    }

    fn mv(agent: u32, from: u32, to: u32) -> Event {
        ev(EventKind::Move {
            agent,
            from: Node(from),
            to: Node(to),
            role: Role::Worker,
        })
    }

    #[test]
    fn initial_state_fully_contaminated() {
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        assert_eq!(f.contaminated_count(), 8);
        assert!(
            f.is_contiguous(),
            "empty safe region is trivially contiguous"
        );
    }

    #[test]
    fn spawn_decontaminates_the_homebase() {
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        assert!(!f.is_contaminated(Node::ROOT));
        assert!(f.is_guarded(Node::ROOT));
        assert_eq!(f.contaminated_count(), 7);
    }

    #[test]
    fn vacating_into_contamination_recontaminates() {
        // H_2: agent spawns at 00, moves to 01. 00 is vacated with
        // contaminated neighbour 10 → 00 is recontaminated.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&mv(0, 0, 1));
        assert!(f.is_contaminated(Node(0)), "00 must be recontaminated");
        assert_eq!(f.recontaminations().len(), 1);
        assert!(!f.is_contaminated(Node(1)));
    }

    #[test]
    fn unguarded_frontier_agrees_with_instant_spread_semantics() {
        // Under the field's instant-spread rule a clean unguarded node
        // bordering contamination can never persist (it is recontaminated
        // the moment it arises), so the frontier oracle must stay empty
        // through a well-guarded sweep — on both the word-parallel
        // hypercube path and the generic-graph path.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        assert_eq!(f.unguarded_frontier(), None, "fully contaminated start");
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        assert_eq!(f.unguarded_frontier(), None, "both clean nodes guarded");
        f.apply(&mv(1, 1, 3));
        f.apply(&mv(1, 3, 2));
        assert!(f.all_clean());
        assert_eq!(f.unguarded_frontier(), None, "no contamination left");

        let g =
            hypersweep_topology::graph::AdjGraph::from_edges(4, &[(0, 1), (1, 3), (3, 2), (2, 0)]);
        let mut f = ContaminationField::new(&g, Node(0));
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        assert_eq!(f.unguarded_frontier(), None, "generic path agrees");
    }

    #[test]
    fn guard_blocks_recontamination() {
        // H_2 with two agents: one holds 00, the other tours. No
        // recontamination can occur while 00 stays guarded and the tour
        // only leaves nodes whose neighbours are safe.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1)); // 00 still guarded by agent 0
        f.apply(&mv(1, 1, 3)); // 01 vacated; neighbours 00 (guarded), 11 (now guarded) — but 11 only now occupied…
                               // Applying the move: 11 becomes occupied first, then 01 is vacated,
                               // so 01's neighbours are 00 (guarded, safe) and 11 (guarded):
                               // no recontamination.
        assert!(f.recontaminations().is_empty());
        assert!(f.is_clean(Node(1)));
        f.apply(&mv(1, 3, 2)); // 11 vacated; neighbours 01 (clean), 10 (now guarded)
        assert!(f.recontaminations().is_empty());
        assert!(f.all_clean());
    }

    #[test]
    fn cascade_spreads_through_unguarded_region() {
        // Path 0-1-2-3: guard at 1 separates {0} from {2,3}. Clean 0, then
        // lift the guard at 1 while 2 is contaminated: contamination floods
        // 1 and 0.
        let p = hypersweep_topology::graph::Path::new(4);
        let mut f = ContaminationField::new(&p, Node(0));
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        assert_eq!(f.contaminated_count(), 2); // 2 and 3
        f.apply(&mv(0, 0, 1)); // both agents at 1; 0 vacated but neighbour 1 is guarded
        assert!(!f.is_contaminated(Node(0)));
        f.apply(&mv(0, 1, 0));
        f.apply(&mv(1, 1, 0)); // 1 vacated: neighbour 2 contaminated → 1 catches, spreads to nothing else (0 guarded)
        assert!(f.is_contaminated(Node(1)));
        assert!(!f.is_contaminated(Node(0)));
        assert_eq!(f.contaminated_count(), 3);
    }

    #[test]
    fn hypercube_cascade_floods_the_unguarded_region() {
        // H_3: build a clean unguarded chain 000–010–011 behind guards,
        // then vacate 001 next to contaminated 101 — the flood must cascade
        // through the whole chain (two waves) via the word-parallel spread.
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        for a in 0..4 {
            f.apply(&spawn(a, 0));
        }
        f.apply(&mv(1, 0b000, 0b001));
        f.apply(&mv(2, 0b000, 0b001));
        f.apply(&mv(2, 0b001, 0b011));
        f.apply(&mv(3, 0b000, 0b010));
        f.apply(&mv(0, 0b000, 0b100)); // 000 clean, unguarded; no spread
        f.apply(&mv(3, 0b010, 0b110)); // 010 clean, unguarded; no spread
        f.apply(&mv(2, 0b011, 0b111)); // 011 clean, unguarded; no spread
        assert!(f.recontaminations().is_empty());
        assert_eq!(f.contaminated_count(), 1); // only 101 left

        // 001 is vacated while 101 is contaminated: 001 catches, then the
        // flood runs 001 → 011 → 010 (000 stays guarded).
        f.apply(&mv(1, 0b001, 0b000));
        assert_eq!(f.recontaminations().len(), 3);
        assert!(f.is_contaminated(Node(0b001)));
        assert!(f.is_contaminated(Node(0b011)));
        assert!(f.is_contaminated(Node(0b010)));
        assert!(!f.is_contaminated(Node(0b000)));
        assert_eq!(f.contaminated_count(), 4);
    }

    #[test]
    fn contiguity_detects_split_regions() {
        // Ring of 6: clean nodes 0 and 3 without connecting them.
        let r = hypersweep_topology::graph::Ring::new(6);
        let mut f = ContaminationField::new(&r, Node(0));
        f.apply(&spawn(0, 0));
        assert!(f.is_contiguous());
        // Illegal teleport-style trace (only possible in a hand-written
        // trace — engines forbid it): an agent "spawns" at 3.
        f.apply(&spawn(1, 3));
        assert!(!f.is_contiguous(), "two islands must be flagged");
    }

    #[test]
    fn hypercube_contiguity_detects_split_regions() {
        // H_3: clean 000 and the far corner 111 without connecting them.
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        assert!(f.is_contiguous());
        f.apply(&spawn(1, 0b111));
        assert!(!f.is_contiguous(), "two islands must be flagged");
    }

    #[test]
    fn terminate_keeps_the_guard() {
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&ev(EventKind::Terminate {
            agent: 0,
            node: Node(0),
        }));
        assert!(f.is_guarded(Node::ROOT));
        assert!(!f.is_contaminated(Node::ROOT));
    }
}
