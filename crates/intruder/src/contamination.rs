//! The true contamination state, maintained event by event.

use hypersweep_topology::{Node, Topology};

use hypersweep_sim::{Event, EventKind};

/// Ground-truth node states during a search.
///
/// Unlike the executors' optimistic view (which assumes monotonicity), this
/// structure implements the adversarial semantics faithfully: contamination
/// spreads through any unguarded path the instant a guard is lifted.
///
/// Complexity: applying an event is `O(1)` unless the event vacates a node,
/// in which case a spread BFS costs up to `O(n)`; monotone strategies never
/// trigger the spread, so auditing a full run of any correct strategy costs
/// `O(moves · Δ)` where `Δ` is the maximum degree.
pub struct ContaminationField<'a, T: Topology + ?Sized> {
    topo: &'a T,
    contaminated: Vec<bool>,
    occupancy: Vec<u32>,
    visited: Vec<bool>,
    /// Nodes that have been decontaminated at least once.
    ever_safe: Vec<bool>,
    /// Count of contaminated nodes (for O(1) "all clean" checks).
    dirty_count: usize,
    /// Recontamination incidents: (event index, node).
    recontaminations: Vec<(u64, Node)>,
    events_applied: u64,
    homebase: Node,
}

impl<'a, T: Topology + ?Sized> ContaminationField<'a, T> {
    /// Start a search on `topo`: every node contaminated except nothing —
    /// even the homebase counts as contaminated until the first agent
    /// spawns on it.
    pub fn new(topo: &'a T, homebase: Node) -> Self {
        let n = topo.node_count();
        ContaminationField {
            topo,
            contaminated: vec![true; n],
            occupancy: vec![0; n],
            visited: vec![false; n],
            ever_safe: vec![false; n],
            dirty_count: n,
            recontaminations: Vec::new(),
            events_applied: 0,
            homebase,
        }
    }

    /// The homebase node.
    pub fn homebase(&self) -> Node {
        self.homebase
    }

    /// Whether `x` is currently contaminated.
    pub fn is_contaminated(&self, x: Node) -> bool {
        self.contaminated[x.index()]
    }

    /// Whether `x` is currently guarded (occupied by at least one agent,
    /// terminated guards included).
    pub fn is_guarded(&self, x: Node) -> bool {
        self.occupancy[x.index()] > 0
    }

    /// Whether `x` is clean: visited, unguarded, not contaminated.
    pub fn is_clean(&self, x: Node) -> bool {
        !self.contaminated[x.index()] && self.occupancy[x.index()] == 0
    }

    /// Number of currently contaminated nodes.
    pub fn contaminated_count(&self) -> usize {
        self.dirty_count
    }

    /// Whether the whole graph is decontaminated.
    pub fn all_clean(&self) -> bool {
        self.dirty_count == 0
    }

    /// Recontamination incidents observed so far (each one is a
    /// monotonicity violation).
    pub fn recontaminations(&self) -> &[(u64, Node)] {
        &self.recontaminations
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Whether the decontaminated region (guarded ∪ clean) is connected and
    /// contains the homebase — the *contiguity* requirement. An entirely
    /// contaminated graph trivially satisfies it.
    pub fn is_contiguous(&self) -> bool {
        let n = self.topo.node_count();
        let safe_total = n - self.dirty_count;
        if safe_total == 0 {
            return true;
        }
        if self.contaminated[self.homebase.index()] {
            return false;
        }
        // BFS over decontaminated nodes from the homebase.
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[self.homebase.index()] = true;
        queue.push_back(self.homebase);
        let mut reached = 1usize;
        let mut nbrs = Vec::new();
        while let Some(x) = queue.pop_front() {
            self.topo.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if !seen[y.index()] && !self.contaminated[y.index()] {
                    seen[y.index()] = true;
                    reached += 1;
                    queue.push_back(y);
                }
            }
        }
        reached == safe_total
    }

    fn decontaminate(&mut self, x: Node) {
        if self.contaminated[x.index()] {
            self.contaminated[x.index()] = false;
            self.dirty_count -= 1;
        }
        self.ever_safe[x.index()] = true;
    }

    /// Contamination floods into `x` (just vacated) if a contaminated
    /// neighbour exists, then cascades through unguarded nodes.
    fn maybe_recontaminate(&mut self, x: Node) {
        if self.contaminated[x.index()] || self.occupancy[x.index()] > 0 {
            return;
        }
        let mut nbrs = Vec::new();
        self.topo.neighbors_into(x, &mut nbrs);
        if !nbrs.iter().any(|&y| self.contaminated[y.index()]) {
            return;
        }
        // Spread BFS from x through unguarded, currently-safe nodes.
        let mut queue = std::collections::VecDeque::new();
        self.contaminated[x.index()] = true;
        self.dirty_count += 1;
        self.recontaminations.push((self.events_applied, x));
        queue.push_back(x);
        while let Some(u) = queue.pop_front() {
            self.topo.neighbors_into(u, &mut nbrs);
            for &y in &nbrs {
                if !self.contaminated[y.index()] && self.occupancy[y.index()] == 0 {
                    self.contaminated[y.index()] = true;
                    self.dirty_count += 1;
                    self.recontaminations.push((self.events_applied, y));
                    queue.push_back(y);
                }
            }
        }
    }

    /// Apply one event.
    pub fn apply(&mut self, event: &Event) {
        self.events_applied += 1;
        match event.kind {
            EventKind::Spawn { node, .. } => {
                self.occupancy[node.index()] += 1;
                self.visited[node.index()] = true;
                self.decontaminate(node);
            }
            EventKind::Move { from, to, .. } => {
                self.occupancy[to.index()] += 1;
                self.visited[to.index()] = true;
                self.decontaminate(to);
                self.occupancy[from.index()] -= 1;
                if self.occupancy[from.index()] == 0 {
                    self.maybe_recontaminate(from);
                }
            }
            EventKind::CloneSpawn { to, .. } => {
                self.occupancy[to.index()] += 1;
                self.visited[to.index()] = true;
                self.decontaminate(to);
            }
            EventKind::Terminate { .. } => {
                // The agent remains as a guard; nothing changes.
            }
        }
    }

    /// Occupancy of each node.
    pub fn occupancy(&self) -> &[u32] {
        &self.occupancy
    }

    /// The contaminated indicator per node.
    pub fn contaminated_mask(&self) -> &[bool] {
        &self.contaminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_sim::Role;
    use hypersweep_topology::Hypercube;

    fn ev(kind: EventKind) -> Event {
        Event { time: 0, kind }
    }

    fn spawn(agent: u32, node: u32) -> Event {
        ev(EventKind::Spawn {
            agent,
            node: Node(node),
            role: Role::Worker,
        })
    }

    fn mv(agent: u32, from: u32, to: u32) -> Event {
        ev(EventKind::Move {
            agent,
            from: Node(from),
            to: Node(to),
            role: Role::Worker,
        })
    }

    #[test]
    fn initial_state_fully_contaminated() {
        let h = Hypercube::new(3);
        let f = ContaminationField::new(&h, Node::ROOT);
        assert_eq!(f.contaminated_count(), 8);
        assert!(
            f.is_contiguous(),
            "empty safe region is trivially contiguous"
        );
    }

    #[test]
    fn spawn_decontaminates_the_homebase() {
        let h = Hypercube::new(3);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        assert!(!f.is_contaminated(Node::ROOT));
        assert!(f.is_guarded(Node::ROOT));
        assert_eq!(f.contaminated_count(), 7);
    }

    #[test]
    fn vacating_into_contamination_recontaminates() {
        // H_2: agent spawns at 00, moves to 01. 00 is vacated with
        // contaminated neighbour 10 → 00 is recontaminated.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&mv(0, 0, 1));
        assert!(f.is_contaminated(Node(0)), "00 must be recontaminated");
        assert_eq!(f.recontaminations().len(), 1);
        assert!(!f.is_contaminated(Node(1)));
    }

    #[test]
    fn guard_blocks_recontamination() {
        // H_2 with two agents: one holds 00, the other tours. No
        // recontamination can occur while 00 stays guarded and the tour
        // only leaves nodes whose neighbours are safe.
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1)); // 00 still guarded by agent 0
        f.apply(&mv(1, 1, 3)); // 01 vacated; neighbours 00 (guarded), 11 (now guarded) — but 11 only now occupied…
                               // Applying the move: 11 becomes occupied first, then 01 is vacated,
                               // so 01's neighbours are 00 (guarded, safe) and 11 (guarded):
                               // no recontamination.
        assert!(f.recontaminations().is_empty());
        assert!(f.is_clean(Node(1)));
        f.apply(&mv(1, 3, 2)); // 11 vacated; neighbours 01 (clean), 10 (now guarded)
        assert!(f.recontaminations().is_empty());
        assert!(f.all_clean());
    }

    #[test]
    fn cascade_spreads_through_unguarded_region() {
        // Path 0-1-2-3: guard at 1 separates {0} from {2,3}. Clean 0, then
        // lift the guard at 1 while 2 is contaminated: contamination floods
        // 1 and 0.
        let p = hypersweep_topology::graph::Path::new(4);
        let mut f = ContaminationField::new(&p, Node(0));
        f.apply(&spawn(0, 0));
        f.apply(&spawn(1, 0));
        f.apply(&mv(1, 0, 1));
        assert_eq!(f.contaminated_count(), 2); // 2 and 3
        f.apply(&mv(0, 0, 1)); // both agents at 1; 0 vacated but neighbour 1 is guarded
        assert!(!f.is_contaminated(Node(0)));
        f.apply(&mv(0, 1, 0));
        f.apply(&mv(1, 1, 0)); // 1 vacated: neighbour 2 contaminated → 1 catches, spreads to nothing else (0 guarded)
        assert!(f.is_contaminated(Node(1)));
        assert!(!f.is_contaminated(Node(0)));
        assert_eq!(f.contaminated_count(), 3);
    }

    #[test]
    fn contiguity_detects_split_regions() {
        // Ring of 6: clean nodes 0 and 3 without connecting them.
        let r = hypersweep_topology::graph::Ring::new(6);
        let mut f = ContaminationField::new(&r, Node(0));
        f.apply(&spawn(0, 0));
        assert!(f.is_contiguous());
        // Illegal teleport-style trace (only possible in a hand-written
        // trace — engines forbid it): an agent "spawns" at 3.
        f.apply(&spawn(1, 3));
        assert!(!f.is_contiguous(), "two islands must be flagged");
    }

    #[test]
    fn terminate_keeps_the_guard() {
        let h = Hypercube::new(2);
        let mut f = ContaminationField::new(&h, Node::ROOT);
        f.apply(&spawn(0, 0));
        f.apply(&ev(EventKind::Terminate {
            agent: 0,
            node: Node(0),
        }));
        assert!(f.is_guarded(Node::ROOT));
        assert!(!f.is_contaminated(Node::ROOT));
    }
}
