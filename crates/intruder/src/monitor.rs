//! Online verification of a search run.
//!
//! A [`Monitor`] consumes the event stream of a run and checks the paper's
//! three defining requirements plus capture:
//!
//! * **Monotonicity** (Theorems 1 and 6): once decontaminated, a node is
//!   never recontaminated.
//! * **Contiguity** (§1.2): the decontaminated region stays connected and
//!   contains the homebase at every instant.
//! * **Coverage**: the run ends with every node clean or guarded.
//! * **Capture**: the explicit evader ends captured.

use hypersweep_topology::{Node, Topology};

use hypersweep_sim::{Event, EventSink};

use crate::contamination::ContaminationField;
use crate::evader::{CaptureStatus, EvaderPolicy, Intruder};

/// What to verify, and how exhaustively.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Check contiguity after every `k`-th event (`0` disables the check;
    /// `1` checks after each event). Contiguity costs an `O(n)` BFS.
    pub contiguity_every: u64,
    /// Track an explicit intruder starting from the given node.
    pub intruder_start: Option<Node>,
    /// Use the strong (greedy) evader rather than the lazy one.
    pub greedy_evader: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            contiguity_every: 1,
            intruder_start: None,
            greedy_evader: true,
        }
    }
}

impl MonitorConfig {
    /// Full verification with an intruder starting at `node`.
    pub fn with_intruder(node: Node) -> Self {
        MonitorConfig {
            intruder_start: Some(node),
            ..MonitorConfig::default()
        }
    }

    /// Cheap verification: monotonicity only.
    pub fn monotonicity_only() -> Self {
        MonitorConfig {
            contiguity_every: 0,
            intruder_start: None,
            greedy_evader: false,
        }
    }
}

/// A detected violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A decontaminated node was recontaminated.
    Recontamination {
        /// Event index at which it happened.
        at_event: u64,
        /// The node affected.
        node: Node,
    },
    /// The decontaminated region became disconnected (or lost the
    /// homebase).
    ContiguityBroken {
        /// Event index at which it was detected.
        at_event: u64,
    },
}

/// Final verdict over a run.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// No recontamination ever occurred.
    pub monotone: bool,
    /// The decontaminated region stayed connected throughout (vacuously
    /// true if the check was disabled).
    pub contiguous: bool,
    /// Every node ended decontaminated.
    pub all_clean: bool,
    /// Final intruder status (`None` if no intruder was tracked).
    pub capture: Option<CaptureStatus>,
    /// All violations, in order of detection.
    pub violations: Vec<Violation>,
    /// Events processed.
    pub events: u64,
}

impl Verdict {
    /// The run is a correct, complete, intruder-capturing search.
    pub fn is_complete(&self) -> bool {
        self.monotone
            && self.contiguous
            && self.all_clean
            && self.capture.map(|c| c.is_captured()).unwrap_or(true)
    }
}

/// Online auditor for a single run. Feed it every event via
/// [`Monitor::observe`], then take the [`Verdict`].
pub struct Monitor<'a, T: Topology + ?Sized> {
    topo: &'a T,
    field: ContaminationField<'a, T>,
    cfg: MonitorConfig,
    intruder: Option<Intruder>,
    violations: Vec<Violation>,
    recontaminations_seen: usize,
    contiguity_ok: bool,
}

impl<'a, T: Topology + ?Sized> Monitor<'a, T> {
    /// Start monitoring a search on `topo` from `homebase`.
    pub fn new(topo: &'a T, homebase: Node, cfg: MonitorConfig) -> Self {
        let field = ContaminationField::new(topo, homebase);
        let intruder = cfg.intruder_start.map(|start| {
            assert!(
                start != homebase,
                "the intruder cannot start on the homebase"
            );
            Intruder::new(
                start,
                if cfg.greedy_evader {
                    EvaderPolicy::Greedy
                } else {
                    EvaderPolicy::Lazy
                },
            )
        });
        Monitor {
            topo,
            field,
            cfg,
            intruder,
            violations: Vec::new(),
            recontaminations_seen: 0,
            contiguity_ok: true,
        }
    }

    /// Feed one event.
    pub fn observe(&mut self, event: &Event) {
        self.field.apply(event);
        let idx = self.field.events_applied();
        // Harvest any new recontaminations.
        let recs = self.field.recontaminations();
        while self.recontaminations_seen < recs.len() {
            let (at_event, node) = recs[self.recontaminations_seen];
            self.violations
                .push(Violation::Recontamination { at_event, node });
            self.recontaminations_seen += 1;
        }
        if self.cfg.contiguity_every > 0
            && idx % self.cfg.contiguity_every == 0
            && !self.field.is_contiguous()
        {
            self.contiguity_ok = false;
            self.violations
                .push(Violation::ContiguityBroken { at_event: idx });
        }
        if let Some(intruder) = &mut self.intruder {
            intruder.react(self.topo, &self.field, idx);
        }
    }

    /// Feed a whole trace.
    pub fn observe_all<'e>(&mut self, events: impl IntoIterator<Item = &'e Event>) {
        for e in events {
            self.observe(e);
        }
    }

    /// Access the underlying contamination field (e.g. for demos).
    pub fn field(&self) -> &ContaminationField<'a, T> {
        &self.field
    }

    /// Current intruder status, if tracked.
    pub fn intruder(&self) -> Option<&Intruder> {
        self.intruder.as_ref()
    }

    /// Conclude and produce the verdict.
    pub fn verdict(mut self) -> Verdict {
        // One final contiguity check regardless of sampling.
        let final_contig = if self.cfg.contiguity_every > 0 {
            self.contiguity_ok && self.field.is_contiguous()
        } else {
            true
        };
        Verdict {
            monotone: self.field.recontaminations().is_empty(),
            contiguous: final_contig,
            all_clean: self.field.all_clean(),
            capture: self.intruder.as_ref().map(|i| i.status()),
            violations: self.violations,
            events: self.field.events_applied(),
        }
    }
}

/// A [`Monitor`] is an [`EventSink`]: strategies can stream their trace
/// straight into the auditor without ever materializing a `Vec<Event>`.
/// Feeding a sink is exactly [`Monitor::observe`], so streamed verdicts
/// are identical to buffered ones.
impl<'a, T: Topology + ?Sized> EventSink for Monitor<'a, T> {
    fn emit(&mut self, event: Event) {
        self.observe(&event);
    }
}

/// Audit a complete trace in one call.
///
/// ```
/// use hypersweep_intruder::{verify_trace, MonitorConfig};
/// use hypersweep_sim::{Event, EventKind, Role};
/// use hypersweep_topology::{graph::Path, Node};
///
/// // One agent cleans a 3-node path end to end.
/// let path = Path::new(3);
/// let trace = vec![
///     Event { time: 0, kind: EventKind::Spawn { agent: 0, node: Node(0), role: Role::Worker } },
///     Event { time: 1, kind: EventKind::Move { agent: 0, from: Node(0), to: Node(1), role: Role::Worker } },
///     Event { time: 2, kind: EventKind::Move { agent: 0, from: Node(1), to: Node(2), role: Role::Worker } },
/// ];
/// let verdict = verify_trace(&path, Node(0), &trace, MonitorConfig::default());
/// assert!(verdict.monotone && verdict.contiguous && verdict.all_clean);
/// ```
pub fn verify_trace<T: Topology + ?Sized>(
    topo: &T,
    homebase: Node,
    events: &[Event],
    cfg: MonitorConfig,
) -> Verdict {
    let mut monitor = Monitor::new(topo, homebase, cfg);
    monitor.observe_all(events);
    monitor.verdict()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_sim::{EventKind, Role};
    use hypersweep_topology::Hypercube;

    fn spawn(agent: u32, node: u32) -> Event {
        Event {
            time: 0,
            kind: EventKind::Spawn {
                agent,
                node: Node(node),
                role: Role::Worker,
            },
        }
    }

    fn mv(agent: u32, from: u32, to: u32) -> Event {
        Event {
            time: 0,
            kind: EventKind::Move {
                agent,
                from: Node(from),
                to: Node(to),
                role: Role::Worker,
            },
        }
    }

    /// A correct hand-written search of H_2 with 2 agents + intruder.
    #[test]
    fn verdict_on_a_correct_h2_search() {
        let h = Hypercube::new(2);
        // 00 -> {01,10} -> 11. Agents: a0 holds, a1 tours.
        let trace = vec![
            spawn(0, 0),
            spawn(1, 0),
            spawn(2, 0),
            mv(1, 0b00, 0b01),
            mv(2, 0b00, 0b10),
            mv(0, 0b00, 0b01), // 00 vacated: neighbours 01,10 guarded → clean
            mv(0, 0b01, 0b11), // capture corner
        ];
        let verdict = verify_trace(
            &h,
            Node::ROOT,
            &trace,
            MonitorConfig::with_intruder(Node(3)),
        );
        assert!(verdict.monotone, "violations: {:?}", verdict.violations);
        assert!(verdict.contiguous);
        assert!(verdict.all_clean);
        assert!(verdict.capture.unwrap().is_captured());
        assert!(verdict.is_complete());
    }

    #[test]
    fn verdict_flags_recontamination() {
        let h = Hypercube::new(2);
        let trace = vec![spawn(0, 0), mv(0, 0, 1)];
        let verdict = verify_trace(&h, Node::ROOT, &trace, MonitorConfig::default());
        assert!(!verdict.monotone);
        assert!(!verdict.all_clean);
        assert!(!verdict.is_complete());
        assert!(matches!(
            verdict.violations[0],
            Violation::Recontamination { node: Node(0), .. }
        ));
    }

    #[test]
    fn incomplete_search_is_not_complete() {
        let h = Hypercube::new(2);
        let trace = vec![spawn(0, 0)];
        let verdict = verify_trace(&h, Node::ROOT, &trace, MonitorConfig::default());
        assert!(verdict.monotone);
        assert!(verdict.contiguous);
        assert!(!verdict.all_clean);
        assert!(!verdict.is_complete());
    }

    #[test]
    fn intruder_survives_incomplete_search() {
        let h = Hypercube::new(3);
        let trace = vec![spawn(0, 0), spawn(1, 0), mv(1, 0, 1)];
        let verdict = verify_trace(
            &h,
            Node::ROOT,
            &trace,
            MonitorConfig::with_intruder(Node(0b111)),
        );
        assert!(matches!(verdict.capture, Some(CaptureStatus::Free(_))));
        assert!(!verdict.is_complete());
    }

    #[test]
    fn contiguity_sampling_still_checks_at_the_end() {
        let h = Hypercube::new(2);
        // Illegal trace producing a split region.
        let trace = vec![spawn(0, 0), spawn(1, 3)];
        let cfg = MonitorConfig {
            contiguity_every: 1000, // sampled out during the run…
            ..MonitorConfig::default()
        };
        let verdict = verify_trace(&h, Node::ROOT, &trace, cfg);
        assert!(!verdict.contiguous, "…but the final check still fires");
    }
}
