//! Incremental connectivity over the decontaminated (clean ∪ guarded)
//! region.
//!
//! The paper's *contiguity* requirement (§1.2) asks, after every event,
//! whether the decontaminated region is connected and contains the
//! homebase. Re-deriving that with a whole-field BFS costs `O(d · n/64)`
//! words per query even word-parallel, which is what made packed audit
//! throughput decay superlinearly with the dimension (BENCH_audit.json:
//! 45M events/s at `d = 10`, 414k at `d = 16` — the periodic BFS dominated
//! everything else).
//!
//! A [`SafeForest`] instead *maintains* the connected components of the
//! safe region as events are applied:
//!
//! * **Insertions** (a node is decontaminated) are handled with a
//!   union-find (path-halving find, union by rank): the new node starts
//!   its own component and is unioned with each already-safe neighbour,
//!   `O(α · Δ)` per event. On the hypercube the caller enumerates
//!   neighbours by port flips, so the insert path allocates nothing, and
//!   the forest additionally records the *attachment port* — the port
//!   (`1..=d`) over which each node first touched the existing region — as
//!   one byte per node. The attachment ports form a spanning forest of the
//!   insertion order whose root-ward walks stay inside the safe region, a
//!   compact certificate that the differential tests cross-validate.
//! * **Deletions** (recontamination) can split components, which
//!   union-find cannot track incrementally; the forest instead marks
//!   itself *dirty* and is rebuilt from the contamination bitset on the
//!   next query. Monotone strategies never recontaminate, so correct runs
//!   never pay the rebuild; adversarial traces pay it at most once per
//!   query, which is no worse than the whole-field BFS they previously
//!   paid on *every* query.
//!
//! With the component count maintained, the contiguity oracle collapses to
//! two integer comparisons: `components == 1` and "the homebase is safe".

use hypersweep_topology::Node;

/// Attachment-port marker: the node is a root of its attachment tree (it
/// had no safe neighbour when it was decontaminated). Real ports are
/// `1..=d`.
pub const PORT_ROOT: u8 = 0;

/// Attachment-port marker: the node is not currently tracked as safe.
pub const PORT_NONE: u8 = u8::MAX;

/// Union-find over the safe region, with component counting, a dirty flag
/// for deletion-triggered rebuilds, and (on the hypercube) the per-node
/// attachment-port record.
#[derive(Clone, Debug)]
pub struct SafeForest {
    /// Union-find parent; `parent[i] == i` for component roots. Entries of
    /// nodes outside the region are stale and must not be consulted.
    parent: Vec<u32>,
    /// Union-by-rank heuristic.
    rank: Vec<u8>,
    /// Hypercube only (empty otherwise): the port over which each node
    /// attached to the region, [`PORT_ROOT`] for attachment roots,
    /// [`PORT_NONE`] outside the region.
    attach_port: Vec<u8>,
    /// Number of connected components among tracked nodes. Meaningless
    /// while [`SafeForest::is_dirty`].
    components: usize,
    /// Set when a tracked node was deleted; cleared by a rebuild.
    dirty: bool,
}

impl SafeForest {
    /// An empty forest over the universe `0..n`. `hypercube` enables the
    /// attachment-port record.
    pub fn new(n: usize, hypercube: bool) -> Self {
        SafeForest {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            attach_port: if hypercube {
                vec![PORT_NONE; n]
            } else {
                Vec::new()
            },
            components: 0,
            dirty: false,
        }
    }

    /// Reset to the empty forest over `0..n`, reusing allocations.
    pub fn reset(&mut self, n: usize, hypercube: bool) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.attach_port.clear();
        if hypercube {
            self.attach_port.resize(n, PORT_NONE);
        }
        self.components = 0;
        self.dirty = false;
    }

    /// Number of connected components among tracked (safe) nodes. Only
    /// meaningful when the forest is not dirty.
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Whether a deletion invalidated the structure (a rebuild is due).
    #[inline]
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// A tracked node was deleted: component structure is unknown until
    /// the next [`SafeForest::begin_rebuild`].
    #[inline]
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Start tracking `x` as its own singleton component.
    #[inline]
    pub fn add_node(&mut self, x: Node) {
        let i = x.index();
        self.parent[i] = x.0;
        self.rank[i] = 0;
        if !self.attach_port.is_empty() {
            self.attach_port[i] = PORT_ROOT;
        }
        self.components += 1;
    }

    /// Root of `x`'s component, with path halving.
    #[inline]
    pub fn find(&mut self, x: Node) -> Node {
        let mut i = x.index();
        loop {
            let p = self.parent[i] as usize;
            if p == i {
                return Node(i as u32);
            }
            let gp = self.parent[p];
            self.parent[i] = gp;
            i = gp as usize;
        }
    }

    /// Merge the components of `x` and `y`; returns whether they were
    /// distinct (and decrements the component count if so).
    pub fn union(&mut self, x: Node, y: Node) -> bool {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx.index()] >= self.rank[ry.index()] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo.index()] = hi.0;
        if self.rank[hi.index()] == self.rank[lo.index()] {
            self.rank[hi.index()] += 1;
        }
        self.components -= 1;
        true
    }

    /// Record that `x` first touched the region over `port` (hypercube
    /// only; no-op otherwise). Only the first attachment is kept, so the
    /// record stays a forest of the insertion order.
    #[inline]
    pub fn set_attach_port(&mut self, x: Node, port: u32) {
        if let Some(slot) = self.attach_port.get_mut(x.index()) {
            if *slot == PORT_ROOT {
                *slot = port as u8;
            }
        }
    }

    /// The recorded attachment port of `x`: `None` outside the region or
    /// on non-hypercube fabrics, `Some(0)` for attachment roots,
    /// `Some(1..=d)` otherwise.
    pub fn attach_port(&self, x: Node) -> Option<u32> {
        match self.attach_port.get(x.index()) {
            None | Some(&PORT_NONE) => None,
            Some(&p) => Some(u32::from(p)),
        }
    }

    /// Begin a rebuild: forget all components (tracked nodes are about to
    /// be re-added via [`SafeForest::add_node`] / [`SafeForest::adopt`])
    /// and clear the dirty flag.
    pub fn begin_rebuild(&mut self) {
        self.components = 0;
        self.dirty = false;
        for p in &mut self.attach_port {
            *p = PORT_NONE;
        }
    }

    /// Rebuild helper: place `x` directly under component root `root`
    /// (which must already be added) and record its attachment `port`,
    /// without touching the component count. Unlike
    /// [`SafeForest::set_attach_port`], the port is written
    /// unconditionally — after [`SafeForest::begin_rebuild`] every slot is
    /// [`PORT_NONE`] and the flood visits each node exactly once.
    #[inline]
    pub fn adopt(&mut self, x: Node, root: Node, port: u8) {
        self.parent[x.index()] = root.0;
        self.rank[x.index()] = 0;
        if !self.attach_port.is_empty() {
            self.attach_port[x.index()] = port;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions_track_components() {
        let mut f = SafeForest::new(8, false);
        assert_eq!(f.components(), 0);
        for i in 0..4 {
            f.add_node(Node(i));
        }
        assert_eq!(f.components(), 4);
        assert!(f.union(Node(0), Node(1)));
        assert!(f.union(Node(2), Node(3)));
        assert_eq!(f.components(), 2);
        assert!(!f.union(Node(1), Node(0)), "already merged");
        assert!(f.union(Node(1), Node(3)));
        assert_eq!(f.components(), 1);
        assert_eq!(f.find(Node(0)), f.find(Node(3)));
    }

    #[test]
    fn dirty_flag_survives_until_rebuild() {
        let mut f = SafeForest::new(4, true);
        f.add_node(Node(0));
        f.add_node(Node(1));
        f.set_attach_port(Node(1), 1);
        assert_eq!(f.attach_port(Node(1)), Some(1));
        assert_eq!(f.attach_port(Node(2)), None);
        f.mark_dirty();
        assert!(f.is_dirty());
        f.begin_rebuild();
        assert!(!f.is_dirty());
        assert_eq!(f.components(), 0);
        assert_eq!(f.attach_port(Node(1)), None, "rebuild clears attachments");
    }

    #[test]
    fn attach_port_keeps_the_first_attachment() {
        let mut f = SafeForest::new(4, true);
        f.add_node(Node(2));
        f.set_attach_port(Node(2), 3);
        f.set_attach_port(Node(2), 1);
        assert_eq!(f.attach_port(Node(2)), Some(3));
    }

    #[test]
    fn reset_reuses_the_forest_for_a_new_universe() {
        let mut f = SafeForest::new(4, true);
        f.add_node(Node(0));
        f.mark_dirty();
        f.reset(8, false);
        assert_eq!(f.components(), 0);
        assert!(!f.is_dirty());
        assert_eq!(f.attach_port(Node(0)), None);
        f.add_node(Node(7));
        assert_eq!(f.find(Node(7)), Node(7));
    }
}
