//! Contamination semantics, monitors, and the evading intruder.
//!
//! The paper argues correctness (Theorems 1 and 6) on paper; this crate
//! *checks* it mechanically on every run. It consumes the linearized event
//! stream produced by the `hypersweep-sim` executors (or synthesized by the
//! fast strategy paths) and maintains the true contamination state of §2:
//!
//! * a node is **guarded** while an agent occupies it;
//! * a node is **clean** if it has been visited and no contaminated path
//!   reaches it;
//! * contamination **spreads**: whenever a node is vacated, contamination
//!   flows into it from any contaminated neighbour and cascades through
//!   unguarded nodes (the intruder is arbitrarily fast).
//!
//! On top of the state it verifies the three defining properties of the
//! paper's problem — *monotonicity* (a clean node is never recontaminated),
//! *contiguity* (the decontaminated region stays connected and contains the
//! homebase) and *coverage* (everything ends clean) — and embodies the
//! intruder as an explicit worst-case evader whose capture concludes a
//! successful search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod contamination;
pub mod evader;
pub mod film;
pub mod monitor;

pub use connectivity::SafeForest;
pub use contamination::{ContaminationField, FieldScratch};
pub use evader::{CaptureStatus, EvaderPolicy, Intruder};
pub use film::{render_film, render_state, Frame};
pub use monitor::{verify_trace, Monitor, MonitorConfig, Verdict, Violation};
