//! Frame-by-frame visualization of a search.
//!
//! Replays a trace through the ground-truth contamination field and renders
//! the state after selected events as compact text frames — the nodes of a
//! hypercube grouped by level, one status glyph each:
//!
//! * `●` guarded (an agent is present)
//! * `·` clean
//! * `▒` contaminated
//! * `☠` the intruder's current position
//!
//! Useful for demos (`hypersweep watch`) and for debugging strategies: a
//! recontamination shows up as a `·` flipping back to `▒`.

use hypersweep_sim::Event;
use hypersweep_topology::{Hypercube, Node};

use crate::contamination::ContaminationField;
use crate::evader::{CaptureStatus, EvaderPolicy, Intruder};

/// One rendered frame plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Events applied so far.
    pub events_applied: u64,
    /// Contaminated nodes remaining.
    pub contaminated: usize,
    /// The rendered text.
    pub text: String,
}

/// Render the film of `events` on `cube`, emitting a frame every `stride`
/// events (and always the final frame). An intruder starting at `start`
/// (if given) is tracked with the greedy evader.
pub fn render_film(
    cube: Hypercube,
    events: &[Event],
    stride: usize,
    intruder_start: Option<Node>,
) -> Vec<Frame> {
    assert!(stride >= 1);
    let mut field = ContaminationField::new(&cube, Node::ROOT);
    let mut evader = intruder_start.map(|s| Intruder::new(s, EvaderPolicy::Greedy));
    let mut frames = Vec::new();
    for (i, e) in events.iter().enumerate() {
        field.apply(e);
        if let Some(ev) = evader.as_mut() {
            ev.react(&cube, &field, field.events_applied());
        }
        let last = i + 1 == events.len();
        if (i + 1) % stride == 0 || last {
            frames.push(Frame {
                events_applied: field.events_applied(),
                contaminated: field.contaminated_count(),
                text: render_state(cube, &field, evader.as_ref()),
            });
        }
    }
    frames
}

/// Render the current state grouped by level.
pub fn render_state(
    cube: Hypercube,
    field: &ContaminationField<'_, Hypercube>,
    evader: Option<&Intruder>,
) -> String {
    let d = cube.dim();
    let intruder_at = evader.and_then(|e| match e.status() {
        CaptureStatus::Free(n) => Some(n),
        CaptureStatus::Captured { .. } => None,
    });
    let mut out = String::new();
    for l in 0..=d {
        out.push_str(&format!("level {l}: "));
        for x in cube.level_nodes(l) {
            let glyph = if intruder_at == Some(x) {
                '☠'
            } else if field.is_guarded(x) {
                '●'
            } else if field.is_clean(x) {
                '·'
            } else {
                '▒'
            };
            out.push(glyph);
        }
        out.push('\n');
    }
    match evader.map(|e| e.status()) {
        Some(CaptureStatus::Captured { node, at_event }) => {
            out.push_str(&format!(
                "intruder captured at {} (event {at_event})\n",
                node.bitstring(d)
            ));
        }
        Some(CaptureStatus::Free(n)) => {
            out.push_str(&format!("intruder at {}\n", n.bitstring(d)));
        }
        None => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_sim::{EventKind, Role};

    fn demo_events() -> Vec<Event> {
        vec![
            Event {
                time: 0,
                kind: EventKind::Spawn {
                    agent: 0,
                    node: Node::ROOT,
                    role: Role::Worker,
                },
            },
            Event {
                time: 1,
                kind: EventKind::Move {
                    agent: 0,
                    from: Node::ROOT,
                    to: Node(1),
                    role: Role::Worker,
                },
            },
        ]
    }

    #[test]
    fn film_emits_frames_at_stride_and_end() {
        let cube = Hypercube::new(2);
        let frames = render_film(cube, &demo_events(), 1, None);
        assert_eq!(frames.len(), 2);
        assert!(frames[0].text.contains("level 0: ●"));
        // After the move the root is recontaminated (neighbour 2 dirty).
        assert!(frames[1].text.contains("level 0: ▒"));
    }

    #[test]
    fn film_final_frame_of_a_full_search_is_all_clean_or_guarded() {
        let cube = Hypercube::new(3);
        // Use the visibility strategy's synthesized trace through the
        // public core crate is a cyclic dep; emit a hand trace instead:
        // flood-like: fill every node through the broadcast tree.
        let mut events = Vec::new();
        for a in 0..8u32 {
            events.push(Event {
                time: 0,
                kind: EventKind::Spawn {
                    agent: a,
                    node: Node::ROOT,
                    role: Role::Worker,
                },
            });
        }
        // Walk each agent to its personal target along ascending bit paths.
        for a in 1..8u32 {
            let target = Node(a);
            let mut pos = Node::ROOT;
            for p in 1..=3 {
                if target.bit(p) {
                    let to = Node(pos.0 | (1 << (p - 1)));
                    events.push(Event {
                        time: 0,
                        kind: EventKind::Move {
                            agent: a,
                            from: pos,
                            to,
                            role: Role::Worker,
                        },
                    });
                    pos = to;
                }
            }
        }
        let frames = render_film(cube, &events, 4, Some(Node(7)));
        let last = frames.last().unwrap();
        assert_eq!(last.contaminated, 0);
        assert!(!last.text.contains('▒'));
        assert!(last.text.contains("captured"));
    }

    #[test]
    fn intruder_glyph_appears_while_free() {
        let cube = Hypercube::new(2);
        let frames = render_film(cube, &demo_events()[..1], 1, Some(Node(3)));
        assert!(frames[0].text.contains('☠'));
    }
}
