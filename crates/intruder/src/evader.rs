//! The intruder: an explicit, arbitrarily fast, omniscient evader.
//!
//! §1.1: "the intruder moves as if it can see the whereabouts of the team
//! of agents, thus avoiding them as much as possible"; it "has the
//! capability of escaping arbitrarily fast". We realize this by letting the
//! intruder relocate *after every atomic event* anywhere within its current
//! contaminated component. It is detected (captured) exactly when that
//! component is extinguished.

use std::collections::VecDeque;

use hypersweep_topology::{Node, Topology};

use crate::contamination::ContaminationField;

/// Where the intruder stands, or when it was captured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureStatus {
    /// Still at large on the given node.
    Free(Node),
    /// Captured: its contaminated component vanished.
    Captured {
        /// Index of the event whose application captured it.
        at_event: u64,
        /// The last node it occupied.
        node: Node,
    },
}

impl CaptureStatus {
    /// Whether the intruder has been captured.
    pub fn is_captured(&self) -> bool {
        matches!(self, CaptureStatus::Captured { .. })
    }
}

/// Relocation policy of the evader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvaderPolicy {
    /// Move only when the current node stops being contaminated, to an
    /// arbitrary (lowest-id) contaminated neighbour.
    Lazy,
    /// After every event, relocate within the contaminated component to a
    /// node maximizing the BFS distance from the nearest agent —
    /// the strongest heuristic evader (ties broken by lowest id).
    Greedy,
}

/// The evading intruder.
#[derive(Clone, Debug)]
pub struct Intruder {
    status: CaptureStatus,
    policy: EvaderPolicy,
    /// Nodes visited while fleeing (for demos and tests).
    trail: Vec<Node>,
}

impl Intruder {
    /// Drop the intruder on `start` (it must be contaminated at the time —
    /// i.e. anywhere except the homebase before the first event).
    pub fn new(start: Node, policy: EvaderPolicy) -> Self {
        Intruder {
            status: CaptureStatus::Free(start),
            policy,
            trail: vec![start],
        }
    }

    /// Current status.
    pub fn status(&self) -> CaptureStatus {
        self.status
    }

    /// The sequence of nodes occupied.
    pub fn trail(&self) -> &[Node] {
        &self.trail
    }

    /// React to the world after one event has been applied to `field`.
    /// `event_index` is the number of events applied so far.
    pub fn react<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        field: &ContaminationField<'_, T>,
        event_index: u64,
    ) {
        let CaptureStatus::Free(pos) = self.status else {
            return;
        };
        if field.is_contaminated(pos) {
            if self.policy == EvaderPolicy::Greedy {
                if let Some(best) = self.best_in_component(topo, field, pos) {
                    if best != pos {
                        self.status = CaptureStatus::Free(best);
                        self.trail.push(best);
                    }
                }
            }
            return;
        }
        // The node was just decontaminated. Being arbitrarily fast, the
        // intruder slips to a contaminated neighbour "just before" the
        // agent arrives — if one exists.
        let mut nbrs = Vec::new();
        topo.neighbors_into(pos, &mut nbrs);
        let escape = match self.policy {
            EvaderPolicy::Lazy => nbrs.iter().copied().find(|&y| field.is_contaminated(y)),
            EvaderPolicy::Greedy => nbrs
                .iter()
                .copied()
                .filter(|&y| field.is_contaminated(y))
                .min() // enter the component, then optimize inside it
                .map(|entry| self.best_in_component(topo, field, entry).unwrap_or(entry)),
        };
        match escape {
            Some(to) => {
                self.status = CaptureStatus::Free(to);
                self.trail.push(to);
            }
            None => {
                self.status = CaptureStatus::Captured {
                    at_event: event_index,
                    node: pos,
                };
            }
        }
    }

    /// Within the contaminated component of `from`, find the node
    /// maximizing the distance from the nearest guarded node (multi-source
    /// BFS over the whole graph), ties broken by lowest id.
    fn best_in_component<T: Topology + ?Sized>(
        &self,
        topo: &T,
        field: &ContaminationField<'_, T>,
        from: Node,
    ) -> Option<Node> {
        let n = topo.node_count();
        // Multi-source BFS from guards over all nodes.
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for (i, slot) in dist.iter_mut().enumerate() {
            if field.is_guarded(Node(i as u32)) {
                *slot = 0;
                queue.push_back(Node(i as u32));
            }
        }
        let mut nbrs = Vec::new();
        while let Some(x) = queue.pop_front() {
            topo.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if dist[y.index()] == u32::MAX {
                    dist[y.index()] = dist[x.index()] + 1;
                    queue.push_back(y);
                }
            }
        }
        // BFS of the contaminated component of `from`.
        let mut best: Option<(u32, Node)> = None;
        let mut seen = vec![false; n];
        let mut comp = VecDeque::new();
        seen[from.index()] = true;
        comp.push_back(from);
        while let Some(x) = comp.pop_front() {
            let dx = dist[x.index()];
            best = match best {
                None => Some((dx, x)),
                Some((bd, bn)) => {
                    if dx > bd || (dx == bd && x < bn) {
                        Some((dx, x))
                    } else {
                        Some((bd, bn))
                    }
                }
            };
            topo.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if !seen[y.index()] && field.is_contaminated(y) {
                    seen[y.index()] = true;
                    comp.push_back(y);
                }
            }
        }
        best.map(|(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_sim::{Event, EventKind, Role};
    use hypersweep_topology::graph::Path;
    use hypersweep_topology::Hypercube;

    fn spawn(agent: u32, node: u32) -> Event {
        Event {
            time: 0,
            kind: EventKind::Spawn {
                agent,
                node: Node(node),
                role: Role::Worker,
            },
        }
    }

    fn mv(agent: u32, from: u32, to: u32) -> Event {
        Event {
            time: 0,
            kind: EventKind::Move {
                agent,
                from: Node(from),
                to: Node(to),
                role: Role::Worker,
            },
        }
    }

    #[test]
    fn intruder_flees_along_a_path_and_is_cornered() {
        // Path 0-1-2-3, agents sweep left to right with two agents — the
        // intruder retreats to 3 and is captured when 3 is taken.
        let p = Path::new(4);
        let mut field = ContaminationField::new(&p, Node(0));
        let mut evader = Intruder::new(Node(3), EvaderPolicy::Greedy);
        let script = [
            spawn(0, 0),
            spawn(1, 0),
            mv(1, 0, 1),
            mv(0, 0, 1),
            mv(1, 1, 2),
            mv(0, 1, 2),
            mv(1, 2, 3),
        ];
        for e in &script {
            field.apply(e);
            evader.react(&p, &field, field.events_applied());
        }
        assert!(field.all_clean());
        match evader.status() {
            CaptureStatus::Captured { node, .. } => assert_eq!(node, Node(3)),
            s => panic!("expected capture, got {s:?}"),
        }
    }

    #[test]
    fn greedy_evader_keeps_distance() {
        let h = Hypercube::new(3);
        let mut field = ContaminationField::new(&h, Node::ROOT);
        let mut evader = Intruder::new(Node(0b111), EvaderPolicy::Greedy);
        field.apply(&spawn(0, 0));
        evader.react(&h, &field, 1);
        // Guard at 000; farthest contaminated node is 111.
        assert_eq!(evader.status(), CaptureStatus::Free(Node(0b111)));
    }

    #[test]
    fn lazy_evader_moves_only_when_forced() {
        let p = Path::new(3);
        let mut field = ContaminationField::new(&p, Node(0));
        let mut evader = Intruder::new(Node(1), EvaderPolicy::Lazy);
        field.apply(&spawn(0, 0));
        evader.react(&p, &field, 1);
        assert_eq!(evader.status(), CaptureStatus::Free(Node(1)));
        field.apply(&spawn(1, 0));
        field.apply(&mv(1, 0, 1));
        evader.react(&p, &field, 3);
        // 1 became guarded; the only contaminated neighbour is 2.
        assert_eq!(evader.status(), CaptureStatus::Free(Node(2)));
    }

    #[test]
    fn captured_status_is_terminal() {
        let p = Path::new(2);
        let mut field = ContaminationField::new(&p, Node(0));
        let mut evader = Intruder::new(Node(1), EvaderPolicy::Lazy);
        field.apply(&spawn(0, 0));
        field.apply(&spawn(1, 0));
        field.apply(&mv(1, 0, 1));
        evader.react(&p, &field, 3);
        assert!(evader.status().is_captured());
        // Further reactions do nothing.
        evader.react(&p, &field, 4);
        assert!(evader.status().is_captured());
    }
}
