//! Property test: the packed, word-parallel [`ContaminationField`] agrees
//! state-for-state with a naive `Vec<bool>` reference implementation of the
//! adversarial contamination semantics — including vacate-triggered
//! recontamination cascades and `is_contiguous` verdicts.
//!
//! Traces are generated interpretively: a vector of random draws is decoded
//! into spawns (possibly on disconnected nodes, which exercises the
//! contiguity check) and moves of already-spawned agents along random
//! ports, so every `Move` leaves a node the agent actually occupies.

use std::collections::VecDeque;

use hypersweep_intruder::ContaminationField;
use hypersweep_sim::{Event, EventKind, Role};
use hypersweep_topology::{Hypercube, Node, Topology};

use proptest::prelude::*;

/// The obviously-correct reference: per-node `Vec<bool>` state and
/// per-node BFS for spread and contiguity.
struct ReferenceField<'a> {
    cube: &'a Hypercube,
    contaminated: Vec<bool>,
    occupancy: Vec<u32>,
    homebase: Node,
    events_applied: u64,
    recontaminations: Vec<(u64, Node)>,
}

impl<'a> ReferenceField<'a> {
    fn new(cube: &'a Hypercube, homebase: Node) -> Self {
        ReferenceField {
            cube,
            contaminated: vec![true; cube.node_count()],
            occupancy: vec![0; cube.node_count()],
            homebase,
            events_applied: 0,
            recontaminations: Vec::new(),
        }
    }

    fn neighbors(&self, x: Node) -> Vec<Node> {
        let mut nbrs = Vec::new();
        self.cube.neighbors_into(x, &mut nbrs);
        nbrs
    }

    fn occupy(&mut self, x: Node) {
        self.occupancy[x.index()] += 1;
        self.contaminated[x.index()] = false;
    }

    fn maybe_recontaminate(&mut self, x: Node) {
        if self.contaminated[x.index()] || self.occupancy[x.index()] > 0 {
            return;
        }
        if !self
            .neighbors(x)
            .iter()
            .any(|&y| self.contaminated[y.index()])
        {
            return;
        }
        // Flood through every unguarded, currently-safe node.
        let mut queue = VecDeque::new();
        self.contaminated[x.index()] = true;
        self.recontaminations.push((self.events_applied, x));
        queue.push_back(x);
        while let Some(u) = queue.pop_front() {
            for y in self.neighbors(u) {
                if !self.contaminated[y.index()] && self.occupancy[y.index()] == 0 {
                    self.contaminated[y.index()] = true;
                    self.recontaminations.push((self.events_applied, y));
                    queue.push_back(y);
                }
            }
        }
    }

    fn apply(&mut self, event: &Event) {
        self.events_applied += 1;
        match event.kind {
            EventKind::Spawn { node, .. } => self.occupy(node),
            EventKind::Move { from, to, .. } => {
                self.occupy(to);
                self.occupancy[from.index()] -= 1;
                if self.occupancy[from.index()] == 0 {
                    self.maybe_recontaminate(from);
                }
            }
            EventKind::CloneSpawn { to, .. } => self.occupy(to),
            EventKind::Terminate { .. } => {}
        }
    }

    fn is_contiguous(&self) -> bool {
        let safe_total = self.contaminated.iter().filter(|&&c| !c).count();
        if safe_total == 0 {
            return true;
        }
        if self.contaminated[self.homebase.index()] {
            return false;
        }
        let mut seen = vec![false; self.cube.node_count()];
        let mut queue = VecDeque::new();
        seen[self.homebase.index()] = true;
        queue.push_back(self.homebase);
        let mut count = 1usize;
        while let Some(x) = queue.pop_front() {
            for y in self.neighbors(x) {
                if !self.contaminated[y.index()] && !seen[y.index()] {
                    seen[y.index()] = true;
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        count == safe_total
    }

    /// Connected components of the safe region, counted by repeated BFS.
    fn clean_components(&self) -> usize {
        let mut seen = vec![false; self.cube.node_count()];
        let mut queue = VecDeque::new();
        let mut components = 0;
        for i in 0..self.cube.node_count() {
            if self.contaminated[i] || seen[i] {
                continue;
            }
            components += 1;
            seen[i] = true;
            queue.push_back(Node(i as u32));
            while let Some(x) = queue.pop_front() {
                for y in self.neighbors(x) {
                    if !self.contaminated[y.index()] && !seen[y.index()] {
                        seen[y.index()] = true;
                        queue.push_back(y);
                    }
                }
            }
        }
        components
    }

    /// Whether some clean, unguarded node borders contamination.
    fn has_unguarded_frontier(&self) -> bool {
        (0..self.cube.node_count()).any(|i| {
            !self.contaminated[i]
                && self.occupancy[i] == 0
                && self
                    .neighbors(Node(i as u32))
                    .iter()
                    .any(|&y| self.contaminated[y.index()])
        })
    }
}

/// Decode random draws into a well-formed trace on `H_d`: draw 0 spawns a
/// new agent (at the homebase, or — with low probability — anywhere, to
/// force split safe regions), other draws move an existing agent across a
/// random port.
fn decode_trace(d: u32, draws: &[u64]) -> Vec<Event> {
    let n = 1usize << d;
    let mut positions: Vec<Node> = Vec::new();
    let mut events = Vec::new();
    for (i, &draw) in draws.iter().enumerate() {
        let time = i as u64;
        let spawn = positions.is_empty() || draw % 5 == 0;
        if spawn {
            let node = if draw % 11 == 0 {
                Node((draw / 16) as u32 % n as u32) // an island spawn
            } else {
                Node(0)
            };
            events.push(Event {
                time,
                kind: EventKind::Spawn {
                    agent: positions.len() as u32,
                    node,
                    role: Role::Worker,
                },
            });
            positions.push(node);
        } else {
            let a = (draw / 8) as usize % positions.len();
            let port = 1 + ((draw / 64) as u32 % d);
            let from = positions[a];
            let to = from.flip(port);
            events.push(Event {
                time,
                kind: EventKind::Move {
                    agent: a as u32,
                    from,
                    to,
                    role: Role::Worker,
                },
            });
            positions[a] = to;
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_field_matches_reference_on_random_traces(
        d in 1u32..=6,
        draws in collection::vec(0u64..u64::MAX, 1..120usize),
    ) {
        let cube = Hypercube::new(d);
        let events = decode_trace(d, &draws);
        let mut packed = ContaminationField::new(&cube, Node::ROOT);
        let mut reference = ReferenceField::new(&cube, Node::ROOT);
        for (i, event) in events.iter().enumerate() {
            packed.apply(event);
            reference.apply(event);
            for x in cube.nodes() {
                prop_assert_eq!(
                    packed.is_contaminated(x),
                    reference.contaminated[x.index()],
                    "event {}: node {} contamination diverged", i, x.index()
                );
            }
            prop_assert_eq!(
                packed.contaminated_count(),
                reference.contaminated.iter().filter(|&&c| c).count(),
                "event {}: dirty count diverged", i
            );
            prop_assert_eq!(packed.occupancy(), &reference.occupancy[..]);
            prop_assert_eq!(
                packed.is_contiguous(),
                reference.is_contiguous(),
                "event {}: contiguity verdict diverged", i
            );
            prop_assert_eq!(
                packed.is_contiguous(),
                packed.is_contiguous_bfs(),
                "event {}: incremental and retained-BFS contiguity diverged", i
            );
            prop_assert_eq!(
                packed.clean_components(),
                reference.clean_components(),
                "event {}: component count diverged", i
            );
            prop_assert_eq!(
                packed.unguarded_frontier().is_some(),
                reference.has_unguarded_frontier(),
                "event {}: maintained frontier diverged from reference", i
            );
            prop_assert_eq!(
                packed.unguarded_frontier().is_some(),
                packed.unguarded_frontier_scan().is_some(),
                "event {}: maintained frontier diverged from the scan", i
            );
        }
        // The word-parallel flood pushes each cascade wave in ascending
        // node order, the reference BFS in queue order: compare the
        // recontamination incidents as sorted multisets.
        let mut a = packed.recontaminations().to_vec();
        let mut b = reference.recontaminations.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "recontamination incidents diverged");
    }
}
