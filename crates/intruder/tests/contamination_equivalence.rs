//! Property test: the packed, word-parallel [`ContaminationField`] agrees
//! state-for-state with a naive `Vec<bool>` reference implementation of the
//! adversarial contamination semantics — including vacate-triggered
//! recontamination cascades and `is_contiguous` verdicts.
//!
//! Traces are generated interpretively: a vector of random draws is decoded
//! into spawns (possibly on disconnected nodes, which exercises the
//! contiguity check) and moves of already-spawned agents along random
//! ports, so every `Move` leaves a node the agent actually occupies.

use std::collections::VecDeque;

use hypersweep_intruder::ContaminationField;
use hypersweep_sim::{Event, EventKind, Role};
use hypersweep_topology::{Hypercube, Node, Topology};

use proptest::prelude::*;

/// The obviously-correct reference: per-node `Vec<bool>` state and
/// per-node BFS for spread and contiguity. Written against any
/// [`Topology`] so the same reference checks the word-parallel hypercube
/// kernels *and* the generic-graph paths (rings, tori, cube-connected
/// cycles, de Bruijn graphs, partial grids).
struct ReferenceField<'a> {
    topo: &'a dyn Topology,
    contaminated: Vec<bool>,
    occupancy: Vec<u32>,
    homebase: Node,
    events_applied: u64,
    recontaminations: Vec<(u64, Node)>,
}

impl<'a> ReferenceField<'a> {
    fn new(topo: &'a dyn Topology, homebase: Node) -> Self {
        ReferenceField {
            topo,
            contaminated: vec![true; topo.node_count()],
            occupancy: vec![0; topo.node_count()],
            homebase,
            events_applied: 0,
            recontaminations: Vec::new(),
        }
    }

    fn neighbors(&self, x: Node) -> Vec<Node> {
        let mut nbrs = Vec::new();
        self.topo.neighbors_into(x, &mut nbrs);
        nbrs
    }

    fn occupy(&mut self, x: Node) {
        self.occupancy[x.index()] += 1;
        self.contaminated[x.index()] = false;
    }

    fn maybe_recontaminate(&mut self, x: Node) {
        if self.contaminated[x.index()] || self.occupancy[x.index()] > 0 {
            return;
        }
        if !self
            .neighbors(x)
            .iter()
            .any(|&y| self.contaminated[y.index()])
        {
            return;
        }
        // Flood through every unguarded, currently-safe node.
        let mut queue = VecDeque::new();
        self.contaminated[x.index()] = true;
        self.recontaminations.push((self.events_applied, x));
        queue.push_back(x);
        while let Some(u) = queue.pop_front() {
            for y in self.neighbors(u) {
                if !self.contaminated[y.index()] && self.occupancy[y.index()] == 0 {
                    self.contaminated[y.index()] = true;
                    self.recontaminations.push((self.events_applied, y));
                    queue.push_back(y);
                }
            }
        }
    }

    fn apply(&mut self, event: &Event) {
        self.events_applied += 1;
        match event.kind {
            EventKind::Spawn { node, .. } => self.occupy(node),
            EventKind::Move { from, to, .. } => {
                self.occupy(to);
                self.occupancy[from.index()] -= 1;
                if self.occupancy[from.index()] == 0 {
                    self.maybe_recontaminate(from);
                }
            }
            EventKind::CloneSpawn { to, .. } => self.occupy(to),
            EventKind::Terminate { .. } => {}
        }
    }

    fn is_contiguous(&self) -> bool {
        let safe_total = self.contaminated.iter().filter(|&&c| !c).count();
        if safe_total == 0 {
            return true;
        }
        if self.contaminated[self.homebase.index()] {
            return false;
        }
        let mut seen = vec![false; self.topo.node_count()];
        let mut queue = VecDeque::new();
        seen[self.homebase.index()] = true;
        queue.push_back(self.homebase);
        let mut count = 1usize;
        while let Some(x) = queue.pop_front() {
            for y in self.neighbors(x) {
                if !self.contaminated[y.index()] && !seen[y.index()] {
                    seen[y.index()] = true;
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        count == safe_total
    }

    /// Connected components of the safe region, counted by repeated BFS.
    fn clean_components(&self) -> usize {
        let mut seen = vec![false; self.topo.node_count()];
        let mut queue = VecDeque::new();
        let mut components = 0;
        for i in 0..self.topo.node_count() {
            if self.contaminated[i] || seen[i] {
                continue;
            }
            components += 1;
            seen[i] = true;
            queue.push_back(Node(i as u32));
            while let Some(x) = queue.pop_front() {
                for y in self.neighbors(x) {
                    if !self.contaminated[y.index()] && !seen[y.index()] {
                        seen[y.index()] = true;
                        queue.push_back(y);
                    }
                }
            }
        }
        components
    }

    /// Whether some clean, unguarded node borders contamination.
    fn has_unguarded_frontier(&self) -> bool {
        (0..self.topo.node_count()).any(|i| {
            !self.contaminated[i]
                && self.occupancy[i] == 0
                && self
                    .neighbors(Node(i as u32))
                    .iter()
                    .any(|&y| self.contaminated[y.index()])
        })
    }
}

/// Decode random draws into a well-formed trace on `H_d`: draw 0 spawns a
/// new agent (at the homebase, or — with low probability — anywhere, to
/// force split safe regions), other draws move an existing agent across a
/// random port.
fn decode_trace(d: u32, draws: &[u64]) -> Vec<Event> {
    let n = 1usize << d;
    let mut positions: Vec<Node> = Vec::new();
    let mut events = Vec::new();
    for (i, &draw) in draws.iter().enumerate() {
        let time = i as u64;
        let spawn = positions.is_empty() || draw % 5 == 0;
        if spawn {
            let node = if draw % 11 == 0 {
                Node((draw / 16) as u32 % n as u32) // an island spawn
            } else {
                Node(0)
            };
            events.push(Event {
                time,
                kind: EventKind::Spawn {
                    agent: positions.len() as u32,
                    node,
                    role: Role::Worker,
                },
            });
            positions.push(node);
        } else {
            let a = (draw / 8) as usize % positions.len();
            let port = 1 + ((draw / 64) as u32 % d);
            let from = positions[a];
            let to = from.flip(port);
            events.push(Event {
                time,
                kind: EventKind::Move {
                    agent: a as u32,
                    from,
                    to,
                    role: Role::Worker,
                },
            });
            positions[a] = to;
        }
    }
    events
}

/// Decode random draws into a trace on any topology: like
/// [`decode_trace`], but moves pick a random *neighbour index* instead of
/// a hypercube port, so the same interpreter drives rings, tori,
/// cube-connected cycles, de Bruijn graphs, and partial grids.
fn decode_trace_generic(topo: &dyn Topology, homebase: Node, draws: &[u64]) -> Vec<Event> {
    let n = topo.node_count();
    let mut positions: Vec<Node> = Vec::new();
    let mut events = Vec::new();
    let mut nbrs = Vec::new();
    for (i, &draw) in draws.iter().enumerate() {
        let time = i as u64;
        let spawn = positions.is_empty() || draw % 5 == 0;
        if spawn {
            let node = if draw % 11 == 0 {
                Node((draw / 16) as u32 % n as u32) // an island spawn
            } else {
                homebase
            };
            events.push(Event {
                time,
                kind: EventKind::Spawn {
                    agent: positions.len() as u32,
                    node,
                    role: Role::Worker,
                },
            });
            positions.push(node);
        } else {
            let a = (draw / 8) as usize % positions.len();
            let from = positions[a];
            topo.neighbors_into(from, &mut nbrs);
            let to = nbrs[(draw / 64) as usize % nbrs.len()];
            events.push(Event {
                time,
                kind: EventKind::Move {
                    agent: a as u32,
                    from,
                    to,
                    role: Role::Worker,
                },
            });
            positions[a] = to;
        }
    }
    events
}

/// Run a decoded trace through both fields, comparing the full state after
/// every event — contamination bits, dirty counts, occupancy, contiguity
/// (incremental *and* retained BFS, which drives the rebuild floods),
/// component counts, and both frontier oracles.
fn assert_equivalent(topo: &dyn Topology, homebase: Node, events: &[Event]) -> Result<(), String> {
    let mut packed = ContaminationField::new(topo, homebase);
    let mut reference = ReferenceField::new(topo, homebase);
    for (i, event) in events.iter().enumerate() {
        packed.apply(event);
        reference.apply(event);
        for x in 0..topo.node_count() as u32 {
            prop_assert_eq!(
                packed.is_contaminated(Node(x)),
                reference.contaminated[x as usize],
                "event {}: node {} contamination diverged",
                i,
                x
            );
        }
        prop_assert_eq!(
            packed.contaminated_count(),
            reference.contaminated.iter().filter(|&&c| c).count(),
            "event {}: dirty count diverged",
            i
        );
        prop_assert_eq!(packed.occupancy(), &reference.occupancy[..]);
        prop_assert_eq!(
            packed.is_contiguous(),
            reference.is_contiguous(),
            "event {}: contiguity verdict diverged",
            i
        );
        prop_assert_eq!(
            packed.is_contiguous(),
            packed.is_contiguous_bfs(),
            "event {}: incremental and retained-BFS contiguity diverged",
            i
        );
        prop_assert_eq!(
            packed.clean_components(),
            reference.clean_components(),
            "event {}: component count diverged",
            i
        );
        prop_assert_eq!(
            packed.unguarded_frontier().is_some(),
            reference.has_unguarded_frontier(),
            "event {}: maintained frontier diverged from reference",
            i
        );
        prop_assert_eq!(
            packed.unguarded_frontier().is_some(),
            packed.unguarded_frontier_scan().is_some(),
            "event {}: maintained frontier diverged from the scan",
            i
        );
    }
    let mut a = packed.recontaminations().to_vec();
    let mut b = reference.recontaminations;
    a.sort_unstable();
    b.sort_unstable();
    prop_assert_eq!(a, b, "recontamination incidents diverged");
    Ok(())
}

/// The non-hypercube fabrics the differential battery sweeps. Universe
/// sizes are deliberately not multiples of 256 so the widened bulk ops see
/// ragged tails.
fn alt_topology(pick: usize) -> (Box<dyn Topology>, Node) {
    use hypersweep_topology::graph::{CubeConnectedCycles, DeBruijn, Ring, Torus};
    use hypersweep_topology::grid::PartialGrid;
    match pick % 5 {
        0 => (Box::new(Ring::new(21)), Node(0)),
        1 => (Box::new(Torus::new(5, 7)), Node(0)),
        2 => (Box::new(CubeConnectedCycles::new(3)), Node(0)),
        3 => (Box::new(DeBruijn::new(4)), Node(0)),
        _ => {
            let g = PartialGrid::random_holes(6, 7, 8, 0xFEED + pick as u64);
            let hb = g.homebase();
            (Box::new(g), hb)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_field_matches_reference_on_random_traces(
        d in 1u32..=6,
        draws in collection::vec(0u64..u64::MAX, 1..120usize),
    ) {
        let cube = Hypercube::new(d);
        let events = decode_trace(d, &draws);
        assert_equivalent(&cube, Node::ROOT, &events)?;
    }

    /// Same differential on non-hypercube fabrics: rings, tori,
    /// cube-connected cycles, de Bruijn graphs, and random partial grids.
    /// These run the generic spread/rebuild paths over the widened
    /// `NodeSet` bulk ops with ragged tail words.
    #[test]
    fn packed_field_matches_reference_on_alt_topologies(
        pick in 0usize..25,
        draws in collection::vec(0u64..u64::MAX, 1..100usize),
    ) {
        let (topo, homebase) = alt_topology(pick);
        let events = decode_trace_generic(topo.as_ref(), homebase, &draws);
        assert_equivalent(topo.as_ref(), homebase, &events)?;
    }
}

proptest! {
    // d = 8 is the smallest cube on the genuinely 4-wide kernel path
    // (four words); fewer cases since each one compares 256 nodes per
    // event against the reference.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn packed_field_matches_reference_on_the_wide_kernel_path(
        draws in collection::vec(0u64..u64::MAX, 1..140usize),
    ) {
        let cube = Hypercube::new(8);
        let events = decode_trace(8, &draws);
        assert_equivalent(&cube, Node::ROOT, &events)?;
    }
}
