//! Differential property tests for the incremental clean-region
//! connectivity kernel: on randomized event streams over five fabrics
//! (hypercube, ring, torus, cube-connected cycles, de Bruijn), the
//! incrementally maintained oracles must agree with the retained
//! whole-field references after *every* event —
//!
//! * [`ContaminationField::is_contiguous`] (union-find components, dirty
//!   rebuilds) vs. [`ContaminationField::is_contiguous_bfs`] (the
//!   pre-incremental whole-field BFS);
//! * [`ContaminationField::unguarded_frontier`] (maintained frontier set)
//!   vs. [`ContaminationField::unguarded_frontier_scan`] (the
//!   pre-incremental expand-and-mask scan);
//! * [`ContaminationField::clean_components`] vs. a component count
//!   re-derived in this test from the contamination bitset by independent
//!   BFS.
//!
//! The traces deliberately include island spawns (split safe regions that
//! later merge) and vacate-triggered recontamination cascades (deletions,
//! which dirty the forest and exercise the rebuild path).

use std::collections::VecDeque;

use hypersweep_intruder::ContaminationField;
use hypersweep_sim::{Event, EventKind, Role};
use hypersweep_topology::graph::{AdjGraph, CubeConnectedCycles, DeBruijn, Ring, Torus};
use hypersweep_topology::{GridInstance, Hypercube, Node, NodeSet, Topology};

use proptest::prelude::*;

/// Decode random draws into a well-formed trace on any fabric: draw 0
/// spawns a new agent (at the homebase, or — with low probability —
/// anywhere, to force split safe regions), other draws move an existing
/// agent to a random neighbour.
fn decode_trace<T: Topology + ?Sized>(topo: &T, draws: &[u64]) -> Vec<Event> {
    let n = topo.node_count();
    let mut positions: Vec<Node> = Vec::new();
    let mut events = Vec::new();
    for (i, &draw) in draws.iter().enumerate() {
        let time = i as u64;
        let spawn = positions.is_empty() || draw % 5 == 0;
        if spawn {
            let node = if draw % 11 == 0 {
                Node((draw / 16) as u32 % n as u32) // an island spawn
            } else {
                Node(0)
            };
            events.push(Event {
                time,
                kind: EventKind::Spawn {
                    agent: positions.len() as u32,
                    node,
                    role: Role::Worker,
                },
            });
            positions.push(node);
        } else {
            let a = (draw / 8) as usize % positions.len();
            let from = positions[a];
            let nbrs = topo.neighbors_vec(from);
            let to = nbrs[(draw / 64) as usize % nbrs.len()];
            events.push(Event {
                time,
                kind: EventKind::Move {
                    agent: a as u32,
                    from,
                    to,
                    role: Role::Worker,
                },
            });
            positions[a] = to;
        }
    }
    events
}

/// Independent component count of the safe region: BFS floods over the
/// complement of the contamination bitset, written against the `Topology`
/// trait with none of the field's machinery.
fn reference_components<T: Topology + ?Sized>(topo: &T, contaminated: &NodeSet) -> usize {
    let n = topo.node_count();
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    let mut components = 0;
    for i in 0..n as u32 {
        let seed = Node(i);
        if contaminated.contains(seed) || seen[seed.index()] {
            continue;
        }
        components += 1;
        seen[seed.index()] = true;
        queue.push_back(seed);
        while let Some(x) = queue.pop_front() {
            for y in topo.neighbors_vec(x) {
                if !contaminated.contains(y) && !seen[y.index()] {
                    seen[y.index()] = true;
                    queue.push_back(y);
                }
            }
        }
    }
    components
}

/// Replay `draws` on `topo` and hold the incremental oracles equal to the
/// retained references after every single event.
fn assert_incremental_matches_reference<T: Topology + ?Sized>(topo: &T, draws: &[u64]) {
    let events = decode_trace(topo, draws);
    let mut field = ContaminationField::new(topo, Node(0));
    let mut cascades = 0usize;
    for (i, event) in events.iter().enumerate() {
        field.apply(event);
        cascades = cascades.max(field.recontaminations().len());
        let incremental = field.is_contiguous();
        let reference = field.is_contiguous_bfs();
        assert_eq!(
            incremental, reference,
            "event {i}: contiguity verdicts diverged (incremental {incremental}, BFS {reference})"
        );
        assert_eq!(
            field.unguarded_frontier().is_some(),
            field.unguarded_frontier_scan().is_some(),
            "event {i}: frontier oracles diverged"
        );
        let components = field.clean_components();
        let expected = reference_components(topo, field.contaminated_set());
        assert_eq!(
            components, expected,
            "event {i}: component count diverged (incremental {components}, reference {expected})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hypercube_incremental_matches_reference(
        d in 1u32..=6,
        draws in collection::vec(0u64..u64::MAX, 1..120usize),
    ) {
        assert_incremental_matches_reference(&Hypercube::new(d), &draws);
    }

    #[test]
    fn ring_incremental_matches_reference(
        n in 3usize..=24,
        draws in collection::vec(0u64..u64::MAX, 1..100usize),
    ) {
        assert_incremental_matches_reference(&Ring::new(n), &draws);
    }

    #[test]
    fn torus_incremental_matches_reference(
        rows in 3usize..=6,
        cols in 3usize..=6,
        draws in collection::vec(0u64..u64::MAX, 1..100usize),
    ) {
        assert_incremental_matches_reference(&Torus::new(rows, cols), &draws);
    }

    #[test]
    fn cube_connected_cycles_incremental_matches_reference(
        d in 3u32..=4,
        draws in collection::vec(0u64..u64::MAX, 1..100usize),
    ) {
        assert_incremental_matches_reference(&CubeConnectedCycles::new(d), &draws);
    }

    #[test]
    fn de_bruijn_incremental_matches_reference(
        k in 2u32..=5,
        draws in collection::vec(0u64..u64::MAX, 1..100usize),
    ) {
        assert_incremental_matches_reference(&DeBruijn::new(k), &draws);
    }

    /// Partial grids of every instance family: adjacency is symmetric,
    /// duplicate-free, sorted, degree-bounded by 4, and every edge joins
    /// two live cells at Manhattan distance exactly 1.
    #[test]
    fn partial_grid_neighbors_are_symmetric_and_degree_bounded(
        side in 1u32..=10,
        seed in 0u64..u64::MAX,
        kind in 0u8..3,
    ) {
        let instance = match kind {
            0 => GridInstance::Full,
            1 => GridInstance::Holes(seed),
            _ => GridInstance::Corridor,
        };
        let grid = instance.build(side);
        prop_assert_eq!(grid.homebase(), Node(0));
        prop_assert_eq!(grid.cell_of(Node(0)), (0, 0));
        let mut nbrs = Vec::new();
        for i in 0..grid.node_count() as u32 {
            let x = Node(i);
            grid.neighbors_into(x, &mut nbrs);
            prop_assert!(nbrs.len() <= 4, "node {i} has degree {}", nbrs.len());
            prop_assert_eq!(nbrs.len(), grid.degree(x));
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "node {i}: unsorted or duplicated adjacency");
            let (r, c) = grid.cell_of(x);
            for &y in &nbrs {
                prop_assert!(y.index() < grid.node_count());
                let (yr, yc) = grid.cell_of(y);
                let dist = r.abs_diff(yr) + c.abs_diff(yc);
                prop_assert_eq!(dist, 1, "edge {x:?}-{y:?} spans cells ({r},{c})-({yr},{yc})");
                prop_assert!(grid.neighbors_vec(y).contains(&x), "edge {x:?}-{y:?} is not symmetric");
            }
        }
    }

    /// The incremental connectivity kernel against the whole-field BFS
    /// references on random-hole partial grids.
    #[test]
    fn random_hole_grid_incremental_matches_reference(
        side in 2u32..=8,
        seed in 0u64..u64::MAX,
        draws in collection::vec(0u64..u64::MAX, 1..100usize),
    ) {
        assert_incremental_matches_reference(&GridInstance::Holes(seed).build(side), &draws);
    }

    /// The incremental kernel on *mutated* graphs: start from a
    /// random-hole grid, churn edges the way the dynamic scenario does
    /// (inserts plus connectivity-preserving deletions), then replay a
    /// random trace and hold the oracles to the references.
    #[test]
    fn mutated_graph_incremental_matches_reference(
        side in 2u32..=7,
        seed in 0u64..u64::MAX,
        churn in collection::vec(0u64..u64::MAX, 0..40usize),
        draws in collection::vec(0u64..u64::MAX, 1..100usize),
    ) {
        let mut graph = AdjGraph::from_topology(&GridInstance::Holes(seed).build(side));
        let n = graph.node_count() as u64;
        for &m in &churn {
            let a = Node((m % n) as u32);
            let b = Node(((m / 7) % n) as u32);
            if a == b {
                continue;
            }
            if m % 3 == 0 {
                graph.add_edge(a, b);
            } else if graph.remove_edge(a, b) && !graph.is_connected() {
                graph.add_edge(a, b); // keep the trace decoder total
            }
        }
        assert_incremental_matches_reference(&graph, &draws);
    }
}

/// Deterministic split/merge torture around the homebase on `H_4`: grow
/// islands at mutually distant corners, watch components rise, then stitch
/// them together over the homebase and watch contiguity restore — with a
/// recontamination cascade (forest rebuild) in the middle.
#[test]
fn split_merge_islands_on_the_hypercube() {
    let h = Hypercube::new(4);
    let mut f = ContaminationField::new(&h, Node::ROOT);
    let spawn = |agent: u32, node: u32| Event {
        time: 0,
        kind: EventKind::Spawn {
            agent,
            node: Node(node),
            role: Role::Worker,
        },
    };
    let mv = |agent: u32, from: u32, to: u32| Event {
        time: 0,
        kind: EventKind::Move {
            agent,
            from: Node(from),
            to: Node(to),
            role: Role::Worker,
        },
    };

    // Three islands: homebase, and two corners at pairwise distance ≥ 2.
    f.apply(&spawn(0, 0b0000));
    f.apply(&spawn(1, 0b1111));
    f.apply(&spawn(2, 0b0110));
    assert_eq!(f.clean_components(), 3);
    assert!(!f.is_contiguous());
    assert_eq!(f.is_contiguous(), f.is_contiguous_bfs());

    // Merge island 2 into the homebase island: 0110 → 0100 lands adjacent
    // to nothing safe (0110 is vacated and recontaminated — a deletion),
    // then 0100 → 0000 merges with the homebase... but 0100 is then
    // vacated next to contamination and caught too. Every step must agree
    // with the reference.
    f.apply(&mv(2, 0b0110, 0b0100));
    assert_eq!(
        f.clean_components(),
        reference_components(&h, f.contaminated_set())
    );
    assert_eq!(f.is_contiguous(), f.is_contiguous_bfs());
    assert!(
        !f.recontaminations().is_empty(),
        "0110 was vacated unguarded"
    );

    // Bridge the far island toward the homebase along one geodesic.
    f.apply(&spawn(3, 0b0000));
    f.apply(&mv(3, 0b0000, 0b0001));
    f.apply(&mv(3, 0b0001, 0b0011));
    f.apply(&mv(3, 0b0011, 0b0111));
    assert_eq!(
        f.clean_components(),
        reference_components(&h, f.contaminated_set())
    );
    assert_eq!(f.is_contiguous(), f.is_contiguous_bfs());
    assert_eq!(
        f.unguarded_frontier().is_some(),
        f.unguarded_frontier_scan().is_some()
    );
}
