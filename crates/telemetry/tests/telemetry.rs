//! Property and stress tests for the telemetry core:
//!
//! * bucket-count conservation: for any u64 samples, the histogram's
//!   bucket totals, count, sum, min, and max all agree with the samples;
//! * merge correctness: recording a sample set split across two
//!   registries and merging the snapshots equals recording the whole set
//!   sequentially into one registry;
//! * an 8-thread stress test asserting no counter increment or histogram
//!   sample is lost under contention;
//! * JSON round-trips of arbitrary snapshots.

use proptest::prelude::*;

use hypersweep_telemetry::{MetricsRegistry, MetricsSnapshot};

/// u64 samples with varied magnitude: a uniform draw right-shifted by a
/// uniform amount, so small, medium, and full-width values all occur.
fn sample() -> impl Strategy<Value = u64> {
    (0u64..=u64::MAX, 0u32..=63).prop_map(|(v, s)| v >> s)
}

fn record_all(samples: &[u64]) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    let h = registry.histogram("h");
    for &s in samples {
        h.record(s);
    }
    registry
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sample lands in exactly one bucket, and the scalar summaries
    /// match a direct fold over the samples.
    #[test]
    fn histogram_bucket_counts_are_conserved(samples in proptest::collection::vec(sample(), 0..200usize)) {
        let snap = record_all(&samples).snapshot();
        let h = snap.histogram("h").unwrap();
        let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, samples.len() as u64);
        prop_assert_eq!(h.count, samples.len() as u64);
        let expected_sum = samples.iter().fold(0u64, |a, &s| a.wrapping_add(s));
        prop_assert_eq!(h.sum, expected_sum);
        prop_assert_eq!(h.min, samples.iter().copied().min());
        prop_assert_eq!(h.max, samples.iter().copied().max());
        // Buckets are sparse (non-zero), sorted, and within the index range.
        for window in h.buckets.windows(2) {
            prop_assert!(window[0].0 < window[1].0);
        }
        for &(k, c) in &h.buckets {
            prop_assert!(c > 0);
            prop_assert!(k <= 64);
        }
    }

    /// Splitting the samples across two registries and merging their
    /// snapshots gives the same snapshot as sequential recording.
    #[test]
    fn merged_snapshots_equal_sequential_recording(
        samples in proptest::collection::vec(sample(), 0..200usize),
        split in 0u64..=u64::MAX,
        counter_a in 0u64..1_000_000,
        counter_b in 0u64..1_000_000,
    ) {
        let cut = (split as usize) % (samples.len() + 1);
        let (left, right) = samples.split_at(cut);

        let a = record_all(left);
        a.counter("c").add(counter_a);
        let b = record_all(right);
        b.counter("c").add(counter_b);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let sequential = record_all(&samples);
        sequential.counter("c").add(counter_a + counter_b);
        prop_assert_eq!(merged, sequential.snapshot());
    }

    /// Snapshot JSON round-trips losslessly through the wire format.
    #[test]
    fn snapshot_json_round_trips(
        samples in proptest::collection::vec(sample(), 0..64usize),
        count in 0u64..=u64::MAX,
        level in 0u64..=u64::MAX,
    ) {
        let registry = record_all(&samples);
        registry.counter("requests").add(count);
        // Exercise negative gauges too.
        registry.gauge("depth").set((level as i64).wrapping_neg());
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snap);
    }
}

/// 8 threads hammering one counter, one gauge, and one histogram: every
/// increment and sample must be visible in the final snapshot.
#[test]
fn eight_thread_stress_loses_no_increments() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;

    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                // Resolve handles once, like real instrumentation does.
                let counter = registry.counter("stress.count");
                let gauge = registry.gauge("stress.balance");
                let histogram = registry.histogram("stress.samples");
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.inc();
                    gauge.dec();
                    histogram.record(t * PER_THREAD + i);
                }
            });
        }
    });

    let snap = registry.snapshot();
    assert_eq!(snap.counter("stress.count"), Some(THREADS * PER_THREAD));
    assert_eq!(snap.gauge("stress.balance"), Some(0));
    let h = snap.histogram("stress.samples").unwrap();
    assert_eq!(h.count, THREADS * PER_THREAD);
    let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(
        bucket_total,
        THREADS * PER_THREAD,
        "a sample missed its bucket"
    );
    assert_eq!(h.min, Some(0));
    assert_eq!(h.max, Some(THREADS * PER_THREAD - 1));
    // Sum of 0..N-1 for N = THREADS*PER_THREAD.
    let n = THREADS * PER_THREAD;
    assert_eq!(h.sum, n * (n - 1) / 2);
}
