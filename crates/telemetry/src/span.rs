//! Scoped timing spans.
//!
//! A [`Span`] measures the wall time between `enter` and drop and records
//! it, in microseconds, into a histogram named `span.<path>_us`. The path
//! is the dot-joined chain of the spans currently live on this thread, so
//!
//! ```
//! # use hypersweep_telemetry::{MetricsRegistry, Span};
//! let registry = MetricsRegistry::new();
//! {
//!     let _report = Span::enter_in(&registry, "report");
//!     let _warm = Span::enter_in(&registry, "warm");
//!     // ... the warm phase ...
//! } // records span.report.warm_us, then span.report_us
//! assert_eq!(registry.snapshot().histogram("span.report.warm_us").unwrap().count, 1);
//! ```
//!
//! [`Span::enter`] uses the process [`global`](crate::global) registry,
//! which is what instrumented library code should call; hot paths that
//! already hold a registry use [`Span::enter_in`]. Spans are thread-local
//! bookkeeping and deliberately `!Send`: moving one across threads would
//! desynchronize the path stack.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

use crate::registry::{Histogram, MetricsRegistry};

thread_local! {
    /// The names of the spans currently open on this thread, outermost
    /// first. Only spans on enabled registries push here.
    static SPAN_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An RAII timing scope; see the module docs for the naming scheme.
pub struct Span {
    /// `None` when the registry was disabled: the span is inert.
    start: Option<Instant>,
    histogram: Histogram,
    /// Keeps the span `!Send`/`!Sync`: it owns a slot in this thread's path
    /// stack that must be popped on the same thread.
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// Open a span on the process-global registry (a no-op until
    /// [`install_global`](crate::install_global) runs).
    pub fn enter(name: &str) -> Span {
        Span::enter_in(&crate::global(), name)
    }

    /// Open a span on `registry`. The histogram handle is resolved here,
    /// once, so only entry pays the registry lock — drop is lock-free.
    pub fn enter_in(registry: &MetricsRegistry, name: &str) -> Span {
        if !registry.is_enabled() {
            return Span {
                start: None,
                histogram: Histogram::noop(),
                _not_send: PhantomData,
            };
        }
        let metric = SPAN_PATH.with(|path| {
            let mut path = path.borrow_mut();
            path.push(name.to_string());
            let mut metric = String::with_capacity(8 + name.len() + 8 * path.len());
            metric.push_str("span.");
            for (i, segment) in path.iter().enumerate() {
                if i > 0 {
                    metric.push('.');
                }
                metric.push_str(segment);
            }
            metric.push_str("_us");
            metric
        });
        Span {
            start: Some(Instant::now()),
            histogram: registry.histogram(&metric),
            _not_send: PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record_duration(start.elapsed());
            SPAN_PATH.with(|path| {
                path.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_dotted_paths() {
        let registry = MetricsRegistry::new();
        {
            let _outer = Span::enter_in(&registry, "report");
            {
                let _inner = Span::enter_in(&registry, "warm");
            }
            {
                let _inner = Span::enter_in(&registry, "experiments");
                let _leaf = Span::enter_in(&registry, "t2");
            }
        }
        let snap = registry.snapshot();
        for name in [
            "span.report_us",
            "span.report.warm_us",
            "span.report.experiments_us",
            "span.report.experiments.t2_us",
        ] {
            assert_eq!(
                snap.histogram(name).map(|h| h.count),
                Some(1),
                "missing or miscounted {name}"
            );
        }
        // The stack unwound fully: a new span is top-level again.
        {
            let _again = Span::enter_in(&registry, "again");
        }
        assert_eq!(
            registry
                .snapshot()
                .histogram("span.again_us")
                .map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn disabled_spans_leave_no_trace_and_do_not_pollute_the_stack() {
        let enabled = MetricsRegistry::new();
        let disabled = MetricsRegistry::disabled();
        {
            let _outer = Span::enter_in(&disabled, "ghost");
            // The disabled outer span must not become part of this path.
            let _inner = Span::enter_in(&enabled, "real");
        }
        let snap = enabled.snapshot();
        assert_eq!(snap.histogram("span.real_us").map(|h| h.count), Some(1));
        assert!(snap.get("span.ghost.real_us").is_none());
    }

    #[test]
    fn sibling_threads_have_independent_paths() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for name in ["left", "right"] {
                let registry = &registry;
                scope.spawn(move || {
                    let _outer = Span::enter_in(registry, name);
                    let _inner = Span::enter_in(registry, "leaf");
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(
            snap.histogram("span.left.leaf_us").map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            snap.histogram("span.right.leaf_us").map(|h| h.count),
            Some(1)
        );
    }
}
