//! Ordered, serializable views of a registry at one instant.
//!
//! Snapshots are plain data: name-sorted `(name, value)` pairs that
//! serialize to a JSON object in that order, so two snapshots of the same
//! state produce byte-identical JSON. Snapshots from disjoint registries
//! merge associatively (counters and gauges add, histograms combine
//! bucket-wise), which is how the daemon folds a separately-owned cache
//! registry into its own before answering a `metrics` request.

use std::collections::BTreeMap;

use serde::{get_field, Deserialize, Error, Serialize, Value};

use crate::registry::bucket_upper_bound;

/// A point-in-time reading of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, like the live cell).
    pub sum: u64,
    /// Smallest sample, `None` when empty.
    pub min: Option<u64>,
    /// Largest sample, `None` when empty.
    pub max: Option<u64>,
    /// Sparse `(bucket_index, count)` pairs, ascending by index. Bucket 0
    /// holds the value 0; bucket `k >= 1` holds values in `[2^(k-1), 2^k)`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// An empty distribution.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            buckets: Vec::new(),
        }
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0.0..=1.0`),
    /// `None` when empty. Log2 buckets make this an estimate that is never
    /// below the true quantile but at most 2x above it.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(k, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(k));
            }
        }
        // Concurrent tearing can leave bucket totals momentarily behind
        // `count`; fall back to the last occupied bucket.
        self.buckets.last().map(|&(k, _)| bucket_upper_bound(k))
    }

    /// Fold `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let mut merged: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(k, c) in &other.buckets {
            *merged.entry(k).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// One metric reading, tagged by kind.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// A signed instantaneous value.
    Gauge(i64),
    /// A bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// An ordered collection of named metric readings.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Build from entries, sorting by name (duplicates keep the last).
    pub fn from_entries(mut entries: Vec<(String, MetricValue)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1.clone();
                true
            } else {
                false
            }
        });
        MetricsSnapshot { entries }
    }

    /// The name-sorted `(name, value)` pairs.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name, `None` if absent or a different kind.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, `None` if absent or a different kind.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by name, `None` if absent or a different kind.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Fold `other` into `self`: counters and gauges add, histograms merge
    /// bucket-wise, names only in `other` are inserted. A name present in
    /// both with different kinds keeps `self`'s reading (this indicates a
    /// naming bug, not something a merge can resolve).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut merged: BTreeMap<String, MetricValue> = self.entries.drain(..).collect();
        for (name, value) in other.entries() {
            match merged.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            *a = a.wrapping_add(*b);
                        }
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                            *a = a.wrapping_add(*b);
                        }
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        _ => {}
                    }
                }
            }
        }
        self.entries = merged.into_iter().collect();
    }
}

// ---------------------------------------------------------------------------
// Serialization. Hand-written because the vendored derive handles neither
// the tagged-by-kind value shape nor sparse bucket pairs. The wire shape:
//
//   {"pool.jobs": {"type": "counter", "value": 12},
//    "pool.queued": {"type": "gauge", "value": 0},
//    "pool.job_us": {"type": "histogram", "count": 12, "sum": 3480,
//                    "min": 101, "max": 612, "buckets": [[7, 3], [9, 9]]}}

impl Serialize for MetricValue {
    fn serialize_value(&self) -> Value {
        match self {
            MetricValue::Counter(v) => Value::Object(vec![
                ("type".to_string(), Value::String("counter".to_string())),
                ("value".to_string(), v.serialize_value()),
            ]),
            MetricValue::Gauge(v) => Value::Object(vec![
                ("type".to_string(), Value::String("gauge".to_string())),
                ("value".to_string(), v.serialize_value()),
            ]),
            MetricValue::Histogram(h) => Value::Object(vec![
                ("type".to_string(), Value::String("histogram".to_string())),
                ("count".to_string(), h.count.serialize_value()),
                ("sum".to_string(), h.sum.serialize_value()),
                ("min".to_string(), h.min.serialize_value()),
                ("max".to_string(), h.max.serialize_value()),
                ("buckets".to_string(), h.buckets.serialize_value()),
            ]),
        }
    }
}

impl Deserialize for MetricValue {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::custom("metric value must be an object"))?;
        let kind = get_field(fields, "type")
            .as_str()
            .ok_or_else(|| Error::custom("metric value needs a string `type`"))?;
        match kind {
            "counter" => Ok(MetricValue::Counter(u64::deserialize_value(get_field(
                fields, "value",
            ))?)),
            "gauge" => Ok(MetricValue::Gauge(i64::deserialize_value(get_field(
                fields, "value",
            ))?)),
            "histogram" => Ok(MetricValue::Histogram(HistogramSnapshot {
                count: u64::deserialize_value(get_field(fields, "count"))?,
                sum: u64::deserialize_value(get_field(fields, "sum"))?,
                min: Option::<u64>::deserialize_value(get_field(fields, "min"))?,
                max: Option::<u64>::deserialize_value(get_field(fields, "max"))?,
                buckets: Vec::<(u8, u64)>::deserialize_value(get_field(fields, "buckets"))?,
            })),
            other => Err(Error::custom(format!(
                "unknown metric type {other:?} (expected counter|gauge|histogram)"
            ))),
        }
    }
}

impl Serialize for MetricsSnapshot {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.entries
                .iter()
                .map(|(name, value)| (name.clone(), value.serialize_value()))
                .collect(),
        )
    }
}

impl Deserialize for MetricsSnapshot {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::custom("metrics snapshot must be an object"))?;
        let entries = fields
            .iter()
            .map(|(name, value)| Ok((name.clone(), MetricValue::deserialize_value(value)?)))
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(MetricsSnapshot::from_entries(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(samples: &[u64]) -> HistogramSnapshot {
        let registry = crate::MetricsRegistry::new();
        let h = registry.histogram("h");
        for &s in samples {
            h.record(s);
        }
        registry.snapshot().histogram("h").unwrap().clone()
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snap = MetricsSnapshot::from_entries(vec![
            ("b.gauge".to_string(), MetricValue::Gauge(-7)),
            ("a.count".to_string(), MetricValue::Counter(42)),
            (
                "c.hist".to_string(),
                MetricValue::Histogram(hist(&[0, 3, 900])),
            ),
        ]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        // Serialized in name order, independent of construction order.
        assert!(json.find("a.count").unwrap() < json.find("b.gauge").unwrap());
        assert!(json.find("b.gauge").unwrap() < json.find("c.hist").unwrap());
    }

    #[test]
    fn empty_histogram_serializes_null_bounds() {
        let snap = MetricsSnapshot::from_entries(vec![(
            "h".to_string(),
            MetricValue::Histogram(HistogramSnapshot::empty()),
        )]);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"min\":null"), "json was {json}");
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.histogram("h").unwrap().min, None);
    }

    #[test]
    fn merge_adds_counters_and_combines_histograms() {
        let mut a = MetricsSnapshot::from_entries(vec![
            ("c".to_string(), MetricValue::Counter(5)),
            ("g".to_string(), MetricValue::Gauge(2)),
            ("h".to_string(), MetricValue::Histogram(hist(&[1, 8]))),
            ("only_a".to_string(), MetricValue::Counter(1)),
        ]);
        let b = MetricsSnapshot::from_entries(vec![
            ("c".to_string(), MetricValue::Counter(7)),
            ("g".to_string(), MetricValue::Gauge(-3)),
            ("h".to_string(), MetricValue::Histogram(hist(&[8, 1000]))),
            ("only_b".to_string(), MetricValue::Gauge(9)),
        ]);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(12));
        assert_eq!(a.gauge("g"), Some(-1));
        assert_eq!(a.counter("only_a"), Some(1));
        assert_eq!(a.gauge("only_b"), Some(9));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!((h.min, h.max), (Some(1), Some(1000)));
        assert_eq!(h, &hist(&[1, 8, 8, 1000]));
    }

    #[test]
    fn quantile_uses_bucket_upper_bounds() {
        let h = hist(&[1, 2, 3, 4, 100]);
        assert_eq!(h.quantile(0.0), Some(1));
        // rank ceil(0.5*5)=3 → third sample (3) lives in bucket 2, bound 3.
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(127));
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
        assert_eq!(h.mean(), Some(22.0));
    }
}
