//! `hypersweep-telemetry`: metrics and tracing for the hypersweep stack.
//!
//! The daemon introduced in the server crate ran blind: the only visibility
//! into a live `hypersweep serve` was the coarse `status` reply, and
//! offline `report` runs exposed timings as ad-hoc prints. This crate is
//! the first-class observability layer: a [`MetricsRegistry`] of named
//! [`Counter`]s, [`Gauge`]s, and log2-bucketed [`Histogram`]s, plus scoped
//! timing [`Span`]s that record wall time into histograms and nest into
//! dotted phase paths.
//!
//! Design constraints, in order:
//!
//! 1. **Atomics only on the hot path.** Handles are resolved once (a short
//!    registry lock, cold path); every `add`/`set`/`record` thereafter is a
//!    handful of relaxed atomic operations on shared cells. No lock is ever
//!    taken while recording.
//! 2. **Zero-cost when disabled.** [`MetricsRegistry::disabled`] returns a
//!    registry with the same API whose handles carry no cell: recording is
//!    one branch on an `Option` that the optimizer folds away. The serve
//!    benchmark gates the enabled path at <5% overhead.
//! 3. **Std-only.** No dependencies beyond the workspace's vendored serde
//!    stand-in (used solely to serialize [`MetricsSnapshot`]s).
//!
//! A [`MetricsSnapshot`] is an ordered (name-sorted), serializable view of
//! every metric at one instant; snapshots from disjoint registries
//! [`merge`](MetricsSnapshot::merge) associatively, which is what a future
//! sharded daemon needs to aggregate per-shard registries.
//!
//! Deep layers that cannot thread a registry handle (e.g. the event-sink
//! adapters inside strategy fast paths) read the process-wide default via
//! [`global`]; the daemon and CLI [`install_global`] their registry at
//! startup, and the default is disabled (no-op) otherwise.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod snapshot;
mod span;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};
pub use span::Span;

use std::sync::{Arc, Mutex};

static GLOBAL: Mutex<Option<MetricsRegistry>> = Mutex::new(None);

/// Install `registry` as the process-wide default returned by [`global`].
/// Later installs replace earlier ones; handles already resolved from a
/// previous global keep recording into that registry.
pub fn install_global(registry: &MetricsRegistry) {
    *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) = Some(registry.clone());
}

/// The process-wide default registry: whatever [`install_global`] last
/// installed, or a disabled (no-op) registry. Cheap to call, but callers
/// should resolve handles once and keep them, not call this per event.
pub fn global() -> MetricsRegistry {
    GLOBAL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(MetricsRegistry::disabled)
}

/// A process-wide log sink: one callback receiving one already-formatted
/// line per call (no trailing newline).
pub type LogSink = Arc<dyn Fn(&str) + Send + Sync>;

static LOGGER: Mutex<Option<LogSink>> = Mutex::new(None);

/// Install `sink` as the process-wide log sink used by [`log_line`].
/// Later installs replace earlier ones. The daemonized server installs a
/// rotating-file sink here so the reactor and pool log through the daemon
/// log without depending on the daemon crate.
pub fn install_logger(sink: LogSink) {
    *LOGGER.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
}

/// Emit one log line through the installed sink, or to stderr when no sink
/// has been installed. This is a cold-path facility (lifecycle events,
/// rejections, drains) — callers must not put it on per-request hot paths.
pub fn log_line(line: &str) {
    let sink = LOGGER.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match sink {
        Some(sink) => sink(line),
        None => eprintln!("{line}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_defaults_to_disabled_and_install_replaces() {
        // Note: the global is process-wide; this test only asserts the
        // install/replace contract through a private registry, leaving
        // whatever other tests installed in place at the end.
        let registry = MetricsRegistry::new();
        install_global(&registry);
        let seen = global();
        assert!(seen.is_enabled());
        seen.counter("global.test").add(2);
        assert_eq!(registry.counter("global.test").get(), 2);
    }

    #[test]
    fn installed_logger_receives_lines() {
        let captured = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&captured);
        install_logger(Arc::new(move |line: &str| {
            sink.lock().unwrap().push(line.to_string());
        }));
        log_line("daemon: test line");
        assert_eq!(
            captured.lock().unwrap().as_slice(),
            ["daemon: test line".to_string()]
        );
    }
}
