//! The metric registry and its three handle types.
//!
//! A [`MetricsRegistry`] is a cheap-to-clone handle over a shared table of
//! named metrics. Resolving a handle ([`MetricsRegistry::counter`] etc.)
//! takes a short lock on the table — callers do that once, at setup — and
//! the handle thereafter points straight at the shared atomic cell, so the
//! recording path is lock-free. A disabled registry hands out cell-less
//! handles whose recording methods are a single always-false branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k >= 1`
/// holds values whose bit length is `k`, i.e. `[2^(k-1), 2^k)`, up to
/// bucket 64 for values with the top bit set.
pub(crate) const BUCKET_COUNT: usize = 65;

/// Bucket index for a sample: 0 for 0, otherwise the bit length of `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, used by quantile estimation.
pub(crate) fn bucket_upper_bound(index: u8) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// The shared storage behind a [`Histogram`] handle. All fields are
/// updated with relaxed atomics; a snapshot taken mid-record may therefore
/// be off by the in-flight sample, which is acceptable for telemetry (the
/// conservation proptest runs single-threaded where reads are exact).
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first sample lands.
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (k, cell) in self.buckets.iter().enumerate() {
            let c = cell.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((k as u8, c));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// One registered metric: the kind tag and the shared cell.
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

impl Metric {
    fn read(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
            Metric::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
            Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        }
    }
}

/// A registry of named metrics, or a no-op stand-in.
///
/// Clones share the same table; `MetricsRegistry` is the handle you pass
/// around, not the storage. [`MetricsRegistry::disabled`] builds a registry
/// with no table at all: every handle it resolves is inert and every
/// snapshot is empty, at the cost of one branch per recording call.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<BTreeMap<String, Metric>>>>,
}

impl MetricsRegistry {
    /// A live registry with an empty metric table.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    /// A no-op registry: handles record nothing, snapshots are empty.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// Whether this registry actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether two handles share the same underlying table (two disabled
    /// registries are *not* considered equal — there is nothing shared).
    pub fn ptr_eq(&self, other: &MetricsRegistry) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    fn table(&self) -> Option<std::sync::MutexGuard<'_, BTreeMap<String, Metric>>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Resolve (registering on first use) the counter called `name`.
    ///
    /// If `name` is already registered as a different kind the returned
    /// handle is backed by a fresh detached cell: it works locally but is
    /// invisible to snapshots, rather than corrupting the existing series.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(mut table) = self.table() else {
            return Counter { cell: None };
        };
        let metric = table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        let cell = match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => {
                debug_assert!(
                    false,
                    "metric {name:?} already registered with another kind"
                );
                Arc::new(AtomicU64::new(0))
            }
        };
        Counter { cell: Some(cell) }
    }

    /// Resolve (registering on first use) the gauge called `name`.
    /// Kind mismatches behave as in [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(mut table) = self.table() else {
            return Gauge { cell: None };
        };
        let metric = table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))));
        let cell = match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => {
                debug_assert!(
                    false,
                    "metric {name:?} already registered with another kind"
                );
                Arc::new(AtomicI64::new(0))
            }
        };
        Gauge { cell: Some(cell) }
    }

    /// Resolve (registering on first use) the histogram called `name`.
    /// Kind mismatches behave as in [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(mut table) = self.table() else {
            return Histogram { cell: None };
        };
        let metric = table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::new())));
        let cell = match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => {
                debug_assert!(
                    false,
                    "metric {name:?} already registered with another kind"
                );
                Arc::new(HistogramCell::new())
            }
        };
        Histogram { cell: Some(cell) }
    }

    /// An ordered (name-sorted) view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = match self.table() {
            Some(table) => table.iter().map(|(k, m)| (k.clone(), m.read())).collect(),
            None => Vec::new(),
        };
        MetricsSnapshot::from_entries(entries)
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.table() {
            Some(table) => write!(f, "MetricsRegistry({} metrics)", table.len()),
            None => write!(f, "MetricsRegistry(disabled)"),
        }
    }
}

/// A monotonically increasing count. Cloning shares the cell.
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter connected to nothing; useful as a field default.
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A signed instantaneous value (queue depths, entry counts).
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A gauge connected to nothing; useful as a field default.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value (0 for a no-op gauge).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed distribution of u64 samples.
#[derive(Clone)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A histogram connected to nothing; useful as a field default.
    pub fn noop() -> Self {
        Histogram { cell: None }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Record a wall-time duration in microseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total number of samples recorded (0 for a no-op histogram).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_the_index_range() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for k in 1..64u8 {
            assert_eq!(bucket_index(bucket_upper_bound(k)), k as usize);
        }
    }

    #[test]
    fn counters_gauges_and_histograms_round_trip_through_snapshot() {
        let registry = MetricsRegistry::new();
        registry.counter("a.count").add(3);
        registry.gauge("a.depth").set(-2);
        let h = registry.histogram("a.lat_us");
        h.record(0);
        h.record(7);
        h.record(7);
        h.record(4096);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("a.count"), Some(3));
        assert_eq!(snap.gauge("a.depth"), Some(-2));
        let hist = snap.histogram("a.lat_us").expect("histogram present");
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 4110);
        assert_eq!(hist.min, Some(0));
        assert_eq!(hist.max, Some(4096));
        assert_eq!(hist.buckets, vec![(0, 1), (3, 2), (13, 1)]);
        // Names come out sorted.
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.count", "a.depth", "a.lat_us"]);
    }

    #[test]
    fn handles_share_cells_across_lookups_and_clones() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("shared");
        let b = registry.counter("shared");
        let c = a.clone();
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(registry.counter("shared").get(), 4);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        registry.gauge("g").set(5);
        registry.histogram("h").record(1);
        assert!(registry.snapshot().is_empty());
        assert!(!registry.ptr_eq(&MetricsRegistry::disabled()));
    }

    #[test]
    fn clones_share_the_table_and_ptr_eq_sees_it() {
        let a = MetricsRegistry::new();
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert!(!a.ptr_eq(&MetricsRegistry::new()));
        b.counter("via.clone").inc();
        assert_eq!(a.snapshot().counter("via.clone"), Some(1));
    }
}
