//! End-to-end tests of the `hypersweep` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hypersweep"))
}

#[test]
fn list_shows_every_experiment() {
    let out = bin().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in ["f1", "t2", "t10", "e11", "e15"] {
        assert!(text.contains(id), "missing {id}");
    }
}

#[test]
fn run_prints_metrics_and_succeeds() {
    let out = bin()
        .args(["run", "visibility", "5", "--policy", "synchronous"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("agents          : 16"));
    assert!(text.contains("ideal time      : 5"));
    assert!(text.contains("monotone=true"));
}

#[test]
fn run_rejects_unknown_strategy_and_bad_dimension() {
    let out = bin().args(["run", "nonsense", "4"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["run", "clean", "99"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn synchronous_variant_under_async_policy_fails_cleanly() {
    let out = bin()
        .args(["run", "synchronous", "4", "--policy", "fifo"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("does not support"));
}

#[test]
fn report_single_experiment_renders_a_table() {
    let out = bin().args(["report", "t5"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("T5"));
    assert!(text.contains("predicted"));
}

#[test]
fn watch_renders_frames() {
    let out = bin()
        .args(["watch", "visibility", "3", "--stride", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("level 0:"));
    assert!(text.contains("captured"));
}

#[test]
fn trace_then_audit_roundtrip() {
    let dir = std::env::temp_dir().join("hypersweep-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("vis5.json");
    let out = bin()
        .args(["trace", "visibility", "5", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["audit", "5", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("monotone=true"));
    std::fs::remove_file(path).ok();
}

#[test]
fn audit_flags_a_corrupt_trace() {
    let dir = std::env::temp_dir().join("hypersweep-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    // A lone walker that recontaminates.
    let bad = r#"[
        {"time":0,"kind":{"Spawn":{"agent":0,"node":0,"role":"Worker"}}},
        {"time":1,"kind":{"Move":{"agent":0,"from":0,"to":1,"role":"Worker"}}}
    ]"#;
    std::fs::write(&path, bad).unwrap();
    let out = bin()
        .args(["audit", "3", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "corrupt trace must fail the audit");
    std::fs::remove_file(path).ok();
}
