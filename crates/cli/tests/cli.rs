//! End-to-end tests of the `hypersweep` binary.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hypersweep"))
}

#[test]
fn list_shows_every_experiment() {
    let out = bin().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in ["f1", "t2", "t10", "e11", "e15"] {
        assert!(text.contains(id), "missing {id}");
    }
}

#[test]
fn run_prints_metrics_and_succeeds() {
    let out = bin()
        .args(["run", "visibility", "5", "--policy", "synchronous"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("agents          : 16"));
    assert!(text.contains("ideal time      : 5"));
    assert!(text.contains("monotone=true"));
}

#[test]
fn run_rejects_unknown_strategy_and_bad_dimension() {
    let out = bin().args(["run", "nonsense", "4"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["run", "clean", "99"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn synchronous_variant_under_async_policy_fails_cleanly() {
    let out = bin()
        .args(["run", "synchronous", "4", "--policy", "fifo"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("does not support"));
}

#[test]
fn report_single_experiment_renders_a_table() {
    let out = bin().args(["report", "t5"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("T5"));
    assert!(text.contains("predicted"));
}

#[test]
fn watch_renders_frames() {
    let out = bin()
        .args(["watch", "visibility", "3", "--stride", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("level 0:"));
    assert!(text.contains("captured"));
}

#[test]
fn trace_then_audit_roundtrip() {
    let dir = std::env::temp_dir().join("hypersweep-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("vis5.json");
    let out = bin()
        .args(["trace", "visibility", "5", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["audit", "5", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("monotone=true"));
    std::fs::remove_file(path).ok();
}

#[test]
fn report_rejects_out_of_range_max_dim() {
    let out = bin()
        .args(["report", "t5", "--max-dim", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--max-dim 0 must be rejected");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("at least 1"), "{err}");

    let out = bin()
        .args(["report", "t5", "--max-dim", "25"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--max-dim 25 must be rejected");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("exceeds"), "{err}");
    assert!(err.contains("20"), "{err}");
}

#[test]
fn report_with_cache_cap_is_byte_identical_and_reports_evictions() {
    let dir = std::env::temp_dir().join("hypersweep-cli-cache-cap");
    let unbounded = dir.join("unbounded");
    let capped = dir.join("capped");
    let out = bin()
        .args(["report", "t3", "--json", unbounded.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args([
            "report",
            "t3",
            "--cache-cap",
            "1",
            "--json",
            capped.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("evicted"), "{err}");
    let a = std::fs::read_to_string(unbounded.join("t3.json")).unwrap();
    let b = std::fs::read_to_string(capped.join("t3.json")).unwrap();
    assert_eq!(a, b, "a capped run cache changed the exported report");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_cap_zero_is_rejected_with_a_clear_message() {
    // `report` and `serve` share the flag; both must refuse 0 before doing
    // any work, with the same mirrored validation message.
    for command in [
        vec!["report", "t5", "--cache-cap", "0"],
        vec!["serve", "--addr", "127.0.0.1:0", "--cache-cap", "0"],
    ] {
        let out = bin().args(&command).output().unwrap();
        assert!(!out.status.success(), "{command:?} must be rejected");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("--cache-cap must be at least 1"),
            "{command:?}: {err}"
        );
        assert!(err.contains("omit the flag"), "{command:?}: {err}");
    }
    // Non-numeric input still gets the usage-shaped error.
    let out = bin()
        .args(["report", "t5", "--cache-cap", "many"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--cache-cap needs an integer"), "{err}");
}

#[test]
fn report_timings_renders_the_phase_table() {
    let out = bin()
        .args(["report", "t2", "t5", "--timings"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("phase timings (telemetry spans):"), "{err}");
    for phase in ["warm", "experiments", "report"] {
        assert!(err.contains(phase), "missing phase row '{phase}': {err}");
    }
    assert!(err.contains("per-experiment spans:"), "{err}");
    for id in ["t2", "t5"] {
        assert!(err.contains(id), "missing experiment row '{id}': {err}");
    }
    assert!(err.contains("jobs, mean"), "missing pool line: {err}");
    // The table rides on stderr; stdout stays the report alone.
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!text.contains("phase timings"), "{text}");
}

#[test]
fn serve_bench_and_graceful_shutdown() {
    // Start the daemon on an ephemeral port and learn the port from its
    // startup line.
    let mut daemon = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--max-dim", "10"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stderr = BufReader::new(daemon.stderr.take().unwrap());
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    // Mixed load from the bundled generator.
    let bench_out = std::env::temp_dir().join("hypersweep-cli-bench-serve.json");
    let out = bin()
        .args([
            "bench-serve",
            "--addr",
            &addr,
            "--connections",
            "4",
            "--requests",
            "24",
            "--pipeline-depth",
            "4",
            "--max-dim",
            "6",
            "--out",
            bench_out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8(out.stdout).unwrap();
    assert!(summary.contains("req/s"), "{summary}");
    let report = std::fs::read_to_string(&bench_out).unwrap();
    assert!(report.contains("hypersweep-serve-bench/v2"), "{report}");
    assert!(report.contains("\"errors\": 0"), "{report}");
    assert!(report.contains("\"pipeline_depth\": 4"), "{report}");
    assert!(report.contains("\"table_hits\""), "{report}");
    std::fs::remove_file(&bench_out).ok();

    // Graceful shutdown via the protocol; the daemon must exit 0 with a
    // final status line on stdout and the drain summary on stderr.
    let mut control = std::net::TcpStream::connect(&addr).unwrap();
    writeln!(control, r#"{{"type":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    BufReader::new(control.try_clone().unwrap())
        .read_line(&mut ack)
        .unwrap();
    assert!(ack.contains("\"type\":\"shutdown\""), "{ack}");

    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon exited with {status}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut rest).unwrap();
    assert!(rest.contains("drained"), "{rest}");
    let mut stdout = String::new();
    std::io::Read::read_to_string(&mut daemon.stdout.take().unwrap(), &mut stdout).unwrap();
    assert!(stdout.contains("\"type\":\"status\""), "{stdout}");
}

#[test]
fn telemetry_gate_passes_and_fails_on_the_5_percent_line() {
    let dir = std::env::temp_dir().join("hypersweep-cli-telemetry-gate");
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, rps: f64| {
        let path = dir.join(name);
        std::fs::write(&path, format!("{{\"throughput_rps\": {rps}}}\n")).unwrap();
        path
    };
    let off = write("off.json", 1000.0);
    let within = write("within.json", 970.0); // 3% overhead
    let beyond = write("beyond.json", 900.0); // 10% overhead
    let out_file = dir.join("BENCH_telemetry.json");

    let out = bin()
        .args([
            "telemetry-gate",
            within.to_str().unwrap(),
            off.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("telemetry-gate:"), "{text}");
    let written = std::fs::read_to_string(&out_file).unwrap();
    assert!(written.contains("\"pass\":true"), "{written}");
    assert!(written.contains("\"gate_pct\""), "{written}");

    let out = bin()
        .args([
            "telemetry-gate",
            beyond.to_str().unwrap(),
            off.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "10% overhead must fail the gate");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("REGRESSION"), "{err}");
    let written = std::fs::read_to_string(&out_file).unwrap();
    assert!(written.contains("\"pass\":false"), "{written}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn audit_flags_a_corrupt_trace() {
    let dir = std::env::temp_dir().join("hypersweep-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    // A lone walker that recontaminates.
    let bad = r#"[
        {"time":0,"kind":{"Spawn":{"agent":0,"node":0,"role":"Worker"}}},
        {"time":1,"kind":{"Move":{"agent":0,"from":0,"to":1,"role":"Worker"}}}
    ]"#;
    std::fs::write(&path, bad).unwrap();
    let out = bin()
        .args(["audit", "3", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "corrupt trace must fail the audit");
    std::fs::remove_file(path).ok();
}

// --- campaign-scale check knobs -----------------------------------------

#[test]
fn check_campaign_size_and_stride_reject_zero_and_absurd_values() {
    // Mirrors the `--max-dim` contract: structured messages that name the
    // valid range, emitted before any work happens.
    for (args, needle) in [
        (vec!["check", "--campaign-size", "0"], "at least 1"),
        (
            vec!["check", "--campaign-size", "10000001"],
            "exceeds the supported limit",
        ),
        (vec!["check", "--schedules", "0"], "at least 1"),
        (vec!["check", "--stride", "0"], "at least 1"),
        (
            vec!["check", "--stride", "1000001"],
            "exceeds the supported limit",
        ),
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must be rejected");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("valid range"), "{args:?}: {err}");
    }
    // A planted index outside the campaign is caught up front too.
    let out = bin()
        .args(["check", "--campaign-size", "10", "--plant", "10"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("outside the campaign"), "{err}");
}

#[test]
fn check_plant_fails_at_exactly_the_planted_schedule() {
    let dir = std::env::temp_dir().join("hypersweep-cli-plant");
    std::fs::create_dir_all(&dir).unwrap();
    let cx = dir.join("cx.json");
    let out = bin()
        .args([
            "check",
            "--strategy",
            "clean",
            "--dim",
            "4",
            "--campaign-size",
            "4096",
            "--plant",
            "97",
            "--jobs",
            "4",
            "--out",
            cx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "a planted campaign must exit nonzero"
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("FAIL @ schedule 97"), "{text}");
    let replay = std::fs::read_to_string(&cx).unwrap();
    assert!(replay.contains("\"schedule\""), "{replay}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_timings_renders_the_campaign_phase_table() {
    let out = bin()
        .args([
            "check",
            "--strategy",
            "clean",
            "--dim",
            "4",
            "--campaign-size",
            "64",
            "--timings",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("campaign phase timings"), "{err}");
    for row in ["campaigns", "shrink", "schedules", "slices"] {
        assert!(err.contains(row), "missing row '{row}': {err}");
    }
    // The table rides on stderr; stdout stays the campaign table alone.
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!text.contains("campaign phase timings"), "{text}");
}

#[test]
fn check_rejects_plant_for_scenario_campaigns() {
    let out = bin()
        .args([
            "check",
            "--scenario",
            "grid",
            "--dim",
            "6",
            "--campaign-size",
            "8",
            "--plant",
            "3",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--plant applies only"), "{err}");
}

#[test]
fn bench_check_writes_a_report_and_gates_against_itself() {
    let dir = std::env::temp_dir().join("hypersweep-cli-bench-check");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("BENCH_check.json");
    let fast = |cmd: &mut Command| {
        cmd.env("BENCH_CHECK_DIMS", "6")
            .env("BENCH_CHECK_SCHEDULES", "8")
            .env("BENCH_CHECK_BUDGET_MS", "50");
    };
    let mut cmd = bin();
    fast(&mut cmd);
    let out = cmd
        .args([
            "bench-check",
            "--jobs",
            "2",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&report).unwrap();
    assert!(text.contains("hypersweep-check-bench/v1"), "{text}");
    assert!(text.contains("schedules_per_sec"), "{text}");
    assert!(text.contains("events_per_sec"), "{text}");

    // Gate mode with handcrafted baselines, so the verdict is
    // deterministic regardless of how noisy this machine is: a slow
    // baseline passes, an impossibly fast one trips the 25% gate.
    let baseline = |name: &str, rate: &str| {
        let path = dir.join(name);
        std::fs::write(
            &path,
            format!(
                "{{\"schema\":\"hypersweep-check-bench/v1\",\"strategy\":\"cloning\",\
                 \"stride\":1,\"jobs\":2,\"dims\":[{{\"d\":6,\"schedules\":8,\
                 \"schedules_per_sec\":{rate},\"events_per_sec\":{rate}}}]}}\n"
            ),
        )
        .unwrap();
        path
    };
    let slow = baseline("slow.json", "0.001");
    let mut cmd = bin();
    fast(&mut cmd);
    let out = cmd
        .env("BENCH_CHECK_BASELINE", slow.to_str().unwrap())
        .args(["bench-check", "--jobs", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("bench-check/gate"), "{text}");

    let impossible = baseline("impossible.json", "1000000000000000.0");
    let mut cmd = bin();
    fast(&mut cmd);
    let out = cmd
        .env("BENCH_CHECK_BASELINE", impossible.to_str().unwrap())
        .args(["bench-check", "--jobs", "2"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "an impossible baseline must trip the gate"
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("REGRESSION"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

// --- managed daemon lifecycle -------------------------------------------

/// A fresh state directory for one daemon test.
fn daemon_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hypersweep-cli-daemon-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Crude field extraction from `state.json`, enough for tests.
fn state_field(dir: &std::path::Path, field: &str) -> String {
    let text = std::fs::read_to_string(dir.join("state.json")).expect("state.json");
    let needle = format!("\"{field}\":");
    let start = text.find(&needle).expect(field) + needle.len();
    text[start..]
        .trim_start_matches('"')
        .chars()
        .take_while(|c| !matches!(c, '"' | ',' | '}'))
        .collect()
}

/// One request/reply round trip against a daemon's TCP address.
fn daemon_request(addr: &str, line: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect daemon");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("reply");
    reply
}

fn daemon_cmd(dir: &std::path::Path, args: &[&str]) -> std::process::Output {
    bin()
        .arg("daemon")
        .args(args)
        .arg("--state-dir")
        .arg(dir)
        .output()
        .expect("run daemon command")
}

#[test]
fn daemon_lifecycle_start_status_stop_and_force_takeover() {
    let dir = daemon_dir("lifecycle");

    // status on an empty dir: not running, exit code 3.
    let out = daemon_cmd(&dir, &["status"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    let out = daemon_cmd(&dir, &["start", "--addr", "127.0.0.1:0"]);
    assert!(out.status.success(), "{out:?}");
    let out = daemon_cmd(&dir, &["status"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let first_pid = state_field(&dir, "pid");

    // A second start is refused while the first is alive...
    let out = daemon_cmd(&dir, &["start", "--addr", "127.0.0.1:0"]);
    assert!(!out.status.success(), "double start must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--force"),
        "{out:?}"
    );

    // ...and --force takes it over with a new PID.
    let out = daemon_cmd(&dir, &["start", "--addr", "127.0.0.1:0", "--force"]);
    assert!(out.status.success(), "{out:?}");
    let second_pid = state_field(&dir, "pid");
    assert_ne!(first_pid, second_pid, "takeover must replace the daemon");

    let out = daemon_cmd(&dir, &["stop"]);
    assert!(out.status.success(), "{out:?}");
    let out = daemon_cmd(&dir, &["status"]);
    assert_eq!(out.status.code(), Some(3), "stopped daemon reads as down");
    assert!(!dir.join("state.json").exists(), "state retired at stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_warm_restart_after_kill9_serves_byte_identical_replies() {
    let dir = daemon_dir("kill9");
    let audit = r#"{"type":"audit","strategy":"clean","dim":6}"#;

    // First life: compute one audit, then stop gracefully so the cache
    // snapshot is flushed and compacted.
    let out = daemon_cmd(&dir, &["start", "--addr", "127.0.0.1:0"]);
    assert!(out.status.success(), "{out:?}");
    let cold = daemon_request(&state_field(&dir, "addr"), audit);
    assert!(cold.contains("\"monotone\":true"), "{cold}");
    assert!(daemon_cmd(&dir, &["stop"]).status.success());

    // Second life dies hard: kill -9 leaves the state file and socket
    // behind.
    let out = daemon_cmd(&dir, &["start", "--addr", "127.0.0.1:0"]);
    assert!(out.status.success(), "{out:?}");
    let pid = state_field(&dir, "pid");
    let killed = Command::new("kill").args(["-9", &pid]).status().unwrap();
    assert!(killed.success());
    // Wait for the PID to actually die (kill returns before reaping).
    for _ in 0..100 {
        if daemon_cmd(&dir, &["status"]).status.code() == Some(3) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let out = daemon_cmd(&dir, &["status"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("stale"),
        "{out:?}"
    );
    assert!(
        dir.join("daemon.sock").exists(),
        "kill -9 orphans the socket"
    );

    // Third life: start reclaims the stale state and socket, warm-loads
    // the persisted cache, and the audit answers byte-identically.
    let out = daemon_cmd(&dir, &["start", "--addr", "127.0.0.1:0"]);
    assert!(out.status.success(), "{out:?}");
    let warm = daemon_request(&state_field(&dir, "addr"), audit);
    assert_eq!(warm, cold, "warm reply must be byte-identical");
    let log = std::fs::read_to_string(dir.join("daemon.log")).unwrap();
    assert!(
        log.contains("warm-loaded 1"),
        "warm load not logged:\n{log}"
    );
    assert!(log.contains("cleanup"), "stale cleanup not logged:\n{log}");

    assert!(daemon_cmd(&dir, &["stop"]).status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
