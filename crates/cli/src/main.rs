//! `hypersweep` — command-line interface regenerating the paper's tables
//! and figures.
//!
//! ```text
//! hypersweep list                         # experiment index
//! hypersweep report all [--full] [--json DIR]
//! hypersweep report t3 t5 [--full]
//! hypersweep figures                      # f1–f4 only
//! hypersweep run clean 6 --policy random:7
//! hypersweep run visibility 8 --policy synchronous
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use hypersweep_analysis::experiments::ALL_IDS;
use hypersweep_analysis::{
    default_jobs, run_ids_pooled_with, runner, validate_cache_cap, validate_cache_shards,
    validate_max_dim, ExperimentConfig,
};
use hypersweep_check::{CheckConfig, CheckStrategy, ReplayFile};
use hypersweep_core::{
    CleanStrategy, CloningStrategy, SearchStrategy, SynchronousStrategy, VisibilityStrategy,
};
use hypersweep_intruder::{render_film, verify_trace, MonitorConfig};
use hypersweep_scenario::{GridStrategy, ScenarioId};
use hypersweep_server::{run_bench, BenchConfig, Server, ServerLimits};
use hypersweep_sim::{Event, Policy};
use hypersweep_topology::{GridInstance, Hypercube, Node};
use serde::Deserialize as _;

fn usage() -> &'static str {
    "usage:\n\
     \thypersweep list\n\
     \thypersweep report <id...|all> [--full] [--max-dim N] [--json DIR] [--jobs N] [--cache-cap N] [--timings]\n\
     \thypersweep figures [--full]\n\
     \thypersweep run <clean|visibility|cloning|synchronous> <d> [--policy P] [--fast]\n\
     \thypersweep watch <strategy> <d> [--stride N]\n\
     \thypersweep trace <strategy> <d> <out.json>\n\
     \thypersweep audit <d> <trace.json>\n\
     \thypersweep check [--strategy S|all] [--dim D] [--campaign-size N] [--seed K] [--jobs N]\n\
     \t                 [--max-steps N] [--stride N] [--plant I] [--timings] [--out FILE]\n\
     \t                 [--scenario hypercube|grid|dynamic] [--instance full|holes:<seed>|corridor]\n\
     \thypersweep check --replay FILE\n\
     \thypersweep bench-check [--jobs N] [--out FILE]   (env: BENCH_CHECK_DIMS, BENCH_CHECK_SCHEDULES,\n\
     \t                 BENCH_CHECK_STRATEGY, BENCH_CHECK_BUDGET_MS, BENCH_CHECK_BASELINE)\n\
     \thypersweep serve [--addr HOST:PORT] [--uds PATH] [--max-dim N] [--jobs N] [--cache-cap N]\n\
     \t                 [--cache-shards N] [--timeout-ms N] [--metrics-file FILE]\n\
     \t                 [--metrics-interval-ms N] [--no-telemetry] [--persist FILE]\n\
     \t                 [--state-file FILE] [--log-file FILE]\n\
     \thypersweep daemon <start|status|stop|restart> [--state-dir DIR] [--force]\n\
     \t                 [+ any serve flag, forwarded to the managed daemon]\n\
     \thypersweep bench-serve [--addr HOST:PORT] [--uds PATH] [--connections N] [--requests N]\n\
     \t                       [--pipeline-depth N] [--max-dim N] [--out FILE]\n\
     \thypersweep telemetry-gate <with.json> <without.json> [--out FILE]\n\
     \n\
     policies: fifo, lifo, round-robin, random:<seed>, synchronous\n\
     check strategies: clean, visibility, cloning, synchronous, mutant-eager-guard, all\n\
     scenario strategies (--scenario grid|dynamic): sweep, mutant-grid-leaky-guard, all\n\
     experiment ids: f1 f2 f3 f4 t2 t3 t4 t5 t6 t7 t8 t9 t10 e11 e12 e13 e14 e15 e16\n\
     report ids also accept: scenarios (registry comparison table)"
}

fn parse_policy(s: &str) -> Result<Policy, String> {
    match s {
        "fifo" => Ok(Policy::Fifo),
        "lifo" => Ok(Policy::Lifo),
        "round-robin" => Ok(Policy::RoundRobin),
        "synchronous" => Ok(Policy::Synchronous),
        other => {
            if let Some(seed) = other.strip_prefix("random:") {
                seed.parse()
                    .map(Policy::Random)
                    .map_err(|e| format!("bad seed in '{other}': {e}"))
            } else {
                Err(format!("unknown policy '{other}'"))
            }
        }
    }
}

fn cmd_list() {
    println!("experiments (see DESIGN.md section 3):");
    for id in ALL_IDS {
        let what = match *id {
            "f1" => "Figure 1 - broadcast tree T(d) / heap-queue structure",
            "f2" => "Figure 2 - cleaning order of Algorithm CLEAN",
            "f3" => "Figure 3 - msb classes C_0..C_d",
            "f4" => "Figure 4 - visibility strategy wavefronts",
            "t2" => "Theorem 2 - CLEAN team size",
            "t3" => "Theorem 3 - CLEAN moves",
            "t4" => "Theorem 4 - CLEAN ideal time",
            "t5" => "Theorem 5 - visibility agents = n/2",
            "t6" => "Theorems 1/6 - monotonicity under every adversary",
            "t7" => "Theorem 7 - visibility time = log n",
            "t8" => "Theorem 8 - visibility moves",
            "t9" => "section 5 - cloning variant (n-1 moves)",
            "t10" => "section 5 - synchronous variant",
            "e11" => "strategy trade-off comparison",
            "e12" => "baselines and exact bounds",
            "e13" => "ablations: navigation and dispatch order",
            "e14" => "the open problem: team-size bounds",
            "e15" => "capture dynamics across schedules",
            "e16" => "contiguous search on classic networks",
            _ => "",
        };
        println!("  {id:>4}  {what}");
    }
}

fn cmd_report(
    ids: &[String],
    full: bool,
    max_dim: Option<u32>,
    json_dir: Option<PathBuf>,
    jobs: usize,
    cache_cap: Option<usize>,
    timings: bool,
) -> Result<(), String> {
    let mut cfg = if full {
        ExperimentConfig::full()
    } else {
        ExperimentConfig::quick()
    };
    if let Some(cap) = max_dim {
        cfg.clamp_max_dim(cap);
    }
    let ids: Vec<String> = if ids.iter().any(|i| i == "all") {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids.to_vec()
    };
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            return Err(format!("unknown experiment '{id}'"));
        }
    }
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    // Telemetry is recorded only when the phase table was asked for; the
    // disabled registry keeps the default path zero-cost.
    let registry = if timings {
        hypersweep_telemetry::MetricsRegistry::new()
    } else {
        hypersweep_telemetry::MetricsRegistry::disabled()
    };
    let report = run_ids_pooled_with(&id_refs, &cfg, jobs, cache_cap, &registry);
    for r in &report.results {
        println!("{}", r.render());
    }
    // Pool/cache statistics go to stderr so stdout stays the report alone.
    eprintln!("{}", report.summary.render());
    for (id, t) in &report.summary.experiment_timings {
        eprintln!("  {id:>4}: {:.0}ms", t.as_secs_f64() * 1e3);
    }
    if timings {
        render_timings(&registry.snapshot(), &report.summary);
    }
    if let Some(dir) = json_dir {
        let paths = runner::export_json(&report.results, &dir).map_err(|e| e.to_string())?;
        eprintln!("wrote {} JSON files under {}", paths.len(), dir.display());
    }
    Ok(())
}

/// The `report --timings` phase table, rendered from the telemetry spans
/// the harness recorded (`span.report.*_us`, `experiment.<id>_us`) plus
/// the pool's job-latency histogram.
fn render_timings(
    snapshot: &hypersweep_telemetry::MetricsSnapshot,
    summary: &hypersweep_analysis::RunSummary,
) {
    let span_ms = |name: &str| {
        snapshot
            .histogram(name)
            .map(|h| h.sum as f64 / 1e3)
            .unwrap_or(0.0)
    };
    eprintln!("phase timings (telemetry spans):");
    eprintln!("  {:<16} {:>10}", "phase", "wall");
    eprintln!("  {:<16} {:>8.0}ms", "warm", span_ms("span.report.warm_us"));
    eprintln!(
        "  {:<16} {:>8.0}ms",
        "experiments",
        span_ms("span.report.experiments_us")
    );
    eprintln!("  {:<16} {:>8.0}ms", "report", span_ms("span.report_us"));
    eprintln!("per-experiment spans:");
    for (id, _) in &summary.experiment_timings {
        eprintln!(
            "  {:<16} {:>8.1}ms",
            id,
            span_ms(&format!("experiment.{id}_us"))
        );
    }
    if let Some(jobs) = snapshot.histogram("pool.job_us") {
        eprintln!(
            "pool: {} jobs, mean {:.1}ms/job",
            jobs.count,
            jobs.mean().unwrap_or(0.0) / 1e3
        );
    }
}

fn cmd_run(strategy: &str, d: u32, policy: Policy, fast: bool) -> Result<(), String> {
    let cube = Hypercube::new(d);
    let s = make_strategy(strategy, cube)?;
    let outcome = if fast {
        s.fast(d <= ExperimentConfig::quick().audit_max_dim)
    } else {
        s.run(policy).map_err(|e| e.to_string())?
    };
    println!(
        "{} on H_{d} (n = {}) under {}:",
        s.name(),
        cube.node_count(),
        if fast {
            "fast path".into()
        } else {
            policy.name()
        }
    );
    let m = &outcome.metrics;
    println!("  agents          : {}", m.team_size);
    println!("  worker moves    : {}", m.worker_moves);
    println!("  synchronizer    : {}", m.coordinator_moves);
    println!("  total moves     : {}", m.total_moves());
    if let Some(t) = m.ideal_time {
        println!("  ideal time      : {t}");
    }
    println!("  peak away       : {}", m.peak_away);
    println!("  whiteboard bits : {}", m.peak_board_bits);
    let v = &outcome.verdict;
    println!(
        "  verdict         : monotone={} contiguous={} all_clean={} capture={:?}",
        v.monotone, v.contiguous, v.all_clean, v.capture
    );
    if !outcome.is_complete() {
        return Err("search did not complete correctly".into());
    }
    Ok(())
}

fn make_strategy(name: &str, cube: Hypercube) -> Result<Box<dyn SearchStrategy>, String> {
    Ok(match name {
        "clean" => Box::new(CleanStrategy::new(cube)),
        "visibility" => Box::new(VisibilityStrategy::new(cube)),
        "cloning" => Box::new(CloningStrategy::new(cube)),
        "synchronous" => Box::new(SynchronousStrategy::new(cube)),
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

fn strategy_trace(name: &str, cube: Hypercube) -> Result<Vec<Event>, String> {
    let events = match name {
        "clean" => CleanStrategy::new(cube).synthesize(true).1,
        "visibility" | "synchronous" => VisibilityStrategy::new(cube).synthesize(true).1,
        "cloning" => CloningStrategy::new(cube).synthesize(true).1,
        other => return Err(format!("unknown strategy '{other}'")),
    };
    events.ok_or_else(|| "trace recording disabled".into())
}

fn cmd_watch(strategy: &str, d: u32, stride: usize) -> Result<(), String> {
    let cube = Hypercube::new(d);
    let events = strategy_trace(strategy, cube)?;
    let far = Node(cube.node_count() as u32 - 1);
    let frames = render_film(cube, &events, stride, Some(far));
    for frame in &frames {
        println!(
            "--- after event {} ({} contaminated) ---",
            frame.events_applied, frame.contaminated
        );
        print!("{}", frame.text);
    }
    println!("{} frames, {} events total", frames.len(), events.len());
    Ok(())
}

fn cmd_trace(strategy: &str, d: u32, path: &str) -> Result<(), String> {
    let cube = Hypercube::new(d);
    let events = strategy_trace(strategy, cube)?;
    let json = serde_json::to_string(&events).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())?;
    eprintln!("wrote {} events to {path}", events.len());
    Ok(())
}

fn cmd_audit(d: u32, path: &str) -> Result<(), String> {
    let cube = Hypercube::new(d);
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let events: Vec<Event> = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let far = Node(cube.node_count() as u32 - 1);
    let verdict = verify_trace(
        &cube,
        Node::ROOT,
        &events,
        MonitorConfig::with_intruder(far),
    );
    println!(
        "audit of {path} on H_{d}: monotone={} contiguous={} all_clean={} capture={:?}          ({} events, {} violations)",
        verdict.monotone,
        verdict.contiguous,
        verdict.all_clean,
        verdict.capture,
        verdict.events,
        verdict.violations.len()
    );
    for v in verdict.violations.iter().take(10) {
        println!("  violation: {v:?}");
    }
    if verdict.is_complete() {
        Ok(())
    } else {
        Err("trace is not a correct complete search".into())
    }
}

/// Campaign knobs for `hypersweep check` beyond the checking problem
/// itself (`--campaign-size`/`--schedules`, `--seed`, `--jobs`,
/// `--max-steps`, `--stride`, `--plant`, `--timings`).
struct CheckCampaignOpts {
    schedules: u64,
    seed: u64,
    jobs: usize,
    max_steps: u64,
    stride: u64,
    planted: Option<u64>,
    timings: bool,
}

/// The `check --timings` phase table: campaign/shrink spans, the
/// per-schedule latency histogram, and the streaming executor's slice
/// accounting, all under the given telemetry prefix (`check` for the
/// hypercube checker, `scenario` for the scenario driver).
fn render_campaign_timings(snapshot: &hypersweep_telemetry::MetricsSnapshot, prefix: &str) {
    let span_ms = |name: &str| {
        snapshot
            .histogram(name)
            .map(|h| h.sum as f64 / 1e3)
            .unwrap_or(0.0)
    };
    eprintln!("campaign phase timings (telemetry spans):");
    eprintln!(
        "  {:<16} {:>8.0}ms",
        "campaigns",
        span_ms(&format!("span.{prefix}.campaign_us"))
    );
    eprintln!(
        "  {:<16} {:>8.0}ms",
        "shrink",
        span_ms(&format!("span.{prefix}.shrink_us"))
    );
    if let Some(h) = snapshot.histogram(&format!("{prefix}.schedule_us")) {
        eprintln!(
            "  {:<16} {} schedules, mean {:.2}ms, max {:.2}ms",
            "schedules",
            h.count,
            h.mean().unwrap_or(0.0) / 1e3,
            h.max.unwrap_or(0) as f64 / 1e3,
        );
    }
    eprintln!(
        "  {:<16} {} claimed, {} skipped past the cutoff",
        "slices",
        snapshot.counter(&format!("{prefix}.slices")).unwrap_or(0),
        snapshot
            .counter(&format!("{prefix}.slices_skipped"))
            .unwrap_or(0),
    );
}

/// `hypersweep check`: explore adversarial schedules against the paper's
/// invariants; any counterexample is shrunk and written as a replay file.
fn cmd_check(
    strategy: &str,
    dim: u32,
    opts: &CheckCampaignOpts,
    out: Option<&str>,
) -> Result<(), String> {
    let CheckCampaignOpts {
        schedules,
        seed,
        jobs,
        max_steps,
        stride,
        planted,
        timings,
    } = *opts;
    let schedules = hypersweep_analysis::validate_campaign_size(schedules)?;
    if stride > 0 {
        hypersweep_analysis::validate_stride(stride)?;
    }
    if let Some(p) = planted {
        if p >= schedules {
            return Err(format!(
                "--plant {p} is outside the campaign (valid range is 0..{schedules})"
            ));
        }
    }
    let strategies: Vec<CheckStrategy> = if strategy == "all" {
        CheckStrategy::PAPER.to_vec()
    } else {
        vec![CheckStrategy::parse(strategy)
            .ok_or_else(|| format!("unknown check strategy '{strategy}'"))?]
    };
    let registry = hypersweep_telemetry::MetricsRegistry::new();
    let mut outcomes = Vec::new();
    for s in strategies {
        let mut cfg = CheckConfig::new(s, dim);
        cfg.max_steps = max_steps;
        cfg.stride = stride;
        cfg.validate()?;
        outcomes.push(hypersweep_analysis::run_campaign(
            &hypersweep_analysis::CheckCampaign {
                cfg,
                schedules,
                seed,
                planted,
            },
            jobs,
            &registry,
        ));
    }
    println!(
        "{}",
        hypersweep_analysis::campaign_table(&outcomes).render()
    );
    let snap = registry.snapshot();
    eprintln!(
        "check: {} schedules, {} steps, {} events, {} violations \
         (mean {:.2}ms/schedule, {jobs} jobs)",
        snap.counter("check.schedules").unwrap_or(0),
        snap.counter("check.steps").unwrap_or(0),
        snap.counter("check.events").unwrap_or(0),
        snap.counter("check.violations").unwrap_or(0),
        snap.histogram("check.schedule_us")
            .and_then(|h| h.mean())
            .unwrap_or(0.0)
            / 1e3,
    );
    if timings {
        render_campaign_timings(&snap, "check");
    }
    let failed: Vec<&hypersweep_analysis::CampaignOutcome> = outcomes
        .iter()
        .filter(|o| o.counterexample.is_some())
        .collect();
    if let Some(first) = failed.first() {
        let replay = first.counterexample.as_ref().expect("filtered");
        let path = out.unwrap_or("counterexample.json");
        std::fs::write(path, replay.to_json() + "\n").map_err(|e| e.to_string())?;
        eprintln!(
            "wrote shrunk counterexample ({} decisions) to {path}; \
             reproduce with: hypersweep check --replay {path}",
            replay.decisions.len()
        );
        return Err(format!(
            "{} of {} campaigns found invariant violations",
            failed.len(),
            outcomes.len()
        ));
    }
    Ok(())
}

/// `hypersweep check --scenario grid|dynamic`: explore adversarial
/// schedules with the scenario campaign driver instead of the hypercube
/// checker. `--dim` doubles as the grid side; `--instance` picks the
/// topology generator.
fn cmd_check_scenario(
    id: ScenarioId,
    strategy: &str,
    side: u32,
    instance: Option<&str>,
    opts: &CheckCampaignOpts,
) -> Result<(), String> {
    let CheckCampaignOpts {
        schedules,
        seed,
        jobs,
        max_steps,
        stride,
        planted,
        timings,
    } = *opts;
    let schedules = hypersweep_analysis::validate_campaign_size(schedules)?;
    if stride > 1 {
        return Err(
            "--stride applies only to the hypercube checker; scenario oracles verify every event"
                .into(),
        );
    }
    if planted.is_some() {
        return Err(
            "--plant applies only to the hypercube checker; scenario campaigns have no \
             planted-violation harness"
                .into(),
        );
    }
    let instance = match instance {
        None => None,
        Some(text) => Some(GridInstance::parse(text).ok_or_else(|| {
            format!("bad --instance '{text}': expected full|holes:<seed>|corridor")
        })?),
    };
    let scenario =
        hypersweep_scenario::validate_scenario(id, side, instance.unwrap_or(GridInstance::Full))?
            .expect("hypercube is routed to cmd_check");
    let instance = instance.unwrap_or_else(|| scenario.default_instance());
    let strategies: Vec<GridStrategy> = match strategy {
        // "all" is the hypercube default; for scenarios it means the
        // shipping strategy (the mutant is an explicit negative control).
        "all" | "sweep" => vec![GridStrategy::Sweep],
        other => vec![GridStrategy::parse(other).ok_or_else(|| {
            format!(
                "unknown scenario strategy '{other}' (expected sweep or mutant-grid-leaky-guard)"
            )
        })?],
    };
    let registry = hypersweep_telemetry::MetricsRegistry::new();
    let mut outcomes = Vec::new();
    for s in strategies {
        let campaign = scenario.campaign(s, side, instance, schedules, seed, max_steps);
        outcomes.push(hypersweep_scenario::run_scenario_campaign(
            &campaign, jobs, &registry,
        ));
    }
    println!(
        "{}",
        hypersweep_scenario::scenario_table(&outcomes).render()
    );
    let snap = registry.snapshot();
    eprintln!(
        "scenario: {} schedules, {} steps, {} events, {} violations, \
         {} mutations ({} rejected) (mean {:.2}ms/schedule, {jobs} jobs)",
        snap.counter("scenario.schedules").unwrap_or(0),
        snap.counter("scenario.steps").unwrap_or(0),
        snap.counter("scenario.events").unwrap_or(0),
        snap.counter("scenario.violations").unwrap_or(0),
        snap.counter("scenario.dynamic.mutations").unwrap_or(0),
        snap.counter("scenario.dynamic.rejected").unwrap_or(0),
        snap.histogram("scenario.schedule_us")
            .and_then(|h| h.mean())
            .unwrap_or(0.0)
            / 1e3,
    );
    if timings {
        render_campaign_timings(&snap, "scenario");
    }
    let failed: Vec<&hypersweep_scenario::ScenarioOutcome> = outcomes
        .iter()
        .filter(|o| o.counterexample.is_some())
        .collect();
    if let Some(first) = failed.first() {
        let c = first.counterexample.as_ref().expect("filtered");
        eprintln!(
            "first counterexample: schedule {} under the {} adversary, \
             {} decisions, violation: {}",
            c.schedule,
            c.adversary,
            c.decisions.len(),
            c.violation
        );
        return Err(format!(
            "{} of {} scenario campaigns found invariant violations",
            failed.len(),
            outcomes.len()
        ));
    }
    Ok(())
}

/// `hypersweep report scenarios`: the registry comparison table —
/// closed-form team predictions (where the literature gives one) against
/// the measured reference run for every scenario/instance pair.
fn cmd_report_scenarios(side: u32) -> Result<(), String> {
    let mut table = hypersweep_analysis::Table::new(
        format!("scenario registry @ side {side}"),
        &[
            "scenario",
            "strategy",
            "instance",
            "nodes",
            "team",
            "closed-form",
            "moves",
            "rounds",
            "churn",
            "verdict",
        ],
    );
    for scenario in hypersweep_scenario::registry() {
        scenario.validate(side)?;
        let instances = match scenario.id() {
            ScenarioId::Grid => vec![
                GridInstance::Full,
                scenario.default_instance(),
                GridInstance::Corridor,
            ],
            _ => vec![scenario.default_instance()],
        };
        for instance in instances {
            let r = scenario.reference(side, instance);
            table.push_row(vec![
                scenario.id().label().to_string(),
                scenario.strategy_label().to_string(),
                instance.label(),
                r.nodes.to_string(),
                r.team.to_string(),
                scenario
                    .closed_form_team(side, instance)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                r.moves.to_string(),
                r.rounds.to_string(),
                if r.mutations + r.rejected > 0 {
                    format!("{}/{}", r.mutations, r.mutations + r.rejected)
                } else {
                    "-".to_string()
                },
                if r.captured && r.violations == 0 {
                    "ok".to_string()
                } else {
                    "FAIL".to_string()
                },
            ]);
        }
    }
    println!("{}", table.render());
    for scenario in hypersweep_scenario::registry() {
        println!("  {}: {}", scenario.id().label(), scenario.summary());
    }
    Ok(())
}

/// `hypersweep check --replay`: re-execute a recorded counterexample and
/// demand the recorded violation, step-exact. Output is deterministic —
/// two consecutive runs print identical bytes.
fn cmd_check_replay(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let replay = ReplayFile::from_json(&text).map_err(|e| e.to_string())?;
    println!(
        "replay {path}: {} on H_{} (campaign seed {}, schedule {}, adversary {}, {} decisions)",
        replay.strategy,
        replay.dim,
        replay.campaign_seed,
        replay.schedule,
        replay.adversary,
        replay.decisions.len()
    );
    println!("expected violation: {}", replay.violation);
    let run = replay.verify().map_err(|e| e.to_string())?;
    println!(
        "reproduced exactly: {} steps, {} events, violation at step {} event {}",
        run.steps, run.events, replay.violation.step, replay.violation.event
    );
    Ok(())
}

fn cmd_serve(
    addr: &str,
    limits: ServerLimits,
    state_file: Option<PathBuf>,
    log_file: Option<PathBuf>,
) -> Result<(), String> {
    // Route the reactor/pool/cache log lines into the rotating daemon log
    // before binding, so the warm-load report lands there too.
    if let Some(path) = &log_file {
        let log = std::sync::Arc::new(
            hypersweep_daemon::RotatingLog::open(path)
                .map_err(|e| format!("cannot open log file {}: {e}", path.display()))?,
        );
        hypersweep_telemetry::install_logger(std::sync::Arc::new(move |line: &str| {
            log.log(line);
        }));
    }
    let server =
        Server::bind(addr, limits.clone()).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    // Publish the managed-daemon state once bound: `hypersweep daemon
    // start` polls for this file as the readiness signal, and `status`/
    // `stop` operate on it.
    if let Some(path) = &state_file {
        let state = hypersweep_daemon::DaemonState {
            pid: std::process::id(),
            addr: bound.to_string(),
            uds: limits.uds_path.as_ref().map(|p| p.display().to_string()),
            started_unix_ms: hypersweep_daemon::now_unix_ms(),
            version: env!("CARGO_PKG_VERSION").to_string(),
        };
        state
            .write(path)
            .map_err(|e| format!("cannot write state file {}: {e}", path.display()))?;
        hypersweep_telemetry::log_line(&format!(
            "daemon: pid {} serving {bound}, state in {}",
            state.pid,
            path.display()
        ));
    }
    eprintln!(
        "hypersweep-server listening on {bound} \
         ({} workers, max dim {}, cache cap {} x{} shards, telemetry {})",
        limits.workers,
        limits.max_dim,
        limits
            .cache_capacity
            .map(|c| c.to_string())
            .unwrap_or_else(|| "unbounded".into()),
        limits.cache_shards,
        if limits.telemetry { "on" } else { "off" },
    );
    if let Some(path) = &limits.uds_path {
        eprintln!("also listening on unix socket {}", path.display());
    }
    if let Some(path) = &limits.metrics_file {
        eprintln!(
            "exporting metrics to {} every {:.1}s",
            path.display(),
            limits.metrics_interval.as_secs_f64()
        );
    }
    hypersweep_server::daemon::install_sigint_handler();
    let outcome = server.run().map_err(|e| e.to_string());
    // A graceful drain (even one that errored) retires this process's
    // claim; crashes leave the file behind for stale-state cleanup.
    if let Some(path) = &state_file {
        let _ = hypersweep_daemon::DaemonState::remove(path);
        hypersweep_telemetry::log_line("daemon: drained, state file removed");
    }
    let stats = outcome?;
    eprintln!(
        "drained after {:.1}s: {} plan / {} predict / {} audit / {} status / {} metrics, \
         {} errors, {} busy, {} timeouts",
        stats.uptime_ms as f64 / 1e3,
        stats.served.plan,
        stats.served.predict,
        stats.served.audit,
        stats.served.status,
        stats.served.metrics,
        stats.served.errors,
        stats.served.busy,
        stats.served.timeouts,
    );
    Ok(())
}

/// Flags that consume a value — used when re-walking the raw argv to
/// forward serve flags to a managed daemon child.
const VALUE_FLAGS: &[&str] = &[
    "--addr",
    "--uds",
    "--max-dim",
    "--jobs",
    "--cache-cap",
    "--cache-shards",
    "--timeout-ms",
    "--metrics-file",
    "--metrics-interval-ms",
    "--persist",
    "--state-file",
    "--log-file",
    "--state-dir",
];

/// Everything from the raw argv that should reach the managed daemon's
/// `serve` child: serve flags pass through, daemon-only flags
/// (`--state-dir`, `--force`) and the positionals (`daemon <action>`)
/// are dropped.
fn forwarded_serve_args(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg == "--state-dir" {
            i += 2;
        } else if arg == "--force" {
            i += 1;
        } else if VALUE_FLAGS.contains(&arg) {
            out.push(args[i].clone());
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
            i += 2;
        } else if arg.starts_with("--") {
            // Boolean serve flags (--no-telemetry).
            out.push(args[i].clone());
            i += 1;
        } else {
            // Positionals: `daemon` and its action.
            i += 1;
        }
    }
    out
}

/// Append `flag default` unless the forwarded args already carry it.
fn ensure_flag(args: &mut Vec<String>, flag: &str, default: &std::path::Path) {
    if !args.iter().any(|a| a == flag) {
        args.push(flag.to_string());
        args.push(default.display().to_string());
    }
}

/// `hypersweep daemon <start|status|stop|restart>`: managed lifecycle
/// over a state directory. `status` exits 0 when running and 3 when not,
/// so scripts can branch without parsing output.
fn cmd_daemon(
    action: &str,
    state_dir: PathBuf,
    force: bool,
    mut forwarded: Vec<String>,
) -> Result<ExitCode, String> {
    use hypersweep_daemon as daemon;
    let paths = daemon::DaemonPaths::new(state_dir);
    match action {
        "status" => match daemon::status(&paths).map_err(|e| e.to_string())? {
            daemon::StatusOutcome::Running(state) => {
                let uptime_s = hypersweep_daemon::now_unix_ms()
                    .saturating_sub(state.started_unix_ms) as f64
                    / 1e3;
                let uds = state
                    .uds
                    .as_deref()
                    .map(|u| format!(", uds {u}"))
                    .unwrap_or_default();
                println!(
                    "running: pid {} on {} (v{}, up {uptime_s:.1}s{uds})",
                    state.pid, state.addr, state.version
                );
                Ok(ExitCode::SUCCESS)
            }
            daemon::StatusOutcome::Stale(state) => {
                println!(
                    "not running (stale state: pid {} on {})",
                    state.pid, state.addr
                );
                Ok(ExitCode::from(3))
            }
            daemon::StatusOutcome::NotRunning => {
                println!("not running");
                Ok(ExitCode::from(3))
            }
        },
        "stop" => match daemon::stop(&paths, daemon::DEFAULT_STOP_GRACE)? {
            daemon::StopOutcome::Stopped { pid, forced } => {
                println!(
                    "stopped pid {pid}{}",
                    if forced {
                        " (SIGKILL after the grace period)"
                    } else {
                        ""
                    }
                );
                Ok(ExitCode::SUCCESS)
            }
            daemon::StopOutcome::WasStale => {
                println!("cleaned up stale state; nothing was running");
                Ok(ExitCode::SUCCESS)
            }
            daemon::StopOutcome::NotRunning => {
                println!("nothing to stop");
                Ok(ExitCode::SUCCESS)
            }
        },
        "start" | "restart" => {
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot resolve own executable: {e}"))?;
            // The managed defaults live under the state dir; explicit
            // serve flags win.
            ensure_flag(&mut forwarded, "--uds", &paths.socket_file());
            ensure_flag(&mut forwarded, "--state-file", &paths.state_file());
            ensure_flag(&mut forwarded, "--log-file", &paths.log_file());
            ensure_flag(&mut forwarded, "--persist", &paths.cache_file());
            let mut args = vec!["serve".to_string()];
            args.append(&mut forwarded);
            let mut opts = daemon::StartOptions::new(exe, args);
            opts.force = force;
            let state = if action == "restart" {
                daemon::restart(&paths, &opts)?
            } else {
                daemon::start(&paths, &opts)?
            };
            println!(
                "started: pid {} on {} (state dir {}, log {})",
                state.pid,
                state.addr,
                paths.dir().display(),
                paths.log_file().display()
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown daemon action '{other}' (expected start|status|stop|restart)"
        )),
    }
}

/// Pull `throughput_rps` out of a `bench-serve` report file.
fn read_bench_rps(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read bench report {path}: {e}"))?;
    let value = serde_json::from_str_value(&text)
        .map_err(|e| format!("bench report {path} is not JSON: {e}"))?;
    value
        .as_object()
        .map(|fields| serde::get_field(fields, "throughput_rps"))
        .and_then(|v| f64::deserialize_value(v).ok())
        .ok_or_else(|| format!("bench report {path} lacks throughput_rps"))
}

/// The telemetry overhead an enabled registry may cost before the gate
/// fails, in percent of bench-serve throughput.
const TELEMETRY_GATE_PCT: f64 = 5.0;

/// Compare two `bench-serve` reports — one taken with telemetry on, one
/// with `--no-telemetry` — and fail if the instrumented daemon lost more
/// than [`TELEMETRY_GATE_PCT`] of its throughput. Writes the comparison to
/// `out` (CI commits it as `BENCH_telemetry.json`).
fn cmd_telemetry_gate(with_path: &str, without_path: &str, out: &str) -> Result<(), String> {
    use serde::{Serialize as _, Value};
    let with_rps = read_bench_rps(with_path)?;
    let without_rps = read_bench_rps(without_path)?;
    if without_rps <= 0.0 {
        return Err(format!("baseline {without_path} reports zero throughput"));
    }
    let overhead_pct = (1.0 - with_rps / without_rps) * 100.0;
    println!(
        "telemetry-gate: {with_rps:.0} req/s instrumented vs {without_rps:.0} req/s bare \
         ({overhead_pct:+.1}% overhead, gate {TELEMETRY_GATE_PCT:.0}%)"
    );
    let json = Value::Object(vec![
        ("telemetry_on_rps".to_string(), with_rps.serialize_value()),
        (
            "telemetry_off_rps".to_string(),
            without_rps.serialize_value(),
        ),
        ("overhead_pct".to_string(), overhead_pct.serialize_value()),
        ("gate_pct".to_string(), TELEMETRY_GATE_PCT.serialize_value()),
        (
            "pass".to_string(),
            Value::Bool(overhead_pct <= TELEMETRY_GATE_PCT),
        ),
    ]);
    let text = serde_json::to_string(&json).map_err(|e| e.to_string())?;
    std::fs::write(out, text + "\n").map_err(|e| e.to_string())?;
    eprintln!("wrote {out}");
    if overhead_pct > TELEMETRY_GATE_PCT {
        return Err(format!(
            "REGRESSION: telemetry costs {overhead_pct:.1}% of throughput \
             (gate: {TELEMETRY_GATE_PCT:.0}%)"
        ));
    }
    Ok(())
}

/// Per-dimension `bench-check` measurement.
#[derive(serde::Serialize, serde::Deserialize)]
struct CheckBenchEntry {
    d: u32,
    schedules: u64,
    schedules_per_sec: f64,
    /// Oracle events streamed through the invariant monitors per second.
    events_per_sec: f64,
}

/// The committed `BENCH_check.json` shape.
#[derive(serde::Serialize, serde::Deserialize)]
struct CheckBenchReport {
    schema: String,
    strategy: String,
    stride: u64,
    jobs: usize,
    dims: Vec<CheckBenchEntry>,
}

/// `hypersweep bench-check`: campaign throughput (schedules/s and oracle
/// events/s) at `BENCH_CHECK_DIMS` (default 10,12,14), written to
/// `BENCH_check.json`. With `BENCH_CHECK_BASELINE=<path>` it compares
/// against a committed baseline instead and fails on a >25% regression —
/// the same contract as the audit-throughput and bench-serve gates.
fn cmd_bench_check(out: &str, jobs: usize) -> Result<(), String> {
    use std::time::{Duration, Instant};
    let budget = Duration::from_millis(
        std::env::var("BENCH_CHECK_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300),
    );
    let dims: Vec<u32> = match std::env::var("BENCH_CHECK_DIMS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|e| format!("BENCH_CHECK_DIMS entry '{t}': {e}"))
            })
            .collect::<Result<_, _>>()?,
        Err(_) => vec![10, 12, 14],
    };
    let schedules: u64 = std::env::var("BENCH_CHECK_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let strategy_name =
        std::env::var("BENCH_CHECK_STRATEGY").unwrap_or_else(|_| "cloning".to_string());
    let strategy = CheckStrategy::parse(&strategy_name)
        .ok_or_else(|| format!("BENCH_CHECK_STRATEGY '{strategy_name}' is unknown"))?;

    let mut entries = Vec::new();
    for &d in &dims {
        let mut cfg = CheckConfig::new(strategy, d);
        cfg.stride = 1;
        cfg.validate()?;
        let campaign = hypersweep_analysis::CheckCampaign {
            cfg,
            schedules,
            seed: 0,
            planted: None,
        };
        // Fastest run within the budget: the minimum is far more stable
        // than the mean on shared machines, which matters for the gate.
        let started = Instant::now();
        let mut best = Duration::MAX;
        let mut events = 0u64;
        loop {
            let registry = hypersweep_telemetry::MetricsRegistry::new();
            let t0 = Instant::now();
            let outcome = hypersweep_analysis::run_campaign(&campaign, jobs, &registry);
            let elapsed = t0.elapsed();
            if let Some(c) = &outcome.counterexample {
                return Err(format!(
                    "bench campaign found a real violation at d={d} schedule {} — \
                     fix the checker before benchmarking it",
                    c.schedule
                ));
            }
            if elapsed < best {
                best = elapsed;
                events = registry.snapshot().counter("check.events").unwrap_or(0);
            }
            if started.elapsed() >= budget {
                break;
            }
        }
        let entry = CheckBenchEntry {
            d,
            schedules,
            schedules_per_sec: schedules as f64 / best.as_secs_f64(),
            events_per_sec: events as f64 / best.as_secs_f64(),
        };
        println!(
            "bench-check/d{}: {:.3e} schedules/s, {:.3e} oracle events/s ({} schedules, {} events)",
            d, entry.schedules_per_sec, entry.events_per_sec, schedules, events
        );
        entries.push(entry);
    }
    let report = CheckBenchReport {
        schema: "hypersweep-check-bench/v1".into(),
        strategy: strategy_name,
        stride: 1,
        jobs,
        dims: entries,
    };

    if let Ok(baseline_path) = std::env::var("BENCH_CHECK_BASELINE") {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
        let baseline: CheckBenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("baseline {baseline_path} does not parse: {e}"))?;
        if baseline.schema != report.schema {
            return Err(format!(
                "baseline schema '{}' != '{}'; regenerate {baseline_path}",
                baseline.schema, report.schema
            ));
        }
        let mut regressed = false;
        for entry in &report.dims {
            let Some(base) = baseline.dims.iter().find(|b| b.d == entry.d) else {
                continue;
            };
            let checks = [
                ("schedules", entry.schedules_per_sec, base.schedules_per_sec),
                ("events", entry.events_per_sec, base.events_per_sec),
            ];
            for (label, got, expected) in checks {
                let ratio = got / expected;
                println!(
                    "bench-check/gate/{label}/d{}: {ratio:.2}x of baseline",
                    entry.d
                );
                if ratio < 0.75 {
                    eprintln!(
                        "REGRESSION ({label}) at d={}: {got:.3e}/s vs baseline \
                         {expected:.3e}/s (>25% slower)",
                        entry.d
                    );
                    regressed = true;
                }
            }
        }
        if regressed {
            return Err("bench-check regressed against the committed baseline".into());
        }
    } else {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(out, json + "\n").map_err(|e| e.to_string())?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn cmd_bench_serve(cfg: &BenchConfig, out: &str) -> Result<(), String> {
    let report = run_bench(cfg).map_err(|e| format!("bench against {} failed: {e}", cfg.addr))?;
    println!(
        "bench-serve: {} connections x {} requests over {} (depth {}) -> {:.0} req/s \
         (p50 {:.0}us, p99 {:.0}us, {:.0}% cache hits, {:.0}% table hits, {} busy, {} errors)",
        report.clients,
        report.requests_per_client,
        report.transport,
        report.pipeline_depth,
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.cache_hit_rate * 100.0,
        report.table_hit_rate * 100.0,
        report.busy,
        report.errors,
    );
    // CI regression gate, mirroring the audit-throughput bench: with a
    // committed baseline in the environment, compare instead of rewriting.
    if let Ok(baseline_path) = std::env::var("BENCH_SERVE_BASELINE") {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
        let value = serde_json::from_str_value(&text)
            .map_err(|e| format!("baseline {baseline_path} is not JSON: {e}"))?;
        let baseline_rps = value
            .as_object()
            .map(|fields| serde::get_field(fields, "throughput_rps"))
            .and_then(|v| f64::deserialize_value(v).ok())
            .ok_or_else(|| format!("baseline {baseline_path} lacks throughput_rps"))?;
        let ratio = report.throughput_rps / baseline_rps;
        println!("bench-serve/check: {ratio:.2}x of baseline");
        if ratio < 0.75 {
            return Err(format!(
                "REGRESSION: {:.0} req/s vs baseline {baseline_rps:.0} (>25% slower)",
                report.throughput_rps
            ));
        }
    } else {
        std::fs::write(out, report.to_json() + "\n").map_err(|e| e.to_string())?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut full = false;
    let mut fast = false;
    let mut timings = false;
    let mut json_dir: Option<PathBuf> = None;
    let mut policy = Policy::Fifo;
    let mut stride: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut max_dim: Option<u32> = None;
    let mut cache_cap: Option<usize> = None;
    let mut addr = "127.0.0.1:7071".to_string();
    let mut uds: Option<PathBuf> = None;
    let mut clients: usize = 4;
    let mut requests: usize = 64;
    let mut pipeline_depth: usize = 1;
    let mut cache_shards: Option<usize> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut metrics_file: Option<PathBuf> = None;
    let mut metrics_interval_ms: Option<u64> = None;
    let mut no_telemetry = false;
    let mut persist: Option<PathBuf> = None;
    let mut state_file: Option<PathBuf> = None;
    let mut log_file: Option<PathBuf> = None;
    let mut state_dir: Option<PathBuf> = None;
    let mut force = false;
    let mut check_strategy = "all".to_string();
    let mut check_dim: u32 = 6;
    let mut scenario = "hypercube".to_string();
    let mut instance: Option<String> = None;
    let mut schedules: u64 = 200;
    let mut seed: u64 = 0;
    let mut max_steps: u64 = 0;
    let mut planted: Option<u64> = None;
    let mut replay_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--fast" => fast = true,
            "--timings" => timings = true,
            "--no-telemetry" => no_telemetry = true,
            "--force" => force = true,
            "--persist" => {
                i += 1;
                match args.get(i) {
                    Some(p) => persist = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--persist needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--state-file" => {
                i += 1;
                match args.get(i) {
                    Some(p) => state_file = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--state-file needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--log-file" => {
                i += 1;
                match args.get(i) {
                    Some(p) => log_file = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--log-file needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--state-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => state_dir = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--state-dir needs a directory\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--metrics-file" => {
                i += 1;
                match args.get(i) {
                    Some(p) => metrics_file = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--metrics-file needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--metrics-interval-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(v) if v >= 1 => metrics_interval_ms = Some(v),
                    _ => {
                        eprintln!(
                            "--metrics-interval-ms needs a positive integer\n{}",
                            usage()
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => json_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--json needs a directory\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v >= 1 => jobs = Some(v),
                    _ => {
                        eprintln!("--jobs needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-dim" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(v) => match validate_max_dim(v) {
                        Ok(v) => max_dim = Some(v),
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("--max-dim needs an integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--cache-cap" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(v) => match validate_cache_cap(v) {
                        Ok(v) => cache_cap = Some(v),
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("--cache-cap needs an integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) => addr = a.clone(),
                    None => {
                        eprintln!("--addr needs a host:port\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--uds" => {
                i += 1;
                match args.get(i) {
                    Some(p) => uds = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--uds needs a socket path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            // `--connections` is the pipelined-bench spelling; `--clients`
            // stays as the original alias.
            "--clients" | "--connections" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v >= 1 => clients = v,
                    _ => {
                        eprintln!("--connections needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--pipeline-depth" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v >= 1 => pipeline_depth = v,
                    _ => {
                        eprintln!("--pipeline-depth needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--cache-shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(v) => match validate_cache_shards(v) {
                        Ok(v) => cache_shards = Some(v),
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("--cache-shards needs an integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--requests" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v >= 1 => requests = v,
                    _ => {
                        eprintln!("--requests needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--timeout-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v >= 1 => timeout_ms = Some(v),
                    _ => {
                        eprintln!("--timeout-ms needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => {
                        eprintln!("--out needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--strategy" => {
                i += 1;
                match args.get(i) {
                    Some(s) => check_strategy = s.clone(),
                    None => {
                        eprintln!("--strategy needs a value\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scenario" => {
                i += 1;
                match args.get(i) {
                    Some(s) => scenario = s.clone(),
                    None => {
                        eprintln!("--scenario needs a value\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--instance" => {
                i += 1;
                match args.get(i) {
                    Some(s) => instance = Some(s.clone()),
                    None => {
                        eprintln!("--instance needs a value\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--dim" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(v) if v >= 1 => check_dim = v,
                    _ => {
                        eprintln!("--dim needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--schedules" | "--campaign-size" => {
                let flag = args[i].clone();
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(v) => match hypersweep_analysis::validate_campaign_size(v) {
                        Ok(v) => schedules = v,
                        Err(e) => {
                            eprintln!("{flag}: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("{flag} needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--plant" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(v) => planted = Some(v),
                    None => {
                        eprintln!("--plant needs a schedule index\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(v) => seed = v,
                    None => {
                        eprintln!("--seed needs an integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-steps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(v) => max_steps = v,
                    None => {
                        eprintln!("--max-steps needs an integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--replay" => {
                i += 1;
                match args.get(i) {
                    Some(p) => replay_path = Some(p.clone()),
                    None => {
                        eprintln!("--replay needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--stride" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(v) => match hypersweep_analysis::validate_stride(v) {
                        Ok(v) => stride = Some(v as usize),
                        Err(e) => {
                            eprintln!("--stride: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("--stride needs a positive integer\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--policy" => {
                i += 1;
                match args.get(i).map(|s| parse_policy(s)) {
                    Some(Ok(p)) => policy = p,
                    Some(Err(e)) => {
                        eprintln!("{e}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("--policy needs a value\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let result = match positional.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("report") if positional.len() == 2 && positional[1] == "scenarios" => {
            cmd_report_scenarios(check_dim)
        }
        Some("report") if positional.len() >= 2 => cmd_report(
            &positional[1..],
            full,
            max_dim,
            json_dir,
            jobs.unwrap_or_else(default_jobs),
            cache_cap,
            timings,
        ),
        Some("figures") => cmd_report(
            &["f1", "f2", "f3", "f4"].map(String::from),
            full,
            max_dim,
            json_dir,
            jobs.unwrap_or_else(default_jobs),
            cache_cap,
            timings,
        ),
        Some("check") if positional.len() == 1 => match &replay_path {
            Some(path) => cmd_check_replay(path),
            None => {
                let opts = CheckCampaignOpts {
                    schedules,
                    seed,
                    jobs: jobs.unwrap_or_else(default_jobs),
                    max_steps,
                    stride: stride.map(|v| v as u64).unwrap_or(0),
                    planted,
                    timings,
                };
                match ScenarioId::parse(&scenario) {
                    None => Err(format!(
                        "unknown scenario '{scenario}' (known: hypercube, grid, dynamic)"
                    )),
                    Some(ScenarioId::Hypercube) => {
                        cmd_check(&check_strategy, check_dim, &opts, out.as_deref())
                    }
                    Some(id) => cmd_check_scenario(
                        id,
                        &check_strategy,
                        check_dim,
                        instance.as_deref(),
                        &opts,
                    ),
                }
            }
        },
        Some("serve") if positional.len() == 1 => {
            let mut limits = ServerLimits::default();
            if let Some(v) = max_dim {
                limits.max_dim = v;
            }
            if let Some(v) = jobs {
                limits.workers = v;
            }
            if let Some(v) = cache_cap {
                limits.cache_capacity = Some(v);
            }
            if let Some(v) = timeout_ms {
                limits.request_timeout = std::time::Duration::from_millis(v);
            }
            limits.telemetry = !no_telemetry;
            limits.metrics_file = metrics_file.clone();
            if let Some(v) = metrics_interval_ms {
                limits.metrics_interval = std::time::Duration::from_millis(v);
            }
            if let Some(v) = cache_shards {
                limits.cache_shards = v;
            }
            limits.uds_path = uds.clone();
            limits.persist_path = persist.clone();
            cmd_serve(&addr, limits, state_file.clone(), log_file.clone())
        }
        Some("daemon") if positional.len() == 2 => {
            let dir = state_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from(".hypersweep-daemon"));
            return match cmd_daemon(&positional[1], dir, force, forwarded_serve_args(&args)) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("bench-check") if positional.len() == 1 => cmd_bench_check(
            out.as_deref().unwrap_or("BENCH_check.json"),
            jobs.unwrap_or_else(default_jobs),
        ),
        Some("bench-serve") if positional.len() == 1 => cmd_bench_serve(
            &BenchConfig {
                addr: addr.clone(),
                uds: uds.clone(),
                clients,
                requests,
                pipeline_depth,
                max_dim: max_dim.unwrap_or(8),
            },
            out.as_deref().unwrap_or("BENCH_serve.json"),
        ),
        Some("telemetry-gate") if positional.len() == 3 => cmd_telemetry_gate(
            &positional[1],
            &positional[2],
            out.as_deref().unwrap_or("BENCH_telemetry.json"),
        ),
        Some("run") if positional.len() == 3 => match positional[2].parse::<u32>() {
            Ok(d) if (1..=hypersweep_topology::MAX_DIMENSION).contains(&d) => {
                cmd_run(&positional[1], d, policy, fast)
            }
            _ => Err(format!("bad dimension '{}'", positional[2])),
        },
        Some("watch") if positional.len() == 3 => match positional[2].parse::<u32>() {
            Ok(d) if (1..=8).contains(&d) => cmd_watch(&positional[1], d, stride.unwrap_or(8)),
            _ => Err(format!(
                "watch needs a dimension in 1..=8, got '{}'",
                positional[2]
            )),
        },
        Some("trace") if positional.len() == 4 => match positional[2].parse::<u32>() {
            Ok(d) if (1..=14).contains(&d) => cmd_trace(&positional[1], d, &positional[3]),
            _ => Err(format!(
                "trace needs a dimension in 1..=14, got '{}'",
                positional[2]
            )),
        },
        Some("audit") if positional.len() == 3 => match positional[1].parse::<u32>() {
            Ok(d) if (1..=14).contains(&d) => cmd_audit(d, &positional[2]),
            _ => Err(format!(
                "audit needs a dimension in 1..=14, got '{}'",
                positional[1]
            )),
        },
        _ => Err(usage().to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
