//! Scheduling policies — the asynchronous adversary.
//!
//! In the paper's model every agent action takes a finite but unpredictable
//! amount of time; equivalently, an adversary decides which pending agent
//! completes its next action. A strategy is correct only if it works under
//! *every* adversary. The test suites run each strategy under all of the
//! policies below (and many random seeds).

use serde::{Deserialize, Serialize};

/// A scheduling policy for the discrete-event engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First-in-first-out over the runnable queue: breadth-like, fair.
    Fifo,
    /// Last-in-first-out: depth-like — one agent races ahead as far as it
    /// can before anyone else moves.
    Lifo,
    /// Rotates through agents by id.
    RoundRobin,
    /// Picks uniformly at random among runnable agents with the given seed
    /// (deterministic for a fixed seed).
    Random(u64),
    /// Lock-step rounds: every active agent acts once per round, moves
    /// apply simultaneously at the round boundary. The number of rounds in
    /// which at least one edge is traversed is the paper's *ideal time*.
    Synchronous,
}

impl Policy {
    /// All asynchronous policies with `seeds` random variants — the
    /// adversary family used by the correctness tests.
    pub fn adversaries(seeds: u64) -> Vec<Policy> {
        let mut v = vec![Policy::Fifo, Policy::Lifo, Policy::RoundRobin];
        v.extend((0..seeds).map(Policy::Random));
        v
    }

    /// Whether this policy runs in lock-step rounds.
    pub fn is_synchronous(self) -> bool {
        matches!(self, Policy::Synchronous)
    }

    /// A short, stable name for reports.
    pub fn name(self) -> String {
        match self {
            Policy::Fifo => "fifo".into(),
            Policy::Lifo => "lifo".into(),
            Policy::RoundRobin => "round-robin".into(),
            Policy::Random(seed) => format!("random[{seed}]"),
            Policy::Synchronous => "synchronous".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_family_size() {
        assert_eq!(Policy::adversaries(0).len(), 3);
        assert_eq!(Policy::adversaries(5).len(), 8);
    }

    #[test]
    fn names_are_distinct() {
        let all = Policy::adversaries(3);
        let mut names: Vec<_> = all.iter().map(|p| p.name()).collect();
        names.push(Policy::Synchronous.name());
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn synchrony_flag() {
        assert!(Policy::Synchronous.is_synchronous());
        assert!(!Policy::Fifo.is_synchronous());
        assert!(!Policy::Random(9).is_synchronous());
    }
}
