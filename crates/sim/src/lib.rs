//! Execution substrate for asynchronous mobile agents with whiteboards.
//!
//! The paper's model (§1.1/§2): a team of identical autonomous agents moves
//! from node to neighbouring node of a hypercube; each action takes a
//! finite but unpredictable amount of time (asynchrony); agents communicate
//! exclusively through `O(log n)`-bit whiteboards accessed in fair mutual
//! exclusion; in the *visibility* model of §4 an agent can additionally see
//! whether each neighbour is clean, guarded or contaminated.
//!
//! This crate realizes the model twice:
//!
//! * [`engine::Engine`] — a deterministic discrete-event executor. The
//!   asynchronous adversary is a pluggable [`policy::Policy`] deciding which
//!   pending agent acts next; correctness of a strategy must hold under
//!   every policy. The special [`policy::Policy::Synchronous`] policy runs
//!   lock-step rounds and yields the paper's *ideal time* (one unit per
//!   edge traversal).
//! * [`threaded::ThreadedExecutor`] — the same agent programs running on
//!   real OS threads with `parking_lot` whiteboard locks; true hardware
//!   asynchrony as a fidelity cross-check.
//!
//! Both emit the same linearized [`event::Event`] stream, which the
//! `hypersweep-intruder` crate consumes to verify monotonicity, contiguity
//! and capture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod metrics;
pub mod policy;
pub mod program;
pub mod sink;
pub mod state;
pub mod threaded;

pub use engine::{Engine, EngineConfig, RoundOutcome, RunError, RunReport};
pub use event::{AgentId, Event, EventKind, Role};
pub use metrics::Metrics;
pub use policy::Policy;
pub use program::{Action, AgentProgram, Board, Ctx};
pub use sink::{EventSink, MeteredSink, NullSink, SummarizingSink, TraceSummary};
pub use state::NodeState;
