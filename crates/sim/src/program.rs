//! The agent programming model: whiteboards, local views, actions.

use hypersweep_topology::{Hypercube, Node};

use crate::event::AgentId;
use crate::state::NodeState;

/// Per-node whiteboard contents.
///
/// §2: "each node has a local storage area called whiteboard (`O(log n)`
/// bits of memory suffice for all our algorithms)". Implementations report
/// how many bits of information they actually encode through
/// [`Board::bits_used`]; executors meter the maximum so the claim can be
/// checked experimentally.
pub trait Board: Clone + Default + Send + 'static {
    /// Upper bound (in bits) on the information currently stored.
    fn bits_used(&self) -> u32;
}

/// A trivial whiteboard for strategies that need none.
impl Board for () {
    fn bits_used(&self) -> u32 {
        0
    }
}

/// What an agent may do at the end of one activation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Do nothing; the agent is parked until something changes at its node
    /// (or, in the visibility model, at a neighbouring node).
    Wait,
    /// Slide along the edge with the given port label (`1..=d`).
    Move(u32),
    /// Create a copy of oneself on the neighbour across the given port
    /// (§5's cloning variant). Counted as one move.
    Clone(u32),
    /// Stop executing and remain on the current node as a guard forever.
    Terminate,
}

/// The local view an agent receives when activated.
///
/// Everything here is information the paper's model makes locally
/// available: the node's identity and port labels (stored on the
/// whiteboard, §2), the whiteboard itself (read/write), the number of
/// agents currently present (maintained on the whiteboard by the
/// strategies), the states of neighbouring nodes (visibility model only),
/// and the global round number (synchronous model only).
pub struct Ctx<'a, B> {
    pub(crate) cube: Hypercube,
    pub(crate) node: Node,
    pub(crate) agent: AgentId,
    pub(crate) alive_here: u32,
    pub(crate) board: &'a mut B,
    pub(crate) dirty: bool,
    pub(crate) neighbor_states: Option<&'a [NodeState]>,
    pub(crate) round: Option<u64>,
}

impl<'a, B> Ctx<'a, B> {
    /// The hypercube being searched (agents know the topology, §2).
    #[inline]
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// The node the agent currently resides on.
    #[inline]
    pub fn node(&self) -> Node {
        self.node
    }

    /// This agent's identifier (unique within the run).
    #[inline]
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// Number of *active* (non-terminated) agents on this node, including
    /// the caller.
    #[inline]
    pub fn active_here(&self) -> u32 {
        self.alive_here
    }

    /// Read the whiteboard.
    #[inline]
    pub fn board(&self) -> &B {
        self.board
    }

    /// Write access to the whiteboard; marks it dirty so the executor can
    /// wake waiting agents and meter bit usage.
    #[inline]
    pub fn board_mut(&mut self) -> &mut B {
        self.dirty = true;
        self.board
    }

    /// The state of the neighbour across `port` (`1..=d`).
    ///
    /// # Panics
    ///
    /// Panics if the executor was not configured with visibility — calling
    /// this from a non-visibility strategy is a model violation, not a
    /// recoverable condition.
    #[inline]
    pub fn neighbor_state(&self, port: u32) -> NodeState {
        let states = self
            .neighbor_states
            .expect("neighbor_state requires the visibility model (EngineConfig::visibility)");
        states[(port - 1) as usize]
    }

    /// Whether every *smaller neighbour* (Definition 2) of the current node
    /// is clean or guarded — the guard condition of Algorithm 2's rule.
    pub fn smaller_neighbors_safe(&self) -> bool {
        (1..=self.node.msb_position()).all(|p| self.neighbor_state(p).is_safe())
    }

    /// The current round under the synchronous policy, `None` under
    /// asynchronous policies. The §5 synchronous variant moves exactly at
    /// round `m(x)`.
    #[inline]
    pub fn round(&self) -> Option<u64> {
        self.round
    }
}

/// An agent program: a deterministic local rule driven by activations.
///
/// The executor activates an agent; the program inspects its [`Ctx`]
/// (including read/write whiteboard access under the node's implicit mutual
/// exclusion) and returns one [`Action`]. Local state lives in `self`; the
/// paper allows `O(log n)` bits of it, which [`AgentProgram::local_bits`]
/// reports for metering.
pub trait AgentProgram: Send + 'static {
    /// The whiteboard type this strategy uses.
    type Board: Board;

    /// One activation.
    fn step(&mut self, ctx: &mut Ctx<'_, Self::Board>) -> Action;

    /// Create the program state for a clone spawned by [`Action::Clone`].
    ///
    /// The default panics; strategies that clone must override it.
    fn clone_program(&self) -> Self
    where
        Self: Sized,
    {
        unimplemented!("this strategy does not clone agents")
    }

    /// Upper bound (in bits) on the agent's current local state, for
    /// metering the `O(log n)` local-memory claim.
    fn local_bits(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_board_uses_no_bits() {
        assert_eq!(<() as Board>::bits_used(&()), 0);
    }

    #[test]
    fn ctx_accessors() {
        let mut board = ();
        let states = [NodeState::Clean, NodeState::Contaminated];
        let ctx = Ctx {
            cube: Hypercube::new(2),
            node: Node(0b10),
            agent: 7,
            alive_here: 3,
            board: &mut board,
            dirty: false,
            neighbor_states: Some(&states),
            round: Some(4),
        };
        assert_eq!(ctx.node(), Node(2));
        assert_eq!(ctx.agent_id(), 7);
        assert_eq!(ctx.active_here(), 3);
        assert_eq!(ctx.round(), Some(4));
        assert_eq!(ctx.neighbor_state(1), NodeState::Clean);
        assert_eq!(ctx.neighbor_state(2), NodeState::Contaminated);
        // Node 0b10: m = 2, smaller neighbours are ports 1 and 2; port 2 is
        // contaminated, so the guard condition fails.
        assert!(!ctx.smaller_neighbors_safe());
    }

    #[test]
    fn board_mut_sets_dirty() {
        let mut board = ();
        let mut ctx = Ctx {
            cube: Hypercube::new(1),
            node: Node(0),
            agent: 0,
            alive_here: 1,
            board: &mut board,
            dirty: false,
            neighbor_states: None,
            round: None,
        };
        assert!(!ctx.dirty);
        let _ = ctx.board_mut();
        assert!(ctx.dirty);
    }

    #[test]
    #[should_panic(expected = "visibility")]
    fn neighbor_state_without_visibility_panics() {
        let mut board = ();
        let ctx = Ctx::<()> {
            cube: Hypercube::new(1),
            node: Node(0),
            agent: 0,
            alive_here: 1,
            board: &mut board,
            dirty: false,
            neighbor_states: None,
            round: None,
        };
        let _ = ctx.neighbor_state(1);
    }
}
