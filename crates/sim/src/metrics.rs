//! Run metrics — the quantities the paper's theorems bound.

use serde::{Deserialize, Serialize};

/// Aggregate counters collected by every executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Edge traversals by `Role::Worker` agents (Theorem 3's "moves
    /// performed by the agents"; Theorem 8's total).
    pub worker_moves: u64,
    /// Edge traversals by the `Role::Coordinator` (synchronizer) agent.
    pub coordinator_moves: u64,
    /// Agents ever created (spawns plus clones) — the team size.
    pub team_size: u64,
    /// Maximum number of agents simultaneously away from the homebase
    /// (counting terminated guards). For Algorithm CLEAN this peaks at
    /// Lemma 4's worker count plus the synchronizer; for the visibility
    /// strategy it reaches `n/2` when the last wave leaves the root.
    pub peak_away: u64,
    /// Rounds in which at least one edge was traversed, under the
    /// synchronous policy — the paper's *ideal time*. `None` for
    /// asynchronous policies.
    pub ideal_time: Option<u64>,
    /// Total activations processed (scheduling granularity, not a paper
    /// metric; useful for engine benchmarks).
    pub activations: u64,
    /// Maximum whiteboard occupancy observed, in bits (the paper claims
    /// `O(log n)` suffices).
    pub peak_board_bits: u32,
    /// Maximum agent-local state observed, in bits (also claimed
    /// `O(log n)`).
    pub peak_local_bits: u32,
}

impl Metrics {
    /// Total edge traversals.
    pub fn total_moves(&self) -> u64 {
        self.worker_moves + self.coordinator_moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum() {
        let m = Metrics {
            worker_moves: 10,
            coordinator_moves: 4,
            ..Metrics::default()
        };
        assert_eq!(m.total_moves(), 14);
    }
}
