//! The deterministic discrete-event executor.
//!
//! The engine owns the agents, the per-node whiteboards and the node
//! occupancy, and repeatedly activates one agent chosen by the configured
//! [`Policy`]. An activation runs the agent's [`AgentProgram::step`] under
//! the node's (implicit) whiteboard mutual exclusion and applies the
//! returned [`Action`] atomically. Moves are atomic slides; the event
//! stream is therefore a linearization against which the
//! `hypersweep-intruder` monitors verify contamination semantics.
//!
//! Under [`Policy::Synchronous`] the engine instead runs lock-step rounds:
//! all agents decide against the round-start snapshot, then all moves apply
//! simultaneously. The number of rounds containing at least one edge
//! traversal is the paper's *ideal time*.

use std::collections::VecDeque;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hypersweep_topology::{Hypercube, Node, NodeSet};

use crate::event::{AgentId, Event, EventKind, Role};
use crate::metrics::Metrics;
use crate::policy::Policy;
use crate::program::{Action, AgentProgram, Board, Ctx};
use crate::state::NodeState;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Which adversary schedules the agents.
    pub policy: Policy,
    /// Whether agents may observe neighbour states (§4's model). Without
    /// it, [`Ctx::neighbor_state`] panics.
    pub visibility: bool,
    /// Record the full event stream (needed by the monitors; disable for
    /// large benchmark runs).
    pub record_events: bool,
    /// Hard cap on activations, to turn accidental livelocks into errors.
    pub max_activations: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: Policy::Fifo,
            visibility: false,
            record_events: true,
            max_activations: 500_000_000,
        }
    }
}

/// Why a run ended unsuccessfully.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// No agent can make progress but some have not terminated.
    Deadlock {
        /// Agents still alive (not terminated).
        waiting: usize,
    },
    /// The activation cap was reached (livelock or runaway strategy).
    ActivationLimit,
    /// An agent attempted an invalid action (bad port, clone without
    /// support, …).
    InvalidAction {
        /// The offending agent.
        agent: AgentId,
        /// Description of the violation.
        message: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { waiting } => {
                write!(f, "deadlock: {waiting} agents parked forever")
            }
            RunError::ActivationLimit => write!(f, "activation limit reached"),
            RunError::InvalidAction { agent, message } => {
                write!(f, "agent {agent} performed an invalid action: {message}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Outcome of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Aggregate counters.
    pub metrics: Metrics,
    /// The linearized event stream (empty if recording was disabled).
    pub events: Vec<Event>,
    /// Nodes that ended the run visited, as a packed bitset.
    pub visited: NodeSet,
    /// Final occupancy (guards, including terminated agents) per node.
    pub occupancy: Vec<u32>,
}

impl RunReport {
    /// Whether every node of the cube was visited — necessary for a
    /// successful decontamination.
    pub fn all_visited(&self) -> bool {
        self.visited.count_ones() == self.visited.universe()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AgentStatus {
    Runnable,
    Parked,
    Terminated,
}

struct AgentSlot<P> {
    program: P,
    pos: Node,
    role: Role,
    status: AgentStatus,
}

/// An action decided during a lock-step round, applied at the boundary.
enum Deferred {
    Move(AgentId, u32),
    Clone(AgentId, u32),
    Terminate(AgentId),
}

/// Round-scoped buffers for [`Engine::sync_round`], reused across rounds.
#[derive(Default)]
struct SyncBufs {
    snapshot: Vec<NodeState>,
    active_snapshot: Vec<u32>,
    neighbor_scratch: Vec<NodeState>,
    deferred: Vec<Deferred>,
}

/// What one lock-step round did (see [`Engine::step_round`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundOutcome {
    /// At least one edge was traversed (a move or a clone materialized).
    pub moved: bool,
    /// At least one agent returned a non-`Wait` action.
    pub acted: bool,
    /// At least one whiteboard write happened.
    pub wrote: bool,
    /// Every agent has terminated after this round.
    pub done: bool,
}

/// The discrete-event executor. See the module docs.
pub struct Engine<P: AgentProgram> {
    cube: Hypercube,
    cfg: EngineConfig,
    agents: Vec<AgentSlot<P>>,
    boards: Vec<P::Board>,
    /// All occupants (terminated guards included).
    occupancy: Vec<u32>,
    /// Non-terminated occupants.
    active_here: Vec<u32>,
    visited: NodeSet,
    /// Reusable buffer for visibility snapshots in [`Engine::activate`].
    nbr_scratch: Vec<NodeState>,
    parked_at: Vec<Vec<AgentId>>,
    runnable: VecDeque<AgentId>,
    in_runnable: Vec<bool>,
    rr_cursor: usize,
    rng: ChaCha8Rng,
    events: Vec<Event>,
    metrics: Metrics,
    away_now: u64,
    clock: u64,
}

impl<P: AgentProgram> Engine<P> {
    /// Create an engine over `cube` with the given configuration.
    pub fn new(cube: Hypercube, cfg: EngineConfig) -> Self {
        let n = cube.node_count();
        let seed = match cfg.policy {
            Policy::Random(s) => s,
            _ => 0,
        };
        Engine {
            cube,
            cfg,
            agents: Vec::new(),
            boards: (0..n).map(|_| P::Board::default()).collect(),
            occupancy: vec![0; n],
            active_here: vec![0; n],
            visited: NodeSet::new(n),
            nbr_scratch: Vec::new(),
            parked_at: vec![Vec::new(); n],
            runnable: VecDeque::new(),
            in_runnable: Vec::new(),
            rr_cursor: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
            events: Vec::new(),
            metrics: Metrics::default(),
            away_now: 0,
            clock: 0,
        }
    }

    /// The hypercube being searched.
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// Place a new agent on `node` (the paper always spawns at the
    /// homebase `00…0`, but tests may spawn elsewhere).
    pub fn spawn(&mut self, program: P, node: Node, role: Role) -> AgentId {
        let id = self.agents.len() as AgentId;
        self.agents.push(AgentSlot {
            program,
            pos: node,
            role,
            status: AgentStatus::Runnable,
        });
        self.occupancy[node.index()] += 1;
        self.active_here[node.index()] += 1;
        self.visited.insert(node);
        if node != Node::ROOT {
            self.away_now += 1;
        }
        self.metrics.team_size += 1;
        self.metrics.peak_away = self.metrics.peak_away.max(self.away_now);
        self.in_runnable.push(true);
        self.runnable.push_back(id);
        self.emit(EventKind::Spawn {
            agent: id,
            node,
            role,
        });
        id
    }

    fn emit(&mut self, kind: EventKind) {
        if self.cfg.record_events {
            self.events.push(Event {
                time: self.clock,
                kind,
            });
        }
    }

    /// Engine-reported node state: optimistic for monotone strategies (see
    /// [`NodeState`] docs); independently audited by the monitors.
    pub fn node_state(&self, node: Node) -> NodeState {
        if self.occupancy[node.index()] > 0 {
            NodeState::Guarded
        } else if self.visited.contains(node) {
            NodeState::Clean
        } else {
            NodeState::Contaminated
        }
    }

    fn make_runnable(&mut self, id: AgentId) {
        if self.agents[id as usize].status == AgentStatus::Parked {
            self.agents[id as usize].status = AgentStatus::Runnable;
        }
        if self.agents[id as usize].status == AgentStatus::Runnable
            && !self.in_runnable[id as usize]
        {
            self.in_runnable[id as usize] = true;
            // Round-robin scans the flags directly; pushing would let the
            // queue grow without bound since that policy never pops it.
            if !matches!(self.cfg.policy, Policy::RoundRobin) {
                self.runnable.push_back(id);
            }
        }
    }

    /// Wake every agent parked at `node`.
    fn wake_at(&mut self, node: Node) {
        let parked = std::mem::take(&mut self.parked_at[node.index()]);
        for id in parked {
            self.make_runnable(id);
        }
    }

    /// Wake after a *state-visible* change at `node`: agents there, and —
    /// in the visibility model — agents on every neighbour.
    fn wake_visible(&mut self, node: Node) {
        self.wake_at(node);
        if self.cfg.visibility {
            for p in 1..=self.cube.dim() {
                self.wake_at(node.flip(p));
            }
        }
    }

    fn park(&mut self, id: AgentId) {
        let slot = &mut self.agents[id as usize];
        if slot.status == AgentStatus::Runnable {
            slot.status = AgentStatus::Parked;
            let pos = slot.pos;
            self.parked_at[pos.index()].push(id);
        }
    }

    fn pick(&mut self) -> Option<AgentId> {
        match self.cfg.policy {
            Policy::Fifo => loop {
                let id = self.runnable.pop_front()?;
                if self.in_runnable[id as usize] {
                    self.in_runnable[id as usize] = false;
                    return Some(id);
                }
            },
            Policy::Lifo => loop {
                let id = self.runnable.pop_back()?;
                if self.in_runnable[id as usize] {
                    self.in_runnable[id as usize] = false;
                    return Some(id);
                }
            },
            Policy::Random(_) => {
                // Drop stale entries lazily, then pick uniformly.
                while let Some(&front) = self.runnable.front() {
                    if self.in_runnable[front as usize] {
                        break;
                    }
                    self.runnable.pop_front();
                }
                if self.runnable.is_empty() {
                    return None;
                }
                loop {
                    let i = self.rng.random_range(0..self.runnable.len());
                    let id = self.runnable[i];
                    if self.in_runnable[id as usize] {
                        self.runnable.remove(i);
                        self.in_runnable[id as usize] = false;
                        return Some(id);
                    }
                    self.runnable.remove(i);
                    if self.runnable.is_empty() {
                        return None;
                    }
                }
            }
            Policy::RoundRobin => {
                let n = self.agents.len();
                for off in 0..n {
                    let idx = (self.rr_cursor + off) % n;
                    if self.in_runnable[idx] {
                        self.rr_cursor = (idx + 1) % n;
                        self.in_runnable[idx] = false;
                        // Leave any queue entry stale; other policies skip
                        // stale entries.
                        return Some(idx as AgentId);
                    }
                }
                None
            }
            Policy::Synchronous => unreachable!("synchronous policy uses run_synchronous"),
        }
    }

    /// Fill `out` with the states of `node`'s neighbours, port order.
    /// Writes into a caller-provided buffer so the per-activation
    /// visibility snapshot allocates nothing after warm-up.
    fn neighbor_states_into(&self, node: Node, out: &mut Vec<NodeState>) {
        out.clear();
        out.extend((1..=self.cube.dim()).map(|p| self.node_state(node.flip(p))));
    }

    fn meter(&mut self, node: Node, agent: AgentId) {
        let bb = self.boards[node.index()].bits_used();
        self.metrics.peak_board_bits = self.metrics.peak_board_bits.max(bb);
        let lb = self.agents[agent as usize].program.local_bits();
        self.metrics.peak_local_bits = self.metrics.peak_local_bits.max(lb);
    }

    /// One activation of agent `id` (asynchronous mode). Returns the
    /// action taken.
    fn activate(&mut self, id: AgentId) -> Result<Action, RunError> {
        self.metrics.activations += 1;
        let pos = self.agents[id as usize].pos;
        let mut nbr_scratch = std::mem::take(&mut self.nbr_scratch);
        let neighbor_states = if self.cfg.visibility {
            self.neighbor_states_into(pos, &mut nbr_scratch);
            Some(&nbr_scratch[..])
        } else {
            None
        };
        let cube = self.cube;
        let alive_here = self.active_here[pos.index()];

        // Split borrows: program and board live in different fields.
        let slot = &mut self.agents[id as usize];
        let board = &mut self.boards[pos.index()];
        let mut ctx = Ctx {
            cube,
            node: pos,
            agent: id,
            alive_here,
            board,
            dirty: false,
            neighbor_states,
            round: None,
        };
        let action = slot.program.step(&mut ctx);
        let dirty = ctx.dirty;
        self.nbr_scratch = nbr_scratch;
        self.meter(pos, id);
        self.clock += 1;

        match action {
            Action::Wait => {
                if dirty {
                    // The write may enable others; the writer stays
                    // runnable once more so no wake-up is lost.
                    self.wake_at(pos);
                    self.make_runnable(id);
                } else {
                    self.park(id);
                }
            }
            Action::Move(port) => {
                self.check_port(id, port)?;
                if dirty {
                    self.wake_at(pos);
                }
                self.apply_move(id, port);
                self.make_runnable(id);
            }
            Action::Clone(port) => {
                self.check_port(id, port)?;
                if dirty {
                    self.wake_at(pos);
                }
                self.apply_clone(id, port);
                self.make_runnable(id);
            }
            Action::Terminate => {
                if dirty {
                    self.wake_at(pos);
                }
                self.apply_terminate(id);
            }
        }
        Ok(action)
    }

    fn check_port(&self, id: AgentId, port: u32) -> Result<(), RunError> {
        if port == 0 || port > self.cube.dim() {
            return Err(RunError::InvalidAction {
                agent: id,
                message: format!("port {port} out of range 1..={}", self.cube.dim()),
            });
        }
        Ok(())
    }

    fn apply_move(&mut self, id: AgentId, port: u32) {
        let from = self.agents[id as usize].pos;
        let to = from.flip(port);
        let role = self.agents[id as usize].role;
        self.occupancy[from.index()] -= 1;
        self.active_here[from.index()] -= 1;
        self.occupancy[to.index()] += 1;
        self.active_here[to.index()] += 1;
        self.visited.insert(to);
        self.agents[id as usize].pos = to;
        match (from == Node::ROOT, to == Node::ROOT) {
            (true, false) => self.away_now += 1,
            (false, true) => self.away_now -= 1,
            _ => {}
        }
        self.metrics.peak_away = self.metrics.peak_away.max(self.away_now);
        match role {
            Role::Coordinator => self.metrics.coordinator_moves += 1,
            Role::Worker => self.metrics.worker_moves += 1,
        }
        self.emit(EventKind::Move {
            agent: id,
            from,
            to,
            role,
        });
        self.wake_visible(from);
        self.wake_visible(to);
    }

    fn apply_clone(&mut self, id: AgentId, port: u32) {
        let from = self.agents[id as usize].pos;
        let to = from.flip(port);
        let child = self.agents.len() as AgentId;
        let program = self.agents[id as usize].program.clone_program();
        self.agents.push(AgentSlot {
            program,
            pos: to,
            role: Role::Worker,
            status: AgentStatus::Runnable,
        });
        self.in_runnable.push(true);
        self.runnable.push_back(child);
        self.occupancy[to.index()] += 1;
        self.active_here[to.index()] += 1;
        self.visited.insert(to);
        if to != Node::ROOT {
            self.away_now += 1;
        }
        self.metrics.team_size += 1;
        self.metrics.worker_moves += 1; // the clone's materializing slide
        self.metrics.peak_away = self.metrics.peak_away.max(self.away_now);
        self.emit(EventKind::CloneSpawn {
            parent: id,
            child,
            from,
            to,
        });
        self.wake_visible(to);
        self.wake_at(from);
    }

    fn apply_terminate(&mut self, id: AgentId) {
        let pos = self.agents[id as usize].pos;
        self.agents[id as usize].status = AgentStatus::Terminated;
        self.active_here[pos.index()] -= 1;
        self.emit(EventKind::Terminate {
            agent: id,
            node: pos,
        });
        // Occupancy unchanged: a terminated agent guards its node forever.
        self.wake_at(pos);
    }

    /// Run to completion. All agents must eventually [`Action::Terminate`];
    /// anything else is a deadlock or livelock and is reported as an error.
    pub fn run(mut self) -> Result<RunReport, RunError> {
        if self.cfg.policy.is_synchronous() {
            return self.run_synchronous();
        }
        loop {
            if self.metrics.activations >= self.cfg.max_activations {
                return Err(RunError::ActivationLimit);
            }
            let Some(id) = self.pick() else {
                break;
            };
            self.activate(id)?;
        }
        let waiting = self.live_agents();
        if waiting > 0 {
            return Err(RunError::Deadlock { waiting });
        }
        Ok(self.report())
    }

    /// Lock-step execution (the paper's ideal-time model): each round every
    /// active agent decides against the round-start snapshot; moves apply
    /// simultaneously at the round boundary.
    fn run_synchronous(mut self) -> Result<RunReport, RunError> {
        let mut rounds_with_moves: u64 = 0;
        let mut bufs = SyncBufs::default();
        loop {
            let out = self.sync_round(&mut bufs)?;
            if out.moved {
                rounds_with_moves += 1;
            }
            if out.done {
                break;
            }
            if !out.acted && !out.wrote {
                return Err(RunError::Deadlock {
                    waiting: self.live_agents(),
                });
            }
        }
        self.metrics.ideal_time = Some(rounds_with_moves);
        Ok(self.report())
    }

    /// One lock-step round against the round-start snapshot; moves apply
    /// simultaneously at the round boundary.
    fn sync_round(&mut self, bufs: &mut SyncBufs) -> Result<RoundOutcome, RunError> {
        self.clock += 1;
        let round = self.clock;
        // Snapshot of node states for visibility decisions.
        if self.cfg.visibility {
            bufs.snapshot.clear();
            bufs.snapshot
                .extend((0..self.cube.node_count() as u32).map(|i| self.node_state(Node(i))));
        }
        bufs.active_snapshot.clear();
        bufs.active_snapshot.extend_from_slice(&self.active_here);

        let mut wrote = false;

        for idx in 0..self.agents.len() {
            if self.agents[idx].status == AgentStatus::Terminated {
                continue;
            }
            if self.metrics.activations >= self.cfg.max_activations {
                return Err(RunError::ActivationLimit);
            }
            self.metrics.activations += 1;
            let id = idx as AgentId;
            let pos = self.agents[idx].pos;
            let neighbor_states: Option<&[NodeState]> = if self.cfg.visibility {
                bufs.neighbor_scratch.clear();
                bufs.neighbor_scratch
                    .extend((1..=self.cube.dim()).map(|p| bufs.snapshot[pos.flip(p).index()]));
                Some(&bufs.neighbor_scratch[..])
            } else {
                None
            };
            let cube = self.cube;
            let alive_here = bufs.active_snapshot[pos.index()];
            let slot = &mut self.agents[idx];
            let board = &mut self.boards[pos.index()];
            let mut ctx = Ctx {
                cube,
                node: pos,
                agent: id,
                alive_here,
                board,
                dirty: false,
                neighbor_states,
                round: Some(round),
            };
            let action = slot.program.step(&mut ctx);
            wrote |= ctx.dirty;
            self.meter(pos, id);
            match action {
                Action::Wait => {}
                Action::Move(port) => {
                    self.check_port(id, port)?;
                    bufs.deferred.push(Deferred::Move(id, port));
                }
                Action::Clone(port) => {
                    self.check_port(id, port)?;
                    bufs.deferred.push(Deferred::Clone(id, port));
                }
                Action::Terminate => bufs.deferred.push(Deferred::Terminate(id)),
            }
        }

        let mut moved = false;
        let acted = !bufs.deferred.is_empty();
        for d in bufs.deferred.drain(..) {
            match d {
                Deferred::Move(id, port) => {
                    self.apply_move(id, port);
                    moved = true;
                }
                Deferred::Clone(id, port) => {
                    self.apply_clone(id, port);
                    moved = true;
                }
                Deferred::Terminate(id) => self.apply_terminate(id),
            }
        }
        let done = self
            .agents
            .iter()
            .all(|a| a.status == AgentStatus::Terminated);
        Ok(RoundOutcome {
            moved,
            acted,
            wrote,
            done,
        })
    }

    fn report(self) -> RunReport {
        RunReport {
            metrics: self.metrics,
            events: self.events,
            visited: self.visited,
            occupancy: self.occupancy,
        }
    }
}

/// Step-granular hooks: an external scheduler (the `hypersweep-check`
/// adversary) drives activations one at a time instead of delegating the
/// pick to the configured [`Policy`]. The engine still owns all state
/// transitions — wake-ups, parking, occupancy — so any schedule expressed
/// through these hooks is a schedule some [`Policy`] adversary could have
/// produced.
impl<P: AgentProgram> Engine<P> {
    /// Ids of agents that can act right now (spawned or woken, not parked,
    /// not terminated), in ascending id order. The order is part of the
    /// deterministic contract: external schedulers index into this list.
    pub fn runnable_agents(&self) -> Vec<AgentId> {
        self.agents
            .iter()
            .enumerate()
            .filter(|(_, a)| a.status == AgentStatus::Runnable)
            .map(|(i, _)| i as AgentId)
            .collect()
    }

    /// Activate one specific runnable agent. Mirrors exactly what the
    /// internal scheduler loop does for a picked agent, including the
    /// activation cap; choosing a non-runnable agent is an error.
    pub fn step_agent(&mut self, id: AgentId) -> Result<Action, RunError> {
        if self.metrics.activations >= self.cfg.max_activations {
            return Err(RunError::ActivationLimit);
        }
        match self.agents.get(id as usize).map(|a| a.status) {
            Some(AgentStatus::Runnable) => {}
            _ => {
                return Err(RunError::InvalidAction {
                    agent: id,
                    message: "stepped agent is not runnable".to_string(),
                });
            }
        }
        // Keep the queue bookkeeping consistent with `pick` so a later
        // wake re-enqueues the agent instead of being dropped as stale.
        self.in_runnable[id as usize] = false;
        self.activate(id)
    }

    /// One lock-step round (synchronous model), for round-granular external
    /// checking. Unlike [`Engine::run`] this does not accumulate
    /// `ideal_time`; callers wanting it count rounds with
    /// [`RoundOutcome::moved`] themselves.
    pub fn step_round(&mut self) -> Result<RoundOutcome, RunError> {
        let mut bufs = SyncBufs::default();
        self.sync_round(&mut bufs)
    }

    /// Total agents spawned so far, terminated guards included.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Agents not yet terminated (runnable or parked).
    pub fn live_agents(&self) -> usize {
        self.agents
            .iter()
            .filter(|a| a.status != AgentStatus::Terminated)
            .count()
    }

    /// Whether every agent has terminated (the run is complete).
    pub fn all_terminated(&self) -> bool {
        self.live_agents() == 0
    }

    /// The event stream recorded so far; step-granular callers read the
    /// suffix since their last observation to feed per-step oracles.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Aggregate counters so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Finish an externally-driven run: consume the engine into its report
    /// without requiring termination (the checker reports partial runs).
    pub fn into_report(self) -> RunReport {
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial strategy: walk the ascending tree path to a fixed target,
    /// then terminate.
    struct WalkTo {
        target: Node,
    }

    impl AgentProgram for WalkTo {
        type Board = ();

        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
            let here = ctx.node();
            if here == self.target {
                return Action::Terminate;
            }
            // Set the lowest missing bit of the target.
            for p in 1..=ctx.cube().dim() {
                if self.target.bit(p) && !here.bit(p) {
                    return Action::Move(p);
                }
            }
            Action::Terminate
        }
    }

    #[test]
    fn single_walker_reaches_target() {
        for policy in Policy::adversaries(3) {
            let cube = Hypercube::new(4);
            let mut eng = Engine::new(
                cube,
                EngineConfig {
                    policy,
                    ..EngineConfig::default()
                },
            );
            eng.spawn(
                WalkTo {
                    target: Node(0b1011),
                },
                Node::ROOT,
                Role::Worker,
            );
            let report = eng.run().expect("run succeeds");
            assert_eq!(report.metrics.worker_moves, 3);
            assert_eq!(report.occupancy[0b1011], 1);
            assert_eq!(report.metrics.team_size, 1);
            assert_eq!(report.metrics.peak_away, 1);
        }
    }

    #[test]
    fn synchronous_mode_counts_rounds() {
        let cube = Hypercube::new(5);
        let mut eng = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::Synchronous,
                ..EngineConfig::default()
            },
        );
        // Two walkers with different path lengths; rounds with moves = max.
        eng.spawn(
            WalkTo {
                target: Node(0b11111),
            },
            Node::ROOT,
            Role::Worker,
        );
        eng.spawn(
            WalkTo {
                target: Node(0b00001),
            },
            Node::ROOT,
            Role::Worker,
        );
        let report = eng.run().expect("run succeeds");
        assert_eq!(report.metrics.ideal_time, Some(5));
        assert_eq!(report.metrics.worker_moves, 6);
    }

    /// Waits forever.
    struct Stuck;

    impl AgentProgram for Stuck {
        type Board = ();
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Action {
            Action::Wait
        }
    }

    #[test]
    fn parked_forever_is_deadlock() {
        let cube = Hypercube::new(2);
        let mut eng = Engine::new(cube, EngineConfig::default());
        eng.spawn(Stuck, Node::ROOT, Role::Worker);
        match eng.run() {
            Err(RunError::Deadlock { waiting }) => assert_eq!(waiting, 1),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn synchronous_deadlock_detected() {
        let cube = Hypercube::new(2);
        let mut eng = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::Synchronous,
                ..EngineConfig::default()
            },
        );
        eng.spawn(Stuck, Node::ROOT, Role::Worker);
        assert!(matches!(eng.run(), Err(RunError::Deadlock { .. })));
    }

    /// Moves out of range.
    struct BadPort;

    impl AgentProgram for BadPort {
        type Board = ();
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Action {
            Action::Move(99)
        }
    }

    #[test]
    fn invalid_port_is_reported() {
        let cube = Hypercube::new(3);
        let mut eng = Engine::new(cube, EngineConfig::default());
        eng.spawn(BadPort, Node::ROOT, Role::Worker);
        assert!(matches!(eng.run(), Err(RunError::InvalidAction { .. })));
    }

    /// Clones once onto port 1, then both terminate.
    #[derive(Clone)]
    struct CloneOnce {
        is_clone: bool,
        done: bool,
    }

    impl AgentProgram for CloneOnce {
        type Board = ();
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Action {
            if self.is_clone || self.done {
                return Action::Terminate;
            }
            self.done = true;
            Action::Clone(1)
        }
        fn clone_program(&self) -> Self {
            CloneOnce {
                is_clone: true,
                done: false,
            }
        }
    }

    #[test]
    fn cloning_creates_an_agent_and_counts_one_move() {
        let cube = Hypercube::new(3);
        let mut eng = Engine::new(cube, EngineConfig::default());
        eng.spawn(
            CloneOnce {
                is_clone: false,
                done: false,
            },
            Node::ROOT,
            Role::Worker,
        );
        let report = eng.run().expect("run succeeds");
        assert_eq!(report.metrics.team_size, 2);
        assert_eq!(report.metrics.worker_moves, 1);
        assert_eq!(report.occupancy[1], 1);
        assert_eq!(report.occupancy[0], 1);
    }

    #[test]
    fn event_stream_is_recorded_in_order() {
        let cube = Hypercube::new(3);
        let mut eng = Engine::new(cube, EngineConfig::default());
        eng.spawn(
            WalkTo {
                target: Node(0b101),
            },
            Node::ROOT,
            Role::Worker,
        );
        let report = eng.run().expect("run succeeds");
        let kinds: Vec<_> = report.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Spawn {
                    agent: 0,
                    node: Node(0),
                    role: Role::Worker
                },
                EventKind::Move {
                    agent: 0,
                    from: Node(0),
                    to: Node(1),
                    role: Role::Worker
                },
                EventKind::Move {
                    agent: 0,
                    from: Node(1),
                    to: Node(0b101),
                    role: Role::Worker
                },
                EventKind::Terminate {
                    agent: 0,
                    node: Node(0b101)
                },
            ]
        );
    }

    /// Two agents rendezvous through the whiteboard: the first writes a
    /// token at the root, the second waits for it, then both terminate.
    #[derive(Clone, Default)]
    struct TokenBoard {
        token: bool,
    }

    impl Board for TokenBoard {
        fn bits_used(&self) -> u32 {
            1
        }
    }

    struct Writer;
    impl AgentProgram for Writer {
        type Board = TokenBoard;
        fn step(&mut self, ctx: &mut Ctx<'_, TokenBoard>) -> Action {
            ctx.board_mut().token = true;
            Action::Terminate
        }
    }

    struct Reader;
    impl AgentProgram for Reader {
        type Board = TokenBoard;
        fn step(&mut self, ctx: &mut Ctx<'_, TokenBoard>) -> Action {
            if ctx.board().token {
                Action::Terminate
            } else {
                Action::Wait
            }
        }
    }

    /// Composite program so both roles share a board type.
    enum Rw {
        W(Writer),
        R(Reader),
    }
    impl AgentProgram for Rw {
        type Board = TokenBoard;
        fn step(&mut self, ctx: &mut Ctx<'_, TokenBoard>) -> Action {
            match self {
                Rw::W(w) => w.step(ctx),
                Rw::R(r) => r.step(ctx),
            }
        }
    }

    #[test]
    fn whiteboard_wakes_waiting_agent() {
        // LIFO runs the reader first (spawned last), which parks; the
        // writer's write must wake it.
        let cube = Hypercube::new(2);
        let mut eng = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::Lifo,
                ..EngineConfig::default()
            },
        );
        eng.spawn(Rw::W(Writer), Node::ROOT, Role::Worker);
        eng.spawn(Rw::R(Reader), Node::ROOT, Role::Worker);
        let report = eng.run().expect("no deadlock: the write wakes the reader");
        assert_eq!(report.metrics.team_size, 2);
        assert_eq!(report.metrics.peak_board_bits, 1);
    }

    /// Regression: an agent whose wait condition is satisfied by a write
    /// performed in the SAME activation that parks another agent must still
    /// be woken (no lost wake-ups). Constructed so the waiter parks before
    /// the writer acts under FIFO.
    #[derive(Clone, Default)]
    struct CounterBoard {
        value: u32,
    }
    impl Board for CounterBoard {
        fn bits_used(&self) -> u32 {
            32 - self.value.leading_zeros()
        }
    }

    enum Collab {
        /// Waits until the counter reaches `target`, then terminates.
        Waiter { target: u32 },
        /// Increments the counter once per activation, `times` times.
        Incrementer { times: u32 },
    }
    impl AgentProgram for Collab {
        type Board = CounterBoard;
        fn step(&mut self, ctx: &mut Ctx<'_, CounterBoard>) -> Action {
            match self {
                Collab::Waiter { target } => {
                    if ctx.board().value >= *target {
                        Action::Terminate
                    } else {
                        Action::Wait
                    }
                }
                Collab::Incrementer { times } => {
                    if *times == 0 {
                        return Action::Terminate;
                    }
                    *times -= 1;
                    ctx.board_mut().value += 1;
                    Action::Wait
                }
            }
        }
    }

    #[test]
    fn no_lost_wakeups_through_whiteboard_writes() {
        for policy in Policy::adversaries(5) {
            let mut eng = Engine::new(
                Hypercube::new(2),
                EngineConfig {
                    policy,
                    ..EngineConfig::default()
                },
            );
            eng.spawn(Collab::Waiter { target: 3 }, Node::ROOT, Role::Worker);
            eng.spawn(Collab::Incrementer { times: 3 }, Node::ROOT, Role::Worker);
            let report = eng.run().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
            assert_eq!(report.metrics.peak_board_bits, 2);
        }
    }

    #[test]
    fn activation_cap_turns_livelock_into_an_error() {
        /// Writes the board forever — a livelock the cap must break.
        struct Spinner;
        impl AgentProgram for Spinner {
            type Board = CounterBoard;
            fn step(&mut self, ctx: &mut Ctx<'_, CounterBoard>) -> Action {
                ctx.board_mut().value = ctx.board().value.wrapping_add(1);
                Action::Wait
            }
        }
        let mut eng = Engine::new(
            Hypercube::new(2),
            EngineConfig {
                max_activations: 1_000,
                ..EngineConfig::default()
            },
        );
        eng.spawn(Spinner, Node::ROOT, Role::Worker);
        assert!(matches!(eng.run(), Err(RunError::ActivationLimit)));
    }

    #[test]
    fn disabling_event_recording_keeps_metrics() {
        let run = |record: bool| {
            let mut eng = Engine::new(
                Hypercube::new(4),
                EngineConfig {
                    record_events: record,
                    ..EngineConfig::default()
                },
            );
            eng.spawn(
                WalkTo {
                    target: Node(0b1111),
                },
                Node::ROOT,
                Role::Worker,
            );
            eng.run().unwrap()
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with.metrics, without.metrics);
        assert!(!with.events.is_empty());
        assert!(without.events.is_empty());
        assert_eq!(with.visited, without.visited);
    }

    #[test]
    fn node_state_view_tracks_occupancy_and_visits() {
        let mut eng = Engine::<WalkTo>::new(Hypercube::new(3), EngineConfig::default());
        assert_eq!(eng.node_state(Node(0)), NodeState::Contaminated);
        eng.spawn(WalkTo { target: Node(1) }, Node::ROOT, Role::Worker);
        assert_eq!(eng.node_state(Node(0)), NodeState::Guarded);
        let _ = eng; // (run consumes the engine; the view is pre-run here)
    }

    #[test]
    fn all_async_policies_agree_on_final_state() {
        for policy in Policy::adversaries(5) {
            let cube = Hypercube::new(4);
            let mut eng = Engine::new(
                cube,
                EngineConfig {
                    policy,
                    ..EngineConfig::default()
                },
            );
            for t in [3u32, 5, 9, 14] {
                eng.spawn(WalkTo { target: Node(t) }, Node::ROOT, Role::Worker);
            }
            let report = eng.run().expect("run succeeds");
            for t in [3u32, 5, 9, 14] {
                assert_eq!(report.occupancy[t as usize], 1, "policy {policy:?}");
            }
        }
    }
}
