//! Linearized event stream emitted by every executor.
//!
//! Moves are *atomic slides*: an agent disappears from `from` and appears
//! at `to` in a single event, the standard convention in graph searching
//! (sliding a searcher along an edge never opens a momentary gap at both
//! endpoints). The intruder, being arbitrarily fast, is assumed to act
//! between any two consecutive events.

use serde::{Deserialize, Serialize};

use hypersweep_topology::Node;

/// Identifier of an agent within one run.
pub type AgentId = u32;

/// The role an agent plays, used for per-role move accounting
/// (Theorem 3 counts synchronizer moves and worker moves separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The coordinator of Algorithm CLEAN (the paper's *synchronizer*).
    Coordinator,
    /// Every other agent.
    Worker,
}

/// One atomic occurrence in a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Logical timestamp: the event's index in the linearization for
    /// asynchronous policies, the round number under the synchronous
    /// policy.
    pub time: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of atomic events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// An agent was placed on its starting node (only ever the homebase in
    /// the paper's model).
    Spawn {
        /// The new agent.
        agent: AgentId,
        /// Where it starts.
        node: Node,
        /// Its role.
        role: Role,
    },
    /// An agent slid along an edge.
    Move {
        /// The moving agent.
        agent: AgentId,
        /// Source node.
        from: Node,
        /// Destination node (adjacent to `from`).
        to: Node,
        /// The mover's role.
        role: Role,
    },
    /// An agent cloned itself; the clone materialises on a neighbouring
    /// node (§5's cloning variant: the clone's first slide is part of the
    /// cloning action and is counted as one move).
    CloneSpawn {
        /// The cloning agent.
        parent: AgentId,
        /// The newly created agent.
        child: AgentId,
        /// Where the parent stands.
        from: Node,
        /// Where the clone appears (adjacent to `from`).
        to: Node,
    },
    /// An agent stopped executing. It remains on its node as a guard
    /// forever (the paper's leaves keep their agents).
    Terminate {
        /// The terminating agent.
        agent: AgentId,
        /// Where it rests.
        node: Node,
    },
}

impl EventKind {
    /// Number of edge traversals this event represents.
    pub fn move_cost(&self) -> u64 {
        match self {
            EventKind::Move { .. } | EventKind::CloneSpawn { .. } => 1,
            _ => 0,
        }
    }

    /// Nodes whose occupancy this event changes.
    pub fn touched(&self) -> (Option<Node>, Option<Node>) {
        match *self {
            EventKind::Spawn { node, .. } => (None, Some(node)),
            EventKind::Move { from, to, .. } => (Some(from), Some(to)),
            EventKind::CloneSpawn { from, to, .. } => (Some(from), Some(to)),
            EventKind::Terminate { .. } => (None, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_costs() {
        let m = EventKind::Move {
            agent: 0,
            from: Node(0),
            to: Node(1),
            role: Role::Worker,
        };
        assert_eq!(m.move_cost(), 1);
        let t = EventKind::Terminate {
            agent: 0,
            node: Node(1),
        };
        assert_eq!(t.move_cost(), 0);
        let c = EventKind::CloneSpawn {
            parent: 0,
            child: 1,
            from: Node(0),
            to: Node(2),
        };
        assert_eq!(c.move_cost(), 1);
    }

    #[test]
    fn touched_nodes() {
        let m = EventKind::Move {
            agent: 0,
            from: Node(4),
            to: Node(5),
            role: Role::Coordinator,
        };
        assert_eq!(m.touched(), (Some(Node(4)), Some(Node(5))));
        let s = EventKind::Spawn {
            agent: 1,
            node: Node(0),
            role: Role::Worker,
        };
        assert_eq!(s.touched(), (None, Some(Node(0))));
    }
}
