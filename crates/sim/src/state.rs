//! Node states as defined in §2 of the paper.

use serde::{Deserialize, Serialize};

/// The state of a hypercube node during a search.
///
/// §2: a node is *guarded* if an agent is currently on it; *clean* if an
/// agent passed by it and all its neighbours are either clean or guarded;
/// *contaminated* otherwise.
///
/// The engine reports states *optimistically* for monotone strategies:
/// `Guarded` if occupied, `Clean` if previously visited, `Contaminated`
/// otherwise. The optimism is justified — and independently verified — by
/// the monitors of `hypersweep-intruder`, which recompute the true
/// contamination closure after every atomic event and flag any
/// recontamination. A strategy that is not monotone would be caught there,
/// never silently mis-simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// An agent currently resides on the node.
    Guarded,
    /// The node was visited and (under a monotone strategy) remains clean.
    Clean,
    /// The node may host the intruder.
    Contaminated,
}

impl NodeState {
    /// `true` for `Clean` or `Guarded` — the condition the visibility rule
    /// of Algorithm 2 tests on the smaller neighbours.
    #[inline]
    pub fn is_safe(self) -> bool {
        !matches!(self, NodeState::Contaminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_predicate() {
        assert!(NodeState::Guarded.is_safe());
        assert!(NodeState::Clean.is_safe());
        assert!(!NodeState::Contaminated.is_safe());
    }
}
