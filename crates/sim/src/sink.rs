//! Streaming event consumption.
//!
//! The closed-form trace generators (`synthesize` in the strategy crates)
//! historically returned a materialized `Vec<Event>` — at `H_20` that is
//! ~20M events held live just so an auditor could iterate them once. An
//! [`EventSink`] inverts the flow: generators push each event into a sink
//! as it is produced, and the sink decides whether to buffer (a
//! `Vec<Event>`), audit online (the intruder crate's `Monitor`), or drop
//! ([`NullSink`]). Run memory becomes O(state), not O(moves).

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// A consumer of a run's event stream, fed strictly in trace order.
pub trait EventSink {
    /// Consume one event.
    fn emit(&mut self, event: Event);
}

/// Streaming digest of a trace: per-kind event counts and the last logical
/// timestamp, computed in `O(1)` space while the events flow past. This is
/// what a server can return for an audited multi-million-event trace
/// without ever materializing it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total events observed.
    pub events: u64,
    /// `Spawn` events.
    pub spawns: u64,
    /// `Move` events.
    pub moves: u64,
    /// `CloneSpawn` events.
    pub clones: u64,
    /// `Terminate` events.
    pub terminates: u64,
    /// Largest logical timestamp observed (`0` for an empty trace).
    pub max_time: u64,
}

impl TraceSummary {
    /// Fold one event into the digest.
    pub fn record(&mut self, event: &Event) {
        self.events += 1;
        self.max_time = self.max_time.max(event.time);
        match event.kind {
            EventKind::Spawn { .. } => self.spawns += 1,
            EventKind::Move { .. } => self.moves += 1,
            EventKind::CloneSpawn { .. } => self.clones += 1,
            EventKind::Terminate { .. } => self.terminates += 1,
        }
    }
}

/// Adapter sink that keeps a [`TraceSummary`] while forwarding every event
/// to an inner sink — tee a stream through an online auditor *and* collect
/// the digest in one pass.
pub struct SummarizingSink<'a> {
    inner: &'a mut dyn EventSink,
    summary: TraceSummary,
}

impl<'a> SummarizingSink<'a> {
    /// Wrap `inner`, starting from an empty summary.
    pub fn new(inner: &'a mut dyn EventSink) -> Self {
        SummarizingSink {
            inner,
            summary: TraceSummary::default(),
        }
    }

    /// The digest accumulated so far.
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }
}

impl EventSink for SummarizingSink<'_> {
    fn emit(&mut self, event: Event) {
        self.summary.record(&event);
        self.inner.emit(event);
    }
}

/// How many events a [`MeteredSink`] accumulates locally before flushing
/// them to the shared `sink.events` counter. Per-event atomic traffic from
/// an `H_20` synthesis (~20M events) would dominate the stream; batched,
/// the counter costs one increment per 1024 events plus one on drop.
const METER_FLUSH_EVERY: u64 = 1024;

/// Adapter sink that counts events into a telemetry counter while
/// forwarding them to the inner sink, so multi-million-event streamed
/// audits are observable (`sink.events`) while in flight.
///
/// The count is batched (see [`METER_FLUSH_EVERY`]) and the remainder is
/// flushed on drop; readers see the stream advance in coarse steps.
pub struct MeteredSink<S: EventSink> {
    inner: S,
    counter: hypersweep_telemetry::Counter,
    pending: u64,
}

impl<S: EventSink> MeteredSink<S> {
    /// Wrap `inner`, counting into `sink.events` of the process-global
    /// telemetry registry (a no-op until one is installed).
    pub fn new(inner: S) -> Self {
        MeteredSink::with_counter(inner, hypersweep_telemetry::global().counter("sink.events"))
    }

    /// Wrap `inner`, counting into an explicit counter.
    pub fn with_counter(inner: S, counter: hypersweep_telemetry::Counter) -> Self {
        MeteredSink {
            inner,
            counter,
            pending: 0,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Push the locally-batched count to the counter.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.counter.add(self.pending);
            self.pending = 0;
        }
    }
}

impl<S: EventSink> EventSink for MeteredSink<S> {
    fn emit(&mut self, event: Event) {
        self.pending += 1;
        if self.pending >= METER_FLUSH_EVERY {
            self.flush();
        }
        self.inner.emit(event);
    }
}

impl<S: EventSink> Drop for MeteredSink<S> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Discards every event — for metrics-only synthesis.
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: Event) {}
}

/// Buffering sink: collects the full trace, for callers that genuinely
/// need the materialized `Vec` (figures, trace export, engine replay).
impl EventSink for Vec<Event> {
    fn emit(&mut self, event: Event) {
        self.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Role};
    use hypersweep_topology::Node;

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut sink: Vec<Event> = Vec::new();
        for t in 0..3 {
            sink.emit(Event {
                time: t,
                kind: EventKind::Spawn {
                    agent: t as u32,
                    node: Node(0),
                    role: Role::Worker,
                },
            });
        }
        assert_eq!(sink.len(), 3);
        assert!(sink.iter().enumerate().all(|(i, e)| e.time == i as u64));
    }

    #[test]
    fn summarizing_sink_counts_and_forwards() {
        let mut buffer: Vec<Event> = Vec::new();
        let mut sink = SummarizingSink::new(&mut buffer);
        sink.emit(Event {
            time: 0,
            kind: EventKind::Spawn {
                agent: 0,
                node: Node(0),
                role: Role::Worker,
            },
        });
        sink.emit(Event {
            time: 3,
            kind: EventKind::Move {
                agent: 0,
                from: Node(0),
                to: Node(1),
                role: Role::Worker,
            },
        });
        sink.emit(Event {
            time: 5,
            kind: EventKind::Terminate {
                agent: 0,
                node: Node(1),
            },
        });
        let summary = sink.summary();
        assert_eq!(
            summary,
            TraceSummary {
                events: 3,
                spawns: 1,
                moves: 1,
                clones: 0,
                terminates: 1,
                max_time: 5,
            }
        );
        assert_eq!(buffer.len(), 3, "events must still reach the inner sink");
    }

    #[test]
    fn metered_sink_counts_batched_and_flushes_on_drop() {
        let registry = hypersweep_telemetry::MetricsRegistry::new();
        let counter = registry.counter("sink.events");
        let spawn = |t| Event {
            time: t,
            kind: EventKind::Spawn {
                agent: 0,
                node: Node(0),
                role: Role::Worker,
            },
        };
        {
            let mut sink = MeteredSink::with_counter(Vec::new(), counter.clone());
            // One short of a batch: nothing flushed yet.
            for t in 0..(METER_FLUSH_EVERY - 1) {
                sink.emit(spawn(t));
            }
            assert_eq!(counter.get(), 0, "the batch must not flush early");
            sink.emit(spawn(METER_FLUSH_EVERY));
            assert_eq!(counter.get(), METER_FLUSH_EVERY);
            // A partial tail, flushed by drop.
            for t in 0..5 {
                sink.emit(spawn(t));
            }
            assert_eq!(sink.inner().len() as u64, METER_FLUSH_EVERY + 5);
        }
        assert_eq!(counter.get(), METER_FLUSH_EVERY + 5);
    }

    #[test]
    fn metered_sink_forwards_through_nested_sinks() {
        let registry = hypersweep_telemetry::MetricsRegistry::new();
        let mut buffer: Vec<Event> = Vec::new();
        {
            let summarizing = SummarizingSink::new(&mut buffer);
            let mut sink = MeteredSink::with_counter(summarizing, registry.counter("sink.events"));
            sink.emit(Event {
                time: 2,
                kind: EventKind::Terminate {
                    agent: 0,
                    node: Node(1),
                },
            });
            assert_eq!(sink.inner().summary().terminates, 1);
        }
        assert_eq!(buffer.len(), 1);
        assert_eq!(registry.snapshot().counter("sink.events"), Some(1));
    }

    #[test]
    fn null_sink_discards() {
        // Just exercise the impl; nothing observable.
        NullSink.emit(Event {
            time: 0,
            kind: EventKind::Terminate {
                agent: 0,
                node: Node(0),
            },
        });
    }
}
