//! Streaming event consumption.
//!
//! The closed-form trace generators (`synthesize` in the strategy crates)
//! historically returned a materialized `Vec<Event>` — at `H_20` that is
//! ~20M events held live just so an auditor could iterate them once. An
//! [`EventSink`] inverts the flow: generators push each event into a sink
//! as it is produced, and the sink decides whether to buffer (a
//! `Vec<Event>`), audit online (the intruder crate's `Monitor`), or drop
//! ([`NullSink`]). Run memory becomes O(state), not O(moves).

use crate::event::Event;

/// A consumer of a run's event stream, fed strictly in trace order.
pub trait EventSink {
    /// Consume one event.
    fn emit(&mut self, event: Event);
}

/// Discards every event — for metrics-only synthesis.
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: Event) {}
}

/// Buffering sink: collects the full trace, for callers that genuinely
/// need the materialized `Vec` (figures, trace export, engine replay).
impl EventSink for Vec<Event> {
    fn emit(&mut self, event: Event) {
        self.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Role};
    use hypersweep_topology::Node;

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut sink: Vec<Event> = Vec::new();
        for t in 0..3 {
            sink.emit(Event {
                time: t,
                kind: EventKind::Spawn {
                    agent: t as u32,
                    node: Node(0),
                    role: Role::Worker,
                },
            });
        }
        assert_eq!(sink.len(), 3);
        assert!(sink.iter().enumerate().all(|(i, e)| e.time == i as u64));
    }

    #[test]
    fn null_sink_discards() {
        // Just exercise the impl; nothing observable.
        NullSink.emit(Event {
            time: 0,
            kind: EventKind::Terminate {
                agent: 0,
                node: Node(0),
            },
        });
    }
}
