//! True-concurrency executor: one OS thread per agent.
//!
//! The discrete-event engine *models* asynchrony; this executor *is*
//! asynchronous: each agent runs on its own thread, whiteboards are
//! `parking_lot` mutexes (the paper's "access to a whiteboard is gained
//! fairly in mutual exclusion"), waiting agents block on per-node condition
//! variables, and moves are atomic slides performed under both endpoint
//! locks (taken in address order to avoid deadlock). The OS scheduler plays
//! the adversary.
//!
//! Events are appended to a global log while both endpoint locks are held,
//! giving a linearization the `hypersweep-intruder` monitors can audit just
//! like an engine trace. Intended for moderate dimensions (`d ≤ 10`, i.e.
//! at most a few hundred threads) as a cross-check of the engine, not as
//! the scalable path.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hypersweep_topology::{Hypercube, Node};

use crate::engine::{RunError, RunReport};
use crate::event::{AgentId, Event, EventKind, Role};
use crate::metrics::Metrics;
use crate::program::{Action, AgentProgram, Board, Ctx};
use crate::state::NodeState;

struct NodeCell<B> {
    board: B,
    /// Non-terminated agents present.
    active: u32,
}

struct Log {
    events: Vec<Event>,
    away_now: u64,
    peak_away: u64,
    clock: u64,
}

struct Shared<B> {
    cube: Hypercube,
    cells: Vec<Mutex<NodeCell<B>>>,
    signals: Vec<Condvar>,
    /// Mirrors for lock-free visibility reads.
    occupancy: Vec<AtomicU32>,
    visited: Vec<AtomicBool>,
    visibility: bool,
    log: Mutex<Log>,
    record_events: bool,
    worker_moves: AtomicU64,
    coordinator_moves: AtomicU64,
    team_size: AtomicU32,
    next_id: AtomicU32,
    peak_board_bits: AtomicU32,
    peak_local_bits: AtomicU32,
    failed: AtomicBool,
    deadline: Instant,
}

impl<B: Board> Shared<B> {
    fn state_of(&self, node: Node) -> NodeState {
        if self.occupancy[node.index()].load(Ordering::Acquire) > 0 {
            NodeState::Guarded
        } else if self.visited[node.index()].load(Ordering::Acquire) {
            NodeState::Clean
        } else {
            NodeState::Contaminated
        }
    }

    fn notify_visible(&self, node: Node) {
        self.signals[node.index()].notify_all();
        if self.visibility {
            for p in 1..=self.cube.dim() {
                self.signals[node.flip(p).index()].notify_all();
            }
        }
    }

    fn emit(&self, kind: EventKind, away_delta: i64) {
        let mut log = self.log.lock();
        log.clock += 1;
        let time = log.clock;
        if self.record_events {
            log.events.push(Event { time, kind });
        }
        if away_delta != 0 {
            log.away_now = (log.away_now as i64 + away_delta) as u64;
            let now = log.away_now;
            if now > log.peak_away {
                log.peak_away = now;
            }
        }
    }

    fn meter_board(&self, bits: u32) {
        self.peak_board_bits.fetch_max(bits, Ordering::Relaxed);
    }
}

/// Configuration for the threaded executor.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Whether agents may observe neighbour states.
    pub visibility: bool,
    /// Record the event stream.
    pub record_events: bool,
    /// Wall-clock budget; exceeding it aborts the run with
    /// [`RunError::ActivationLimit`] (used to surface deadlocks).
    pub timeout: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            visibility: false,
            record_events: true,
            timeout: Duration::from_secs(60),
        }
    }
}

/// Run `programs` (each with a role, all starting at the homebase `00…0`)
/// on real threads until every agent terminates.
pub fn run_threaded<P: AgentProgram>(
    cube: Hypercube,
    programs: Vec<(P, Role)>,
    cfg: ThreadedConfig,
) -> Result<RunReport, RunError> {
    let n = cube.node_count();
    let shared = Shared::<P::Board> {
        cube,
        cells: (0..n)
            .map(|_| {
                Mutex::new(NodeCell {
                    board: P::Board::default(),
                    active: 0,
                })
            })
            .collect(),
        signals: (0..n).map(|_| Condvar::new()).collect(),
        occupancy: (0..n).map(|_| AtomicU32::new(0)).collect(),
        visited: (0..n).map(|_| AtomicBool::new(false)).collect(),
        visibility: cfg.visibility,
        log: Mutex::new(Log {
            events: Vec::new(),
            away_now: 0,
            peak_away: 0,
            clock: 0,
        }),
        record_events: cfg.record_events,
        worker_moves: AtomicU64::new(0),
        coordinator_moves: AtomicU64::new(0),
        team_size: AtomicU32::new(0),
        next_id: AtomicU32::new(0),
        peak_board_bits: AtomicU32::new(0),
        peak_local_bits: AtomicU32::new(0),
        failed: AtomicBool::new(false),
        deadline: Instant::now() + cfg.timeout,
    };

    std::thread::scope(|scope| {
        for (program, role) in programs {
            let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
            shared.team_size.fetch_add(1, Ordering::Relaxed);
            {
                let mut cell = shared.cells[Node::ROOT.index()].lock();
                cell.active += 1;
            }
            shared.occupancy[Node::ROOT.index()].fetch_add(1, Ordering::AcqRel);
            shared.visited[Node::ROOT.index()].store(true, Ordering::Release);
            shared.emit(
                EventKind::Spawn {
                    agent: id,
                    node: Node::ROOT,
                    role,
                },
                0,
            );
            let shared_ref = &shared;
            scope.spawn(move || agent_main(shared_ref, scope, program, id, role, Node::ROOT));
        }
    });

    if shared.failed.load(Ordering::Acquire) {
        return Err(RunError::ActivationLimit);
    }
    let log = shared.log.into_inner();
    let metrics = Metrics {
        worker_moves: shared.worker_moves.load(Ordering::Acquire),
        coordinator_moves: shared.coordinator_moves.load(Ordering::Acquire),
        team_size: u64::from(shared.team_size.load(Ordering::Acquire)),
        peak_away: log.peak_away,
        ideal_time: None,
        activations: log.clock,
        peak_board_bits: shared.peak_board_bits.load(Ordering::Acquire),
        peak_local_bits: shared.peak_local_bits.load(Ordering::Acquire),
    };
    Ok(RunReport {
        metrics,
        events: log.events,
        visited: {
            let mut set = hypersweep_topology::NodeSet::new(shared.visited.len());
            for (i, v) in shared.visited.iter().enumerate() {
                if v.load(Ordering::Acquire) {
                    set.insert(Node(i as u32));
                }
            }
            set
        },
        occupancy: shared
            .occupancy
            .iter()
            .map(|o| o.load(Ordering::Acquire))
            .collect(),
    })
}

fn agent_main<'scope, 'env, P: AgentProgram>(
    shared: &'scope Shared<P::Board>,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    mut program: P,
    id: AgentId,
    role: Role,
    start: Node,
) {
    let mut pos = start;
    loop {
        if Instant::now() >= shared.deadline {
            shared.failed.store(true, Ordering::Release);
            // Wake everyone so they also observe the failure and exit.
            for s in &shared.signals {
                s.notify_all();
            }
            return;
        }
        if shared.failed.load(Ordering::Acquire) {
            return;
        }

        let neighbor_states: Option<Vec<NodeState>> = if shared.visibility {
            Some(
                (1..=shared.cube.dim())
                    .map(|p| shared.state_of(pos.flip(p)))
                    .collect(),
            )
        } else {
            None
        };

        let mut cell = shared.cells[pos.index()].lock();
        let action = {
            let alive_here = cell.active;
            let mut ctx = Ctx {
                cube: shared.cube,
                node: pos,
                agent: id,
                alive_here,
                board: &mut cell.board,
                dirty: false,
                neighbor_states: neighbor_states.as_deref(),
                round: None,
            };
            let action = program.step(&mut ctx);
            if ctx.dirty {
                shared.meter_board(ctx.board.bits_used());
            }
            action
        };
        shared
            .peak_local_bits
            .fetch_max(program.local_bits(), Ordering::Relaxed);

        match action {
            Action::Wait => {
                // Timed wait: visibility changes at neighbours do signal us,
                // but the timeout makes missed wake-ups harmless.
                shared.signals[pos.index()].wait_for(&mut cell, Duration::from_millis(1));
                drop(cell);
            }
            Action::Move(port) => {
                drop(cell);
                let to = pos.flip(port);
                let (first, second) = if pos < to { (pos, to) } else { (to, pos) };
                let mut a = shared.cells[first.index()].lock();
                let mut b = shared.cells[second.index()].lock();
                let (from_cell, to_cell) = if pos < to {
                    (&mut *a, &mut *b)
                } else {
                    (&mut *b, &mut *a)
                };
                from_cell.active -= 1;
                to_cell.active += 1;
                shared.occupancy[pos.index()].fetch_sub(1, Ordering::AcqRel);
                shared.occupancy[to.index()].fetch_add(1, Ordering::AcqRel);
                shared.visited[to.index()].store(true, Ordering::Release);
                let away = match (pos == Node::ROOT, to == Node::ROOT) {
                    (true, false) => 1,
                    (false, true) => -1,
                    _ => 0,
                };
                shared.emit(
                    EventKind::Move {
                        agent: id,
                        from: pos,
                        to,
                        role,
                    },
                    away,
                );
                match role {
                    Role::Coordinator => shared.coordinator_moves.fetch_add(1, Ordering::Relaxed),
                    Role::Worker => shared.worker_moves.fetch_add(1, Ordering::Relaxed),
                };
                drop(a);
                drop(b);
                shared.notify_visible(pos);
                shared.notify_visible(to);
                pos = to;
            }
            Action::Clone(port) => {
                drop(cell);
                let to = pos.flip(port);
                let child_id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                shared.team_size.fetch_add(1, Ordering::Relaxed);
                {
                    let mut to_cell = shared.cells[to.index()].lock();
                    to_cell.active += 1;
                    shared.occupancy[to.index()].fetch_add(1, Ordering::AcqRel);
                    shared.visited[to.index()].store(true, Ordering::Release);
                    shared.emit(
                        EventKind::CloneSpawn {
                            parent: id,
                            child: child_id,
                            from: pos,
                            to,
                        },
                        i64::from(to != Node::ROOT),
                    );
                    shared.worker_moves.fetch_add(1, Ordering::Relaxed);
                }
                shared.notify_visible(to);
                let child_program = program.clone_program();
                scope.spawn(move || {
                    agent_main(shared, scope, child_program, child_id, Role::Worker, to)
                });
            }
            Action::Terminate => {
                cell.active -= 1;
                drop(cell);
                shared.emit(
                    EventKind::Terminate {
                        agent: id,
                        node: pos,
                    },
                    0,
                );
                shared.notify_visible(pos);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WalkTo {
        target: Node,
    }

    impl AgentProgram for WalkTo {
        type Board = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
            let here = ctx.node();
            if here == self.target {
                return Action::Terminate;
            }
            for p in 1..=ctx.cube().dim() {
                if self.target.bit(p) && !here.bit(p) {
                    return Action::Move(p);
                }
            }
            Action::Terminate
        }
    }

    #[test]
    fn threaded_walkers_reach_targets() {
        let cube = Hypercube::new(4);
        let programs: Vec<(WalkTo, Role)> = [3u32, 5, 9, 14, 15]
            .iter()
            .map(|&t| (WalkTo { target: Node(t) }, Role::Worker))
            .collect();
        let report = run_threaded(cube, programs, ThreadedConfig::default()).unwrap();
        for t in [3u32, 5, 9, 14, 15] {
            assert_eq!(report.occupancy[t as usize], 1);
        }
        assert_eq!(report.metrics.team_size, 5);
        let expected_moves: u32 = [3u32, 5, 9, 14, 15].iter().map(|t| t.count_ones()).sum();
        assert_eq!(report.metrics.worker_moves, u64::from(expected_moves));
    }

    /// Wait until the neighbour across port 1 is guarded, then walk there…
    /// exercising visibility wake-ups across threads.
    struct WaitForNeighbor {
        done: bool,
    }

    impl AgentProgram for WaitForNeighbor {
        type Board = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
            if self.done {
                return Action::Terminate;
            }
            if ctx.node() == Node::ROOT {
                if ctx.neighbor_state(1) == NodeState::Guarded {
                    self.done = true;
                    return Action::Move(2);
                }
                Action::Wait
            } else {
                Action::Terminate
            }
        }
    }

    struct Settler;
    impl AgentProgram for Settler {
        type Board = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
            if ctx.node() == Node::ROOT {
                Action::Move(1)
            } else {
                Action::Terminate
            }
        }
    }

    enum Either {
        A(WaitForNeighbor),
        B(Settler),
    }
    impl AgentProgram for Either {
        type Board = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
            match self {
                Either::A(a) => a.step(ctx),
                Either::B(b) => b.step(ctx),
            }
        }
    }

    #[test]
    fn visibility_across_threads() {
        let cube = Hypercube::new(2);
        let programs = vec![
            (Either::A(WaitForNeighbor { done: false }), Role::Worker),
            (Either::B(Settler), Role::Worker),
        ];
        let cfg = ThreadedConfig {
            visibility: true,
            ..ThreadedConfig::default()
        };
        let report = run_threaded(cube, programs, cfg).unwrap();
        assert_eq!(report.occupancy[1], 1);
        assert_eq!(report.occupancy[2], 1);
    }

    #[derive(Clone)]
    struct CloneChain {
        hops_left: u32,
        child_hops: u32,
    }

    impl AgentProgram for CloneChain {
        type Board = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Action {
            if self.hops_left == 0 {
                return Action::Terminate;
            }
            let port = ctx.node().level() + 1;
            self.child_hops = self.hops_left - 1;
            self.hops_left = 0;
            Action::Clone(port)
        }
        fn clone_program(&self) -> Self {
            CloneChain {
                hops_left: self.child_hops,
                child_hops: 0,
            }
        }
    }

    #[test]
    fn threaded_cloning_spawns_threads() {
        // A chain of clones 0 → 1 → 11 → 111 on H_3.
        let cube = Hypercube::new(3);
        let programs = vec![(
            CloneChain {
                hops_left: 3,
                child_hops: 0,
            },
            Role::Worker,
        )];
        let report = run_threaded(cube, programs, ThreadedConfig::default()).unwrap();
        assert_eq!(report.metrics.team_size, 4);
        assert_eq!(report.metrics.worker_moves, 3);
        assert_eq!(report.occupancy[0b111], 1);
    }

    #[test]
    fn timeout_surfaces_deadlock() {
        struct Forever;
        impl AgentProgram for Forever {
            type Board = ();
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Action {
                Action::Wait
            }
        }
        let cube = Hypercube::new(2);
        let cfg = ThreadedConfig {
            timeout: Duration::from_millis(50),
            ..ThreadedConfig::default()
        };
        let res = run_threaded(cube, vec![(Forever, Role::Worker)], cfg);
        assert!(matches!(res, Err(RunError::ActivationLimit)));
    }
}
