//! Differential battery for the 4-wide word kernels: every widened path is
//! held **bit-identical** to its retained single-word scalar reference.
//!
//! Coverage deliberately includes word counts not divisible by the unroll
//! width — universes with `n mod 256 ≠ 0` exercise both the 4-aligned main
//! loop and the scalar tail — and the universes are drawn from the shapes
//! the rest of the workspace actually runs on: hypercubes (`2^d` nodes),
//! rings (any `n`), tori (`rows × cols`), cube-connected cycles
//! (`d · 2^d`), de Bruijn graphs, and random partial grids (arbitrary
//! hole-dependent live counts).

use hypersweep_topology::graph::{CubeConnectedCycles, DeBruijn, Ring, Torus};
use hypersweep_topology::grid::PartialGrid;
use hypersweep_topology::{wide, Hypercube, Node, NodeSet, Topology};

use proptest::prelude::*;

/// Deterministic word fill from a seed (SplitMix64 mix).
fn fill(words: &mut [u64], seed: u64) {
    let mut s = seed;
    for w in words.iter_mut() {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *w = z ^ (z >> 31);
    }
}

/// A random member set over `0..n`, about half full, tail kept clean.
fn random_set(n: usize, seed: u64) -> NodeSet {
    let mut s = NodeSet::new(n);
    fill(s.words_mut(), seed);
    let tail = n & 63;
    if tail != 0 {
        if let Some(last) = s.words_mut().last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
    s
}

/// The universe sizes induced by the workspace's graph families, chosen so
/// word counts hit every residue mod 4 (and `n mod 256 ≠ 0` throughout).
fn family_universes() -> Vec<(&'static str, usize)> {
    vec![
        ("hypercube d=9", Hypercube::new(9).node_count()),
        ("ring 389", Ring::new(389).node_count()),
        ("torus 17x23", Torus::new(17, 23).node_count()),
        ("ccc d=5", CubeConnectedCycles::new(5).node_count()),
        ("debruijn k=9", DeBruijn::new(9).node_count()),
        (
            "grid 13x17 holes",
            PartialGrid::random_holes(13, 17, 30, 0xC0FFEE).node_count(),
        ),
        ("corridor 9x31", PartialGrid::corridor(9, 31).node_count()),
    ]
}

#[test]
fn bulk_ops_match_scalar_on_family_universes() {
    for (label, n) in family_universes() {
        let words = n.div_ceil(64);
        for salt in 0..4u64 {
            let mut src = vec![0u64; words];
            fill(&mut src, salt.wrapping_mul(77) + 1);
            type BinOp = fn(&mut [u64], &[u64]);
            let pairs: [(BinOp, BinOp); 4] = [
                (wide::or_assign, wide::or_assign_scalar),
                (wide::and_assign, wide::and_assign_scalar),
                (wide::xor_assign, wide::xor_assign_scalar),
                (wide::andnot_assign, wide::andnot_assign_scalar),
            ];
            for (w, s) in pairs {
                let mut a = vec![0u64; words];
                fill(&mut a, salt + 13);
                let mut b = a.clone();
                w(&mut a, &src);
                s(&mut b, &src);
                assert_eq!(a, b, "{label} salt {salt}");
            }
            assert_eq!(
                wide::count_ones(&src),
                wide::count_ones_scalar(&src),
                "{label} salt {salt}"
            );
        }
    }
}

#[test]
fn flood_steps_match_scalar_on_family_universes() {
    for (label, n) in family_universes() {
        let words = n.div_ceil(64);
        for salt in 0..4u64 {
            let mut blocked = vec![0u64; words];
            let mut next_w = vec![0u64; words];
            let mut acc_w = vec![0u64; words];
            fill(&mut blocked, salt + 1);
            fill(&mut next_w, salt + 2);
            fill(&mut acc_w, salt + 3);
            let mut next_s = next_w.clone();
            let mut acc_s = acc_w.clone();
            let gw = wide::flood_step(&mut next_w, &mut acc_w, &blocked);
            let gs = wide::flood_step_scalar(&mut next_s, &mut acc_s, &blocked);
            assert_eq!((gw, &next_w, &acc_w), (gs, &next_s, &acc_s), "{label}");

            let mut a = vec![0u64; words];
            let mut b = vec![0u64; words];
            fill(&mut a, salt + 4);
            fill(&mut b, salt + 5);
            let mut m_w = vec![0u64; words];
            fill(&mut m_w, salt + 6);
            let mut m_s = m_w.clone();
            let gw = wide::mask_clear2(&mut m_w, &a, &b);
            let gs = wide::mask_clear2_scalar(&mut m_s, &a, &b);
            assert_eq!((gw, &m_w), (gs, &m_s), "{label}");
        }
    }
}

#[test]
fn nodeset_bulk_ops_match_per_node_semantics() {
    for (label, n) in family_universes() {
        let a0 = random_set(n, 11);
        let b = random_set(n, 22);
        let ops: [(&str, fn(&mut NodeSet, &NodeSet), fn(bool, bool) -> bool); 4] = [
            ("union", NodeSet::union_with, |x, y| x | y),
            ("intersect", NodeSet::intersect_with, |x, y| x & y),
            ("symdiff", NodeSet::symmetric_difference_with, |x, y| x ^ y),
            ("subtract", NodeSet::subtract, |x, y| x & !y),
        ];
        for (name, op, truth) in ops {
            let mut a = a0.clone();
            op(&mut a, &b);
            for i in 0..n as u32 {
                assert_eq!(
                    a.contains(Node(i)),
                    truth(a0.contains(Node(i)), b.contains(Node(i))),
                    "{label}: {name} node {i}"
                );
            }
            assert_eq!(
                a.count_ones(),
                (0..n as u32).filter(|&i| a.contains(Node(i))).count(),
                "{label}: {name} count"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chunked expansion (in-word shuffles + intra-chunk port-7/8
    /// swaps + chunk-stride XOR) agrees with the retained scalar word loop
    /// on every dimension: d ≤ 7 shares the scalar path by construction,
    /// d ∈ 8..=12 runs the genuinely 4-wide code.
    #[test]
    fn hypercube_expansion_matches_scalar_reference(
        d in 1u32..=12,
        seed in 0u64..u64::MAX,
    ) {
        let n = 1usize << d;
        let s = random_set(n, seed);
        let mut fast = NodeSet::new(n);
        let mut slow = NodeSet::new(n);
        s.hypercube_expand_into(d, &mut fast);
        s.hypercube_expand_into_scalar(d, &mut slow);
        prop_assert_eq!(&fast, &slow, "d = {}", d);
    }

    /// And the scalar reference itself agrees with per-node neighbour
    /// enumeration, so the chain wide == scalar == per-node is closed.
    #[test]
    fn hypercube_expansion_matches_per_node_neighbours(
        d in 8u32..=10,
        seed in 0u64..u64::MAX,
    ) {
        let cube = Hypercube::new(d);
        let n = cube.node_count();
        let s = random_set(n, seed);
        let mut fast = NodeSet::new(n);
        s.hypercube_expand_into(d, &mut fast);
        let mut slow = NodeSet::new(n);
        for x in s.iter() {
            for y in cube.neighbors(x) {
                slow.insert(y);
            }
        }
        prop_assert_eq!(&fast, &slow, "d = {}", d);
    }

    /// Random universes drive the 4-aligned/tail split through every
    /// residue: slice kernels stay bit-identical to the scalar loops.
    #[test]
    fn slice_kernels_match_scalar_on_random_universes(
        n in 1usize..=2048,
        seed in 0u64..u64::MAX,
    ) {
        let words = n.div_ceil(64);
        let mut src = vec![0u64; words];
        let mut a = vec![0u64; words];
        fill(&mut src, seed);
        fill(&mut a, seed ^ 0xABCD);
        let mut b = a.clone();
        wide::or_assign(&mut a, &src);
        wide::or_assign_scalar(&mut b, &src);
        prop_assert_eq!(&a, &b);
        let mut c = a.clone();
        let mut d2 = a.clone();
        wide::andnot_assign(&mut c, &src);
        wide::andnot_assign_scalar(&mut d2, &src);
        prop_assert_eq!(&c, &d2);
        prop_assert_eq!(wide::count_ones(&a), wide::count_ones_scalar(&a));

        let mut next_w = a.clone();
        let mut next_s = a.clone();
        let mut acc_w = c.clone();
        let mut acc_s = c.clone();
        let gw = wide::flood_step(&mut next_w, &mut acc_w, &src);
        let gs = wide::flood_step_scalar(&mut next_s, &mut acc_s, &src);
        prop_assert_eq!((gw, &next_w, &acc_w), (gs, &next_s, &acc_s));
    }
}
