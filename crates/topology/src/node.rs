//! Node identifiers.
//!
//! A node of the `d`-dimensional hypercube is a `d`-bit binary string. We
//! store it as the corresponding integer in a [`Node`] newtype. Bit
//! *positions* follow the paper's convention and are counted `1..=d`,
//! position `1` being the least significant bit. Written most significant
//! bit first (as the paper writes its strings), a node "starting with `k`
//! zeros followed by a one" therefore has its most significant set bit at
//! position `d - k`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A node of a hypercube (or any topology with at most `2^32` nodes),
/// identified by the integer whose binary representation is the node's
/// label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Node(pub u32);

impl Node {
    /// The homebase of every strategy in the paper: node `00…0`.
    pub const ROOT: Node = Node(0);

    /// Raw integer identifier.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Usable as an index into per-node arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Number of `1` bits — the node's *level* in the paper's level
    /// decomposition of the hypercube (§2).
    #[inline]
    pub const fn level(self) -> u32 {
        self.0.count_ones()
    }

    /// `m(x)`: the position (`1..=d`) of the most significant set bit, or
    /// `0` for the root `00…0`.
    ///
    /// This is the paper's `m(x)`; the node's *type* in the broadcast tree
    /// of `H_d` is `T(d − m(x))`.
    #[inline]
    pub const fn msb_position(self) -> u32 {
        32 - self.0.leading_zeros()
    }

    /// Whether bit `position` (`1..=d`) is set.
    #[inline]
    pub const fn bit(self, position: u32) -> bool {
        debug_assert!(position >= 1);
        self.0 & (1 << (position - 1)) != 0
    }

    /// The neighbour across dimension `position` (`1..=d`), i.e. the node
    /// whose label differs from `self` exactly in that bit. `position` is
    /// precisely the paper's port label `λ_x(x, y)` — identical at both
    /// endpoints in a hypercube.
    #[inline]
    pub const fn flip(self, position: u32) -> Node {
        debug_assert!(position >= 1);
        Node(self.0 ^ (1 << (position - 1)))
    }

    /// Hamming distance to `other` — the hypercube graph distance.
    #[inline]
    pub const fn hamming(self, other: Node) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Bitwise meet (`AND`): the lowest common "ancestor-like" node through
    /// which two nodes of equal level can always be connected by a path that
    /// never climbs above their own level (used by the synchronizer's
    /// intra-level navigation).
    #[inline]
    pub const fn meet(self, other: Node) -> Node {
        Node(self.0 & other.0)
    }

    /// Binary string of the node, most significant bit first, padded to
    /// `dim` characters — the way the paper writes node labels.
    pub fn bitstring(self, dim: u32) -> String {
        (1..=dim)
            .rev()
            .map(|p| if self.bit(p) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node({})", self.0)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Node {
    fn from(v: u32) -> Self {
        Node(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_level_zero_and_no_msb() {
        assert_eq!(Node::ROOT.level(), 0);
        assert_eq!(Node::ROOT.msb_position(), 0);
    }

    #[test]
    fn msb_position_matches_log2() {
        assert_eq!(Node(1).msb_position(), 1);
        assert_eq!(Node(2).msb_position(), 2);
        assert_eq!(Node(3).msb_position(), 2);
        assert_eq!(Node(4).msb_position(), 3);
        assert_eq!(Node(0b10_1101).msb_position(), 6);
    }

    #[test]
    fn flip_is_an_involution() {
        for v in 0..64u32 {
            for p in 1..=6 {
                assert_eq!(Node(v).flip(p).flip(p), Node(v));
            }
        }
    }

    #[test]
    fn flip_changes_level_by_one() {
        for v in 0..64u32 {
            for p in 1..=6 {
                let a = Node(v);
                let b = a.flip(p);
                assert_eq!(a.hamming(b), 1);
                let dl = a.level().abs_diff(b.level());
                assert_eq!(dl, 1);
            }
        }
    }

    #[test]
    fn bitstring_is_msb_first() {
        assert_eq!(Node(0b100110).bitstring(6), "100110");
        assert_eq!(Node(1).bitstring(4), "0001");
        assert_eq!(Node(0).bitstring(3), "000");
    }

    #[test]
    fn bit_agrees_with_bitstring() {
        let n = Node(0b01101);
        let s = n.bitstring(5);
        for p in 1..=5 {
            let ch = s.as_bytes()[(5 - p) as usize];
            assert_eq!(n.bit(p), ch == b'1');
        }
    }

    #[test]
    fn hamming_distance_examples() {
        assert_eq!(Node(0).hamming(Node(0b111)), 3);
        assert_eq!(Node(0b101).hamming(Node(0b011)), 2);
        assert_eq!(Node(7).hamming(Node(7)), 0);
    }

    #[test]
    fn meet_is_lower_bound_in_level() {
        let a = Node(0b1100);
        let b = Node(0b1010);
        let m = a.meet(b);
        assert_eq!(m, Node(0b1000));
        assert!(m.level() <= a.level());
        assert!(m.level() <= b.level());
    }
}
