//! A minimal topology abstraction plus comparison topologies.
//!
//! The paper's strategies are hypercube-specific, but the baseline
//! strategies (tree search, flooding) and the exhaustive optimum search are
//! defined for any connected graph. This module provides the [`Topology`]
//! trait they are written against, an adjacency-list [`AdjGraph`], and the
//! standard interconnection topologies used for comparison experiments.

use serde::{Deserialize, Serialize};

use crate::hypercube::Hypercube;
use crate::node::Node;

/// A finite connected graph with nodes `0..node_count()`.
pub trait Topology {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Push the neighbours of `x` into `out` (cleared first).
    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>);

    /// Convenience: collect the neighbours of `x`.
    fn neighbors_vec(&self, x: Node) -> Vec<Node> {
        let mut v = Vec::new();
        self.neighbors_into(x, &mut v);
        v
    }

    /// Degree of `x`.
    fn degree(&self, x: Node) -> usize {
        self.neighbors_vec(x).len()
    }

    /// If this topology is the hypercube `H_d` with the standard node
    /// numbering, its dimension — consumers may then use word-parallel
    /// [`crate::NodeSet`] kernels instead of per-node adjacency walks.
    fn hypercube_dim(&self) -> Option<u32> {
        None
    }

    /// Number of undirected edges.
    fn edge_count(&self) -> usize {
        let mut v = Vec::new();
        let mut total = 0;
        for i in 0..self.node_count() as u32 {
            self.neighbors_into(Node(i), &mut v);
            total += v.len();
        }
        total / 2
    }

    /// BFS distances from `from` to every node (`u32::MAX` if unreachable).
    fn bfs_distances(&self, from: Node) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[from.index()] = 0;
        queue.push_back(from);
        let mut nbrs = Vec::new();
        while let Some(x) = queue.pop_front() {
            self.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if dist[y.index()] == u32::MAX {
                    dist[y.index()] = dist[x.index()] + 1;
                    queue.push_back(y);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected.
    fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        self.bfs_distances(Node(0)).iter().all(|&d| d != u32::MAX)
    }

    /// A BFS spanning tree rooted at `root`: `parent[v]` is `v`'s parent,
    /// `parent[root] = root`.
    fn bfs_spanning_tree(&self, root: Node) -> Vec<Node> {
        let mut parent = vec![Node(u32::MAX); self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        parent[root.index()] = root;
        queue.push_back(root);
        let mut nbrs = Vec::new();
        while let Some(x) = queue.pop_front() {
            self.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if parent[y.index()] == Node(u32::MAX) {
                    parent[y.index()] = x;
                    queue.push_back(y);
                }
            }
        }
        parent
    }
}

impl Topology for Hypercube {
    fn node_count(&self) -> usize {
        Hypercube::node_count(self)
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        out.extend(self.neighbors(x));
    }

    fn degree(&self, _x: Node) -> usize {
        self.dim() as usize
    }

    fn edge_count(&self) -> usize {
        Hypercube::edge_count(self)
    }

    fn hypercube_dim(&self) -> Option<u32> {
        Some(self.dim())
    }
}

/// A general undirected graph stored as adjacency lists.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjGraph {
    adj: Vec<Vec<Node>>,
}

impl AdjGraph {
    /// An edgeless graph on `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        AdjGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Add an undirected edge; duplicate edges are ignored.
    pub fn add_edge(&mut self, a: Node, b: Node) {
        assert_ne!(a, b, "no self loops");
        if !self.adj[a.index()].contains(&b) {
            self.adj[a.index()].push(b);
            self.adj[b.index()].push(a);
        }
    }

    /// Remove an undirected edge; absent edges are ignored. Returns
    /// whether the edge existed. Used by the dynamic-graph scenario's
    /// between-rounds mutation stream.
    pub fn remove_edge(&mut self, a: Node, b: Node) -> bool {
        let existed = self.adj[a.index()].contains(&b);
        self.adj[a.index()].retain(|&x| x != b);
        self.adj[b.index()].retain(|&x| x != a);
        existed
    }

    /// Whether the undirected edge `(a, b)` is present.
    pub fn has_edge(&self, a: Node, b: Node) -> bool {
        self.adj[a.index()].contains(&b)
    }

    /// Build from an explicit edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = AdjGraph::with_nodes(n);
        for &(a, b) in edges {
            g.add_edge(Node(a), Node(b));
        }
        g
    }

    /// Materialize any [`Topology`] into an adjacency-list graph.
    pub fn from_topology<T: Topology + ?Sized>(t: &T) -> Self {
        let mut g = AdjGraph::with_nodes(t.node_count());
        let mut nbrs = Vec::new();
        for i in 0..t.node_count() as u32 {
            t.neighbors_into(Node(i), &mut nbrs);
            for &y in &nbrs {
                if y.0 > i {
                    g.add_edge(Node(i), y);
                }
            }
        }
        g
    }

    /// A tree from a parent array (`parent[root] = root`).
    pub fn from_parent_array(parent: &[Node]) -> Self {
        let mut g = AdjGraph::with_nodes(parent.len());
        for (i, &p) in parent.iter().enumerate() {
            let v = Node(i as u32);
            if p != v {
                g.add_edge(v, p);
            }
        }
        g
    }
}

impl Topology for AdjGraph {
    fn node_count(&self) -> usize {
        self.adj.len()
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        out.extend_from_slice(&self.adj[x.index()]);
    }

    fn degree(&self, x: Node) -> usize {
        self.adj[x.index()].len()
    }
}

/// A cycle on `n ≥ 3` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// Build a ring; panics for `n < 3`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        Ring { n }
    }
}

impl Topology for Ring {
    fn node_count(&self) -> usize {
        self.n
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        let n = self.n as u32;
        out.push(Node((x.0 + 1) % n));
        out.push(Node((x.0 + n - 1) % n));
    }

    fn degree(&self, _x: Node) -> usize {
        2
    }
}

/// A `rows × cols` torus (wrap-around grid).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    rows: usize,
    cols: usize,
}

impl Torus {
    /// Build a torus; both sides must be ≥ 3 so neighbours are distinct.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus sides must be at least 3");
        Torus { rows, cols }
    }

    fn coords(&self, x: Node) -> (usize, usize) {
        (x.index() / self.cols, x.index() % self.cols)
    }

    fn node_at(&self, r: usize, c: usize) -> Node {
        Node((r * self.cols + c) as u32)
    }
}

impl Topology for Torus {
    fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        let (r, c) = self.coords(x);
        out.push(self.node_at((r + 1) % self.rows, c));
        out.push(self.node_at((r + self.rows - 1) % self.rows, c));
        out.push(self.node_at(r, (c + 1) % self.cols));
        out.push(self.node_at(r, (c + self.cols - 1) % self.cols));
    }

    fn degree(&self, _x: Node) -> usize {
        4
    }
}

/// The complete graph `K_n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Complete {
    n: usize,
}

impl Complete {
    /// Build `K_n` for `n ≥ 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Complete { n }
    }
}

impl Topology for Complete {
    fn node_count(&self) -> usize {
        self.n
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        out.extend((0..self.n as u32).filter(|&i| i != x.0).map(Node));
    }

    fn degree(&self, _x: Node) -> usize {
        self.n - 1
    }
}

/// A path on `n` nodes (`0 — 1 — … — n−1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    n: usize,
}

impl Path {
    /// Build a path; panics for `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Path { n }
    }
}

impl Topology for Path {
    fn node_count(&self) -> usize {
        self.n
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        if x.index() + 1 < self.n {
            out.push(Node(x.0 + 1));
        }
        if x.0 > 0 {
            out.push(Node(x.0 - 1));
        }
    }
}

/// A star: node `0` joined to `1..n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Star {
    n: usize,
}

impl Star {
    /// Build a star on `n ≥ 2` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Star { n }
    }
}

impl Topology for Star {
    fn node_count(&self) -> usize {
        self.n
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        if x.0 == 0 {
            out.extend((1..self.n as u32).map(Node));
        } else {
            out.push(Node(0));
        }
    }
}

/// The binary de Bruijn graph `DB(2, k)`: `2^k` nodes, node `x` adjacent
/// to its shift successors `2x mod n`, `2x+1 mod n` and predecessors
/// `⌊x/2⌋`, `⌊x/2⌋ + n/2` (undirected, self-loops dropped, duplicates
/// merged). A classic constant-degree interconnection network, used by the
/// generic-planner experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeBruijn {
    k: u32,
}

impl DeBruijn {
    /// Build `DB(2, k)` for `1 ≤ k ≤ 20`.
    pub fn new(k: u32) -> Self {
        assert!((1..=20).contains(&k));
        DeBruijn { k }
    }
}

impl Topology for DeBruijn {
    fn node_count(&self) -> usize {
        1usize << self.k
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        let n = self.node_count() as u32;
        let mut push = |y: u32| {
            if y != x.0 && !out.contains(&Node(y)) {
                out.push(Node(y));
            }
        };
        push((2 * x.0) % n);
        push((2 * x.0 + 1) % n);
        push(x.0 / 2);
        push(x.0 / 2 + n / 2);
    }
}

/// The cube-connected cycles `CCC(d)`: each hypercube node is replaced by a
/// `d`-cycle; node `(x, p)` (id `x·d + p`) is adjacent to its cycle
/// neighbours `(x, p±1 mod d)` and across dimension `p` to
/// `(x ⊕ 2^p, p)`. 3-regular for `d ≥ 3`; the bounded-degree cousin of the
/// hypercube.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeConnectedCycles {
    d: u32,
}

impl CubeConnectedCycles {
    /// Build `CCC(d)` for `3 ≤ d ≤ 20`.
    pub fn new(d: u32) -> Self {
        assert!((3..=20).contains(&d));
        CubeConnectedCycles { d }
    }

    /// The id of `(cube_node, position)`.
    pub fn id(&self, cube_node: u32, position: u32) -> Node {
        Node(cube_node * self.d + position)
    }

    /// Decompose an id into `(cube_node, position)`.
    pub fn coords(&self, v: Node) -> (u32, u32) {
        (v.0 / self.d, v.0 % self.d)
    }
}

impl Topology for CubeConnectedCycles {
    fn node_count(&self) -> usize {
        (self.d as usize) << self.d
    }

    fn neighbors_into(&self, v: Node, out: &mut Vec<Node>) {
        out.clear();
        let (x, p) = self.coords(v);
        let d = self.d;
        out.push(self.id(x, (p + 1) % d));
        out.push(self.id(x, (p + d - 1) % d));
        out.push(self.id(x ^ (1 << p), p));
    }

    fn degree(&self, _v: Node) -> usize {
        3
    }
}

/// An induced subgraph: `base` with a set of nodes removed (e.g. faulty
/// hosts in a fabric). Node ids are preserved; removed nodes become
/// isolated (degree 0) and must not be used as endpoints by searches.
///
/// The paper's tailored strategies require the full hypercube, but the
/// generic planner (`hypersweep-baselines::planner`) searches any connected
/// induced subgraph — the natural fault-tolerance story.
#[derive(Clone, Debug)]
pub struct InducedSubgraph<T> {
    base: T,
    removed: Vec<bool>,
}

impl<T: Topology> InducedSubgraph<T> {
    /// Remove `faulty` nodes from `base`.
    pub fn new(base: T, faulty: &[Node]) -> Self {
        let mut removed = vec![false; base.node_count()];
        for f in faulty {
            removed[f.index()] = true;
        }
        InducedSubgraph { base, removed }
    }

    /// Whether `x` was removed.
    pub fn is_removed(&self, x: Node) -> bool {
        self.removed[x.index()]
    }

    /// Nodes still present.
    pub fn live_nodes(&self) -> impl Iterator<Item = Node> + '_ {
        (0..self.base.node_count() as u32)
            .map(Node)
            .filter(|x| !self.removed[x.index()])
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.removed.iter().filter(|&&r| !r).count()
    }

    /// Whether the live part is connected (ignoring removed nodes).
    pub fn live_connected(&self) -> bool {
        let Some(start) = self.live_nodes().next() else {
            return true;
        };
        let reach = self.bfs_distances(start);
        self.live_nodes().all(|x| reach[x.index()] != u32::MAX)
    }
}

impl<T: Topology> Topology for InducedSubgraph<T> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        if self.removed[x.index()] {
            out.clear();
            return;
        }
        self.base.neighbors_into(x, out);
        out.retain(|y| !self.removed[y.index()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_implements_topology_consistently() {
        let h = Hypercube::new(6);
        assert_eq!(Topology::node_count(&h), 64);
        assert_eq!(Topology::edge_count(&h), 6 * 32);
        assert!(h.is_connected());
        let d = h.bfs_distances(Node::ROOT);
        for x in h.nodes() {
            assert_eq!(d[x.index()], x.level(), "BFS distance = level");
        }
    }

    #[test]
    fn bfs_spanning_tree_of_hypercube_is_a_tree() {
        let h = Hypercube::new(5);
        let parent = h.bfs_spanning_tree(Node::ROOT);
        let g = AdjGraph::from_parent_array(&parent);
        assert_eq!(g.edge_count(), h.node_count() - 1);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_torus_complete_shapes() {
        let r = Ring::new(10);
        assert_eq!(r.edge_count(), 10);
        assert!(r.is_connected());

        let t = Torus::new(4, 5);
        assert_eq!(t.node_count(), 20);
        assert_eq!(t.edge_count(), 40);
        assert!(t.is_connected());

        let k = Complete::new(7);
        assert_eq!(k.edge_count(), 21);
        assert!(k.is_connected());
    }

    #[test]
    fn path_and_star() {
        let p = Path::new(9);
        assert_eq!(p.edge_count(), 8);
        assert!(p.is_connected());
        assert_eq!(p.degree(Node(0)), 1);
        assert_eq!(p.degree(Node(4)), 2);

        let s = Star::new(8);
        assert_eq!(s.edge_count(), 7);
        assert_eq!(s.degree(Node(0)), 7);
        assert_eq!(s.degree(Node(3)), 1);
    }

    #[test]
    fn adj_graph_ignores_duplicate_edges() {
        let mut g = AdjGraph::with_nodes(3);
        g.add_edge(Node(0), Node(1));
        g.add_edge(Node(1), Node(0));
        g.add_edge(Node(1), Node(2));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn from_topology_roundtrip() {
        let h = Hypercube::new(4);
        let g = AdjGraph::from_topology(&h);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), Topology::edge_count(&h));
        for x in h.nodes() {
            let mut a = g.neighbors_vec(x);
            let mut b: Vec<_> = h.neighbors(x).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn de_bruijn_is_connected_with_bounded_degree() {
        for k in 2..=8 {
            let g = DeBruijn::new(k);
            assert!(g.is_connected(), "DB(2,{k})");
            for i in 0..g.node_count() as u32 {
                let deg = g.degree(Node(i));
                assert!((1..=4).contains(&deg), "DB(2,{k}) node {i}: degree {deg}");
            }
            // Symmetry of the undirected adjacency.
            let mut nb = Vec::new();
            let mut nb2 = Vec::new();
            for i in 0..g.node_count() as u32 {
                g.neighbors_into(Node(i), &mut nb);
                for &y in &nb {
                    g.neighbors_into(y, &mut nb2);
                    assert!(nb2.contains(&Node(i)), "asymmetric edge {i}-{y}");
                }
            }
        }
    }

    #[test]
    fn ccc_structure() {
        for d in 3..=6 {
            let g = CubeConnectedCycles::new(d);
            assert_eq!(g.node_count(), (d as usize) << d);
            assert!(g.is_connected(), "CCC({d})");
            for i in 0..g.node_count() as u32 {
                assert_eq!(g.degree(Node(i)), 3);
                let mut nb = Vec::new();
                g.neighbors_into(Node(i), &mut nb);
                assert_eq!(nb.len(), 3);
                let mut nb2 = Vec::new();
                for &y in &nb {
                    g.neighbors_into(y, &mut nb2);
                    assert!(nb2.contains(&Node(i)));
                }
            }
        }
    }

    #[test]
    fn ccc_diameter_is_logarithmic_ish() {
        let g = CubeConnectedCycles::new(4);
        let dist = g.bfs_distances(Node(0));
        let diameter = *dist.iter().max().unwrap();
        // CCC(d) diameter is Θ(d); for d = 4 it is well under n.
        assert!(diameter <= 12, "diameter {diameter}");
    }

    #[test]
    fn induced_subgraph_drops_faulty_nodes() {
        let h = Hypercube::new(4);
        let faulty = [Node(5), Node(10)];
        let g = InducedSubgraph::new(h, &faulty);
        assert_eq!(g.live_count(), 14);
        assert!(g.is_removed(Node(5)));
        assert!(!g.is_removed(Node(4)));
        let mut nb = Vec::new();
        g.neighbors_into(Node(4), &mut nb); // neighbours of 0100: 0101(!), 0110, 0000, 1100
        assert!(!nb.contains(&Node(5)));
        assert_eq!(nb.len(), 3);
        g.neighbors_into(Node(5), &mut nb);
        assert!(nb.is_empty(), "removed nodes are isolated");
        assert!(g.live_connected());
    }

    #[test]
    fn induced_subgraph_detects_disconnection() {
        // Remove all neighbours of node 0 in H_3: node 0 is cut off.
        let h = Hypercube::new(3);
        let g = InducedSubgraph::new(h, &[Node(1), Node(2), Node(4)]);
        assert!(!g.live_connected());
    }

    #[test]
    fn bfs_distance_on_ring() {
        let r = Ring::new(8);
        let d = r.bfs_distances(Node(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }
}
