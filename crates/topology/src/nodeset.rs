//! Packed node sets: one bit per node, 64 nodes per machine word.
//!
//! The audit kernel and the engines track several dense node predicates
//! (contaminated, visited, guarded, …). Storing them as `Vec<bool>` costs a
//! byte per node and forces per-node loops; a [`NodeSet`] packs the same
//! predicate into `u64` words so membership updates are single bit
//! operations, population counts are `popcnt` loops, and — crucially for
//! the hypercube — *neighbourhood expansion of a whole set* becomes a
//! word-parallel shuffle.
//!
//! The hypercube trick: flipping bit `p−1` of a node id either stays inside
//! a word (port `p ≤ 6`, a masked shift by `2^{p−1}`) or lands in exactly
//! one partner word (port `p > 6`, word index XOR `2^{p−7}`). Expanding a
//! frontier of `n` nodes therefore costs `O(d · n/64)` word operations with
//! no per-node work at all — see [`NodeSet::hypercube_expand_into`].

use crate::node::Node;
use crate::wide;

/// Bits of each word whose `s`-th bit (s = 2^k) is 0, for k = 0..6 —
/// the classic bit-shuffle masks. `SHUFFLE_MASKS[k]` selects, within every
/// aligned block of `2^{k+1}` bits, the lower half.
const SHUFFLE_MASKS: [u64; 6] = [
    0x5555_5555_5555_5555,
    0x3333_3333_3333_3333,
    0x0F0F_0F0F_0F0F_0F0F,
    0x00FF_00FF_00FF_00FF,
    0x0000_FFFF_0000_FFFF,
    0x0000_0000_FFFF_FFFF,
];

/// A set of [`Node`]s over a fixed universe `0..len`, packed 64 per word.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// The empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        NodeSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over the universe `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = NodeSet::new(len);
        s.insert_all();
        s
    }

    /// Size of the universe (not the cardinality; see
    /// [`NodeSet::count_ones`]).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Whether `x` is in the set.
    #[inline]
    pub fn contains(&self, x: Node) -> bool {
        let i = x.index();
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Add `x`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, x: Node) -> bool {
        let i = x.index();
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let bit = 1u64 << (i & 63);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Remove `x`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, x: Node) -> bool {
        let i = x.index();
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let bit = 1u64 << (i & 63);
        let present = *w & bit != 0;
        *w &= !bit;
        present
    }

    /// Number of members.
    pub fn count_ones(&self) -> usize {
        wide::count_ones(&self.words)
    }

    /// Union: `self |= other`. Both sets must share a universe.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        wide::or_assign(&mut self.words, &other.words);
    }

    /// Intersection: `self &= other`. Both sets must share a universe.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        wide::and_assign(&mut self.words, &other.words);
    }

    /// Symmetric difference: `self ^= other`. Both sets must share a
    /// universe.
    pub fn symmetric_difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        wide::xor_assign(&mut self.words, &other.words);
    }

    /// Difference: `self &= !other`. Both sets must share a universe.
    pub fn subtract(&mut self, other: &NodeSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        wide::andnot_assign(&mut self.words, &other.words);
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Insert every node of the universe.
    pub fn insert_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    /// Zero any bits beyond the universe in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The packed words (low bit of word `i` is node `64·i`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words. Callers must keep bits beyond
    /// the universe zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterate the members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = Node> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi as u32) << 6;
            WordBits(w).map(move |b| Node(base + b))
        })
    }

    /// Union of the `d` hypercube neighbourhoods of every member, written
    /// into `out` (overwritten). Both sets must live on the universe of
    /// `H_dim`, i.e. `len == 2^dim`.
    ///
    /// Port `p` flips bit `p−1` of the node id: for `p ≤ 6` that is an
    /// in-word shuffle by `2^{p−1}`; for `p > 6` it swaps whole words at
    /// index distance `2^{p−7}`.
    pub fn hypercube_expand_into(&self, dim: u32, out: &mut NodeSet) {
        debug_assert_eq!(self.len, 1usize << dim);
        debug_assert_eq!(out.len, self.len);
        let nw = self.words.len();
        if nw < 4 {
            // d ≤ 7: at most two words; the chunked path needs whole
            // 4-word chunks.
            self.hypercube_expand_into_scalar(dim, out);
            return;
        }
        // d ≥ 8 ⇒ the word count 2^{d−6} is a multiple of 4, so the whole
        // set divides into aligned 4-word chunks with no tail. Within a
        // chunk, ports 1..=6 are in-word shuffles, port 7 pairs words at
        // XOR-distance 1 (lanes 0↔1, 2↔3), and port 8 pairs at distance 2
        // (lanes 0↔2, 1↔3) — all resolved without leaving the chunk.
        let src = &self.words;
        let dst = &mut out.words;
        let mut i = 0;
        while i < nw {
            let (w0, w1, w2, w3) = (src[i], src[i + 1], src[i + 2], src[i + 3]);
            let mut o0 = w1 | w2;
            let mut o1 = w0 | w3;
            let mut o2 = w3 | w0;
            let mut o3 = w2 | w1;
            for (k, &m) in SHUFFLE_MASKS.iter().enumerate() {
                let s = 1u32 << k;
                o0 |= ((w0 & m) << s) | ((w0 >> s) & m);
                o1 |= ((w1 & m) << s) | ((w1 >> s) & m);
                o2 |= ((w2 & m) << s) | ((w2 >> s) & m);
                o3 |= ((w3 & m) << s) | ((w3 >> s) & m);
            }
            dst[i] = o0;
            dst[i + 1] = o1;
            dst[i + 2] = o2;
            dst[i + 3] = o3;
            i += 4;
        }
        // Ports 9..=d swap whole chunks: the word stride 2^{p−7} is a
        // multiple of 4, so chunk alignment is preserved.
        for p in 9..=dim {
            let stride = 1usize << (p - 7);
            let mut i = 0;
            while i < nw {
                let j = i ^ stride;
                dst[i] |= src[j];
                dst[i + 1] |= src[j + 1];
                dst[i + 2] |= src[j + 2];
                dst[i + 3] |= src[j + 3];
                i += 4;
            }
        }
    }

    /// Single-word reference for [`NodeSet::hypercube_expand_into`] —
    /// retained for the differential test suite (and used as the real
    /// path when the universe is under four words, i.e. `d ≤ 7`).
    pub fn hypercube_expand_into_scalar(&self, dim: u32, out: &mut NodeSet) {
        debug_assert_eq!(self.len, 1usize << dim);
        debug_assert_eq!(out.len, self.len);
        out.clear();
        let in_word = dim.min(6);
        for k in 0..in_word {
            let s = 1u32 << k;
            let m = SHUFFLE_MASKS[k as usize];
            for (o, &w) in out.words.iter_mut().zip(&self.words) {
                *o |= ((w & m) << s) | ((w >> s) & m);
            }
        }
        for p in 7..=dim {
            let stride = 1usize << (p - 7);
            for i in 0..self.words.len() {
                out.words[i] |= self.words[i ^ stride];
            }
        }
    }
}

/// Iterator over the set bit positions of a single word.
struct WordBits(u64);

impl Iterator for WordBits {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;

    #[test]
    fn insert_remove_count() {
        let mut s = NodeSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(Node(3)));
        assert!(!s.insert(Node(3)));
        assert!(s.insert(Node(99)));
        assert!(s.contains(Node(3)));
        assert!(s.contains(Node(99)));
        assert!(!s.contains(Node(64)));
        assert_eq!(s.count_ones(), 2);
        assert!(s.remove(Node(3)));
        assert!(!s.remove(Node(3)));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn full_and_clear_respect_the_universe() {
        for len in [1, 63, 64, 65, 128, 1000] {
            let mut s = NodeSet::full(len);
            assert_eq!(s.count_ones(), len);
            s.clear();
            assert!(s.is_empty());
        }
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = NodeSet::new(200);
        for i in [199, 0, 64, 63, 65, 1] {
            s.insert(Node(i));
        }
        let got: Vec<u32> = s.iter().map(|n| n.id()).collect();
        assert_eq!(got, vec![0, 1, 63, 64, 65, 199]);
    }

    #[test]
    fn expansion_matches_per_node_neighbours() {
        for d in 0..=9u32 {
            let cube = Hypercube::new(d);
            let n = cube.node_count();
            // A deterministic scatter of members.
            let mut s = NodeSet::new(n);
            for i in 0..n {
                if (i * 2654435761) % 7 < 3 {
                    s.insert(Node(i as u32));
                }
            }
            let mut fast = NodeSet::new(n);
            s.hypercube_expand_into(d, &mut fast);
            let mut slow = NodeSet::new(n);
            for x in s.iter() {
                for y in cube.neighbors(x) {
                    slow.insert(y);
                }
            }
            assert_eq!(fast, slow, "d = {d}");
        }
    }

    #[test]
    fn expansion_of_a_singleton_is_its_neighbourhood() {
        let d = 8;
        let cube = Hypercube::new(d);
        let mut s = NodeSet::new(cube.node_count());
        s.insert(Node(0b1010_1010));
        let mut out = NodeSet::new(cube.node_count());
        s.hypercube_expand_into(d, &mut out);
        assert_eq!(out.count_ones(), d as usize);
        for y in cube.neighbors(Node(0b1010_1010)) {
            assert!(out.contains(y));
        }
    }
}
