//! ASCII renderings of the paper's structural figures.
//!
//! * [`render_broadcast_tree`] — Figure 1: the broadcast tree `T(d)` of
//!   `H_d` with node labels and types.
//! * [`render_msb_classes`] — Figure 3: the msb classes `C_0 … C_d`.
//!
//! The renderings are deterministic, so tests and the CLI can treat them as
//! golden artifacts.

use std::fmt::Write as _;

use crate::broadcast::BroadcastTree;
use crate::hypercube::Hypercube;
use crate::node::Node;

/// Render the broadcast tree of `H_d` (Figure 1) as an indented outline.
///
/// Each line shows the node's bit string, its numeric id, and its heap-queue
/// type `T(k)`.
pub fn render_broadcast_tree(cube: Hypercube) -> String {
    let tree = BroadcastTree::new(cube);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "broadcast tree of H_{} (n = {}): heap queue T({})",
        cube.dim(),
        cube.node_count(),
        cube.dim()
    );
    render_subtree(&tree, Node::ROOT, 0, &mut out);
    out
}

fn render_subtree(tree: &BroadcastTree, x: Node, depth: usize, out: &mut String) {
    let d = tree.cube().dim();
    let _ = writeln!(
        out,
        "{}{} (id {:>3})  T({})",
        "  ".repeat(depth),
        x.bitstring(d),
        x.0,
        tree.node_type(x)
    );
    // Children in decreasing type order, the order Figure 1 draws them.
    let mut children: Vec<Node> = tree.children(x).collect();
    children.sort_by_key(|c| std::cmp::Reverse(tree.node_type(*c)));
    for c in children {
        render_subtree(tree, c, depth + 1, out);
    }
}

/// Render the msb classes `C_0 … C_d` (Figure 3), one line per class.
pub fn render_msb_classes(cube: Hypercube) -> String {
    let tree = BroadcastTree::new(cube);
    let d = cube.dim();
    let mut out = String::new();
    let _ = writeln!(out, "msb classes of H_{d} (Property 5: |C_i| = 2^(i-1))");
    for i in 0..=d {
        let members = tree.msb_class_nodes(i);
        let labels: Vec<String> = members.iter().map(|x| x.bitstring(d)).collect();
        let _ = writeln!(
            out,
            "C_{i} ({:>4} nodes): {}",
            members.len(),
            labels.join(" ")
        );
    }
    out
}

/// Render a per-level census of broadcast-tree node types (the tabular
/// content of Figure 1 / Property 1).
pub fn render_type_census(cube: Hypercube) -> String {
    let d = cube.dim();
    let tree = BroadcastTree::new(cube);
    let mut census = vec![vec![0u64; d as usize + 1]; d as usize + 1];
    for x in cube.nodes() {
        census[x.level() as usize][tree.node_type(x) as usize] += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "type census of the broadcast tree of H_{d}");
    let header: Vec<String> = (0..=d).map(|k| format!("T({k})")).collect();
    let _ = writeln!(out, "level | {}", header.join(" "));
    for (l, counts) in census.iter().enumerate() {
        let row: Vec<String> = counts
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{:>width$}", c, width = header[k].len()))
            .collect();
        let _ = writeln!(out, "{l:>5} | {}", row.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_rendering_has_one_line_per_node_plus_header() {
        for d in 0..=6 {
            let s = render_broadcast_tree(Hypercube::new(d));
            assert_eq!(s.lines().count(), (1 << d) + 1);
        }
    }

    #[test]
    fn tree_rendering_small_golden() {
        let s = render_broadcast_tree(Hypercube::new(2));
        let expect = "broadcast tree of H_2 (n = 4): heap queue T(2)\n\
                      00 (id   0)  T(2)\n\
                      \u{20}\u{20}01 (id   1)  T(1)\n\
                      \u{20}\u{20}\u{20}\u{20}11 (id   3)  T(0)\n\
                      \u{20}\u{20}10 (id   2)  T(0)\n";
        assert_eq!(s, expect);
    }

    #[test]
    fn class_rendering_lists_all_classes() {
        let s = render_msb_classes(Hypercube::new(4));
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("C_4 (   8 nodes)"));
    }

    #[test]
    fn census_rendering_row_count() {
        let s = render_type_census(Hypercube::new(5));
        // header line + column header + 6 level rows
        assert_eq!(s.lines().count(), 8);
    }
}
