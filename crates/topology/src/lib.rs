//! Graph substrate for `hypersweep`.
//!
//! This crate provides everything the search strategies of Flocchini, Huang
//! and Luccio (IPPS 2005) assume about the world:
//!
//! * [`Hypercube`] — the `d`-dimensional hypercube `H_d` with the paper's
//!   port labelling (`λ_x(x, y)` = position of the bit in which `x` and `y`
//!   differ, positions counted `1..=d` from the least significant bit).
//! * [`BroadcastTree`] — the breadth-first spanning tree rooted at node
//!   `00…0` in which the children of `x` are its *bigger neighbours*
//!   (Definition 2 of the paper); also known as the binomial tree or *heap
//!   queue* `T(d)` (Definition 1).
//! * [`HeapQueue`] — the recursive heap-queue structure itself, used to
//!   validate (Figure 1) that the broadcast tree of `H_d` is a `T(d)`.
//! * [`properties`] — executable forms of the paper's Properties 1–8.
//! * [`combinatorics`] — exact binomial coefficients and the closed forms
//!   that appear in the paper's theorems.
//! * [`graph`] — a small [`graph::Topology`] trait plus comparison
//!   topologies (trees, rings, tori, complete graphs) used by the baseline
//!   strategies.
//! * [`render`] — ASCII renderings of the structures shown in the paper's
//!   Figures 1 and 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod combinatorics;
pub mod graph;
pub mod grid;
pub mod heap_queue;
pub mod hypercube;
pub mod node;
pub mod nodeset;
pub mod properties;
pub mod render;
pub mod wide;

pub use broadcast::BroadcastTree;
pub use graph::Topology;
pub use grid::{GridInstance, PartialGrid};
pub use heap_queue::HeapQueue;
pub use hypercube::Hypercube;
pub use node::Node;
pub use nodeset::NodeSet;

/// Maximum hypercube dimension supported by the crate.
///
/// Node identifiers are 32-bit, and several closed forms are evaluated in
/// `u128`; `d = 28` (268M nodes) is far beyond anything the simulators can
/// hold in memory anyway, so this is not a practical restriction.
pub const MAX_DIMENSION: u32 = 28;
